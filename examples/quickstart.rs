//! Quickstart: CLADO end-to-end on a small CNN in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small CNN, trains it on the synthetic vision dataset, measures
//! the full cross-layer sensitivity matrix (Algorithm 1), solves the IQP of
//! eq. (11) at a 3-bit-average budget, and reports the quantized accuracy
//! against uniform-precision quantization.

use clado_core::{
    assign_bits, measure_sensitivities, quantized_accuracy, AssignOptions, SensitivityOptions,
};
use clado_models::{train, SynthVision, SynthVisionConfig, TrainConfig};
use clado_nn::{ActKind, Activation, Conv2d, GlobalAvgPool, Linear, Network, Sequential};
use clado_quant::{BitWidth, BitWidthSet, LayerSizes, QuantScheme};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small CNN: three quantizable conv layers + classifier.
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", Activation::new(ActKind::Relu))
            .push(
                "conv2",
                Conv2d::new(Conv2dSpec::new(8, 12, 3, 2, 1), true, &mut rng),
            )
            .push("relu2", Activation::new(ActKind::Relu))
            .push(
                "conv3",
                Conv2d::new(Conv2dSpec::new(12, 16, 3, 2, 1), true, &mut rng),
            )
            .push("relu3", Activation::new(ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(16, 10, &mut rng)),
        10,
    );

    // 2. Train to convergence on the synthetic dataset (the ImageNet
    //    stand-in; see DESIGN.md for the substitution rationale).
    let data = SynthVision::generate(SynthVisionConfig::default());
    let report = train(&mut net, &data.train, &data.val, &TrainConfig::default());
    println!(
        "FP32 validation accuracy: {:.2}%",
        report.val_accuracy * 100.0
    );

    // 3. Measure the sensitivity matrix on a small sensitivity set.
    let sens_set = data.train.sample_subset(64, 0);
    let bits = BitWidthSet::standard(); // 𝔹 = {2, 4, 8}
    let scheme = QuantScheme::PerTensorSymmetric;
    let sm = measure_sensitivities(
        &mut net,
        &sens_set,
        &bits,
        &SensitivityOptions {
            scheme,
            ..Default::default()
        },
    )
    .expect("sensitivity measurement");
    println!(
        "sensitivities measured: {} network evaluations in {:.1}s",
        sm.stats.evaluations, sm.stats.seconds
    );

    // 4. Solve the IQP at a 3-bit-average budget.
    let sizes = LayerSizes::new(net.layer_param_counts());
    let budget = sizes.budget_from_avg_bits(3.0);
    let assignment = assign_bits(&sm, &sizes, budget, &AssignOptions::default())?;
    println!(
        "CLADO bit map: {}  (avg {:.2} bits/weight)",
        assignment.bitmap(),
        assignment.avg_bits(&sizes)
    );

    // 5. Compare against uniform quantization at the same average width.
    let clado_acc = quantized_accuracy(&mut net, &assignment.bits, scheme, &data.val);
    let upq3: Vec<BitWidth> = (0..sizes.num_layers())
        .map(|i| {
            if i % 2 == 0 {
                BitWidth::of(2)
            } else {
                BitWidth::of(4)
            }
        })
        .collect();
    let upq_acc = quantized_accuracy(&mut net, &upq3, scheme, &data.val);
    println!("CLADO  accuracy @3b avg: {:.2}%", clado_acc * 100.0);
    println!("naive  accuracy @3b avg: {:.2}%", upq_acc * 100.0);
    Ok(())
}
