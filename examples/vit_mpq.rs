//! MPQ on the ViT analogue with per-channel affine quantization — the
//! configuration the paper marks `+` in Table 1 (ViT-base column).
//!
//! ```text
//! cargo run --release --example vit_mpq
//! ```

use clado_core::{Algorithm, ExperimentContext};
use clado_models::{pretrained, ModelKind};
use clado_quant::{BitWidthSet, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = pretrained(ModelKind::ViT);
    println!(
        "{} — FP32 accuracy {:.2}%, {} quantizable layers (q/k/v/out + MLP per block)",
        ModelKind::ViT.display_name(),
        p.val_accuracy * 100.0,
        p.network.quantizable_layers().len()
    );
    let sens_set = p.data.train.sample_subset(48, 0);
    let mut ctx = ExperimentContext::new(
        p.network,
        sens_set,
        p.data.val.clone(),
        BitWidthSet::standard(),
        QuantScheme::PerChannelAffine, // the `+` configuration
    );

    println!(
        "\n{:<10} {:>10} {:>10} {:>10} {:>10}",
        "avg bits", "HAWQ", "MPQCO", "CLADO*", "CLADO"
    );
    for avg in [2.5f64, 3.0, 3.5] {
        let budget = ctx.sizes.budget_from_avg_bits(avg);
        print!("{avg:<10}");
        for alg in Algorithm::table1() {
            let (_, acc) = ctx.run(alg, budget)?;
            print!(" {:>9.2}%", acc * 100.0);
        }
        println!();
    }

    // The paper notes CLADO's edge grows as the budget tightens; print the
    // tight-budget bit maps so the structural difference is visible.
    let tight = ctx.sizes.budget_from_avg_bits(2.5);
    let (clado, _) = ctx.run(Algorithm::Clado, tight)?;
    let (hawq, _) = ctx.run(Algorithm::Hawq, tight)?;
    println!("\nCLADO @2.5b: {}", clado.bitmap());
    println!("HAWQ  @2.5b: {}", hawq.bitmap());
    Ok(())
}
