//! PTQ → QAT pipeline (Fig. 3): solve a CLADO assignment, then fine-tune
//! with the straight-through estimator and report the recovery.
//!
//! ```text
//! cargo run --release --example qat_pipeline
//! ```

use clado_core::{qat_finetune, Algorithm, ExperimentContext, QatConfig};
use clado_models::{pretrained, ModelKind};
use clado_quant::{BitWidthSet, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = pretrained(ModelKind::ResNet20);
    println!(
        "{} — FP32 accuracy {:.2}%",
        ModelKind::ResNet20.display_name(),
        p.val_accuracy * 100.0
    );
    let train_split = p.data.train.clone();
    let val_split = p.data.val.clone();
    let sens_set = p.data.train.sample_subset(48, 0);
    let scheme = QuantScheme::PerTensorSymmetric;
    let mut ctx = ExperimentContext::new(
        p.network,
        sens_set,
        val_split.clone(),
        BitWidthSet::standard(),
        scheme,
    );

    // An aggressive budget close to 3-bit UPQ, where PTQ degrades hard and
    // QAT has something to recover (the regime of Fig. 3).
    let budget = ctx.sizes.budget_from_avg_bits(2.8);

    for alg in [Algorithm::Hawq, Algorithm::Mpqco, Algorithm::Clado] {
        let (assignment, ptq_acc) = ctx.run(alg, budget)?;
        // QAT mutates the master weights; snapshot so each algorithm
        // fine-tunes from the same pretrained point.
        let master = ctx.network.snapshot_all();
        let report = qat_finetune(
            &mut ctx.network,
            &assignment.bits,
            scheme,
            &train_split,
            &val_split,
            &QatConfig::default(),
        );
        ctx.network.restore_all(&master);
        println!(
            "{:<8} PTQ {:>6.2}%  → QAT {:>6.2}%   bits {}",
            alg.label(),
            ptq_acc * 100.0,
            report.accuracy_after * 100.0,
            assignment.bitmap()
        );
    }
    Ok(())
}
