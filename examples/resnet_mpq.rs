//! Table-1-style comparison on the ResNet-34 analogue: HAWQ vs MPQCO vs
//! CLADO\* vs CLADO at three size budgets.
//!
//! ```text
//! cargo run --release --example resnet_mpq
//! ```
//!
//! The first run trains and caches the model (~30 s); sensitivity
//! measurement dominates afterwards.

use clado_core::{Algorithm, ExperimentContext};
use clado_models::{pretrained, ModelKind};
use clado_quant::{bits_to_mb, BitWidthSet, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = pretrained(ModelKind::ResNet34);
    println!(
        "{} — FP32 accuracy {:.2}%, {} quantizable layers",
        ModelKind::ResNet34.display_name(),
        p.val_accuracy * 100.0,
        p.network.quantizable_layers().len()
    );
    let sens_set = p.data.train.sample_subset(48, 0);
    let mut ctx = ExperimentContext::new(
        p.network,
        sens_set,
        p.data.val.clone(),
        BitWidthSet::standard(),
        QuantScheme::PerTensorSymmetric,
    );

    let budgets: Vec<(f64, u64)> = [2.5, 3.0, 3.5]
        .iter()
        .map(|&avg| (avg, ctx.sizes.budget_from_avg_bits(avg)))
        .collect();

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10}",
        "Size (MB)", "HAWQ", "MPQCO", "CLADO*", "CLADO"
    );
    for &(avg, budget) in &budgets {
        print!("{:<12.3}", bits_to_mb(budget));
        for alg in Algorithm::table1() {
            let (_, acc) = ctx.run(alg, budget)?;
            print!(" {:>9.2}%", acc * 100.0);
        }
        println!("   (avg {avg} bits)");
    }

    // Show the actual CLADO bit map at the tightest budget.
    let (a, _) = ctx.run(Algorithm::Clado, budgets[0].1)?;
    println!(
        "\nCLADO bit map @ {:.1} bits avg: {}",
        budgets[0].0,
        a.bitmap()
    );
    Ok(())
}
