//! Fig.-1-style sensitivity exploration: print a sensitivity submatrix and
//! demonstrate the pair-selection suboptimality caused by ignoring
//! cross-layer terms.
//!
//! ```text
//! cargo run --release --example sensitivity_explorer
//! ```

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use clado_core::{measure_sensitivities, SensitivityOptions};
use clado_models::{pretrained, ModelKind};
use clado_quant::BitWidthSet;

fn main() {
    let mut p = pretrained(ModelKind::ResNet20);
    let sens_set = p.data.train.sample_subset(64, 0);
    // Single bit-width 𝔹 = {2}: the Fig. 1 setting (which two layers should
    // be quantized to 2 bits?).
    let bits = BitWidthSet::new(&[2]);
    let sm = measure_sensitivities(
        &mut p.network,
        &sens_set,
        &bits,
        &SensitivityOptions::default(),
    )
    .expect("sensitivity measurement");

    let names: Vec<String> = p
        .network
        .quantizable_layers()
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let n = names.len();

    println!("2-bit sensitivity matrix (Ω·1000), {} layers:", n);
    print!("{:>24}", "");
    for j in 0..n.min(8) {
        print!(" {:>8}", j);
    }
    println!();
    for i in 0..n.min(8) {
        print!("{:>24}", names[i]);
        for j in 0..n.min(8) {
            let v = if i == j {
                sm.layer_sensitivity(i, 0)
            } else {
                sm.cross_sensitivity(i, 0, j, 0)
            };
            print!(" {:>8.2}", v * 1000.0);
        }
        println!();
    }

    // The Fig. 1 story: pick the best PAIR of layers to quantize.
    let mut best_diag = (0, 1, f64::INFINITY);
    let mut best_full = (0, 1, f64::INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let diag = sm.layer_sensitivity(i, 0) + sm.layer_sensitivity(j, 0);
            let full = diag + 2.0 * sm.cross_sensitivity(i, 0, j, 0);
            if diag < best_diag.2 {
                best_diag = (i, j, diag);
            }
            if full < best_full.2 {
                best_full = (i, j, full);
            }
        }
    }
    println!(
        "\nbest pair ignoring cross terms : ({}, {}) predicted ΔΩ {:.4}",
        names[best_diag.0], names[best_diag.1], best_diag.2
    );
    let diag_pair_true = sm.layer_sensitivity(best_diag.0, 0)
        + sm.layer_sensitivity(best_diag.1, 0)
        + 2.0 * sm.cross_sensitivity(best_diag.0, 0, best_diag.1, 0);
    println!("  … its TRUE ΔΩ with cross terms: {diag_pair_true:.4}");
    println!(
        "best pair with cross terms     : ({}, {}) true ΔΩ {:.4}",
        names[best_full.0], names[best_full.1], best_full.2
    );
    if (best_full.0, best_full.1) != (best_diag.0, best_diag.1) {
        println!(
            "→ ignoring cross-layer dependencies picks a suboptimal pair (the Fig. 1 effect)."
        );
    } else {
        println!("→ on this seed the diagonal choice happens to coincide with the full optimum.");
    }
}
