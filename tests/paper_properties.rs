//! Paper-shape properties: lighter-weight statements of the evaluation
//! section's qualitative claims, checked on a planted-structure instance
//! and on quantization monotonicity.

use clado_core::{qat_finetune, solve_with_matrix, QatConfig};
use clado_models::{train, SynthVision, SynthVisionConfig, TrainConfig};
use clado_nn::{ActKind, Activation, Conv2d, GlobalAvgPool, Linear, Network, Sequential};
use clado_quant::{BitWidth, BitWidthSet, LayerSizes, QuantScheme};
use clado_solver::{SolverConfig, SymMatrix};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Planted instance reproducing the Fig. 1 story at IQP level: the
/// cross-aware solve must find the negatively-coupled pair while the
/// diagonal-only solve picks the individually-best (jointly worse) pair.
#[test]
fn cross_layer_solve_finds_the_planted_coupling() {
    let bits = BitWidthSet::new(&[2, 8]);
    let layers = 4usize;
    let n = layers * 2;
    let mut g = SymMatrix::zeros(n);
    // Diagonals: cost of quantizing each layer to 2 bits (index 0 of each
    // group); 8-bit entries are ~0.
    let diag2 = [0.115, 0.140, 0.246, 0.148];
    for (i, &d) in diag2.iter().enumerate() {
        g.set(2 * i, 2 * i, d);
    }
    // Strong negative coupling between layers 2 and 3 at 2 bits.
    g.set(4, 6, -0.070);
    // Mild positive coupling between layers 0 and 1 at 2 bits.
    g.set(0, 2, 0.009);

    let sizes = LayerSizes::new(vec![100; layers]);
    // Budget forces exactly two layers to 2 bits: 2·2b + 2·8b = 2000 bits.
    let budget = 2 * 100 * 2 + 2 * 100 * 8;

    let full =
        solve_with_matrix(&g, &bits, &sizes, budget as u64, &SolverConfig::default()).unwrap();
    let two_bit_layers: Vec<usize> = full
        .bits
        .iter()
        .enumerate()
        .filter(|(_, b)| b.bits() == 2)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        two_bit_layers,
        vec![2, 3],
        "full solve must exploit the negative coupling"
    );

    // Diagonal-only: same instance with the off-diagonals removed.
    let mut diag_only = SymMatrix::zeros(n);
    for v in 0..n {
        diag_only.set(v, v, g.get(v, v));
    }
    let diag = solve_with_matrix(
        &diag_only,
        &bits,
        &sizes,
        budget as u64,
        &SolverConfig::default(),
    )
    .unwrap();
    let diag_pick: Vec<usize> = diag
        .bits
        .iter()
        .enumerate()
        .filter(|(_, b)| b.bits() == 2)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        diag_pick,
        vec![0, 1],
        "diagonal solve picks the individually-best pair"
    );

    // And the full objective of the diagonal pick is indeed worse.
    let eval = |choice: &[usize]| {
        let mut alpha = vec![0.0f64; n];
        for (i, &m) in choice.iter().enumerate() {
            alpha[2 * i + m] = 1.0;
        }
        g.quadratic_form(&alpha)
    };
    assert!(
        eval(&[0, 0, 1, 1]) > eval(&[1, 1, 0, 0]),
        "planted structure must matter"
    );
}

/// More budget never hurts: accuracy at a looser budget is ≥ accuracy at a
/// tighter one minus noise (Fig. 2's monotone tradeoff curves).
#[test]
fn accuracy_is_monotone_in_budget_for_clado() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", Activation::new(ActKind::Relu))
            .push(
                "conv2",
                Conv2d::new(Conv2dSpec::new(8, 12, 3, 2, 1), true, &mut rng),
            )
            .push("relu2", Activation::new(ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(12, 5, &mut rng)),
        5,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 5,
        img: 12,
        train: 320,
        val: 160,
        seed: 4321,
        noise: 0.3,
        label_noise: 0.05,
    });
    train(
        &mut net,
        &data.train,
        &data.val,
        &TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
    );
    let sens = data.train.sample_subset(48, 9);
    let mut ctx = clado_core::ExperimentContext::new(
        net,
        sens,
        data.val.clone(),
        BitWidthSet::standard(),
        QuantScheme::PerTensorSymmetric,
    );
    let mut prev = 0.0f64;
    for avg in [2.5f64, 3.5, 5.0, 8.0] {
        let budget = ctx.sizes.budget_from_avg_bits(avg);
        let (_, acc) = ctx
            .run(clado_core::Algorithm::Clado, budget)
            .expect("feasible");
        assert!(
            acc >= prev - 0.08,
            "accuracy dropped sharply with more budget: {prev} → {acc} at {avg} bits"
        );
        prev = prev.max(acc);
    }
}

/// QAT on a CLADO assignment recovers accuracy (Fig. 3's premise).
#[test]
fn qat_recovers_ptq_degradation_on_trained_model() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", Activation::new(ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(8, 4, &mut rng)),
        4,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 4,
        img: 12,
        train: 256,
        val: 128,
        seed: 2222,
        noise: 0.25,
        label_noise: 0.0,
    });
    train(
        &mut net,
        &data.train,
        &data.val,
        &TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
    );
    let assignment = vec![BitWidth::of(2), BitWidth::of(4)];
    let report = qat_finetune(
        &mut net,
        &assignment,
        QuantScheme::PerTensorSymmetric,
        &data.train,
        &data.val,
        &QatConfig {
            epochs: 5,
            lr: 0.01,
            ..Default::default()
        },
    );
    assert!(
        report.accuracy_after + 1e-9 >= report.accuracy_before,
        "QAT regressed: {report:?}"
    );
}
