//! Activation quantization integration: the paper quantizes activations to
//! 8 bits alongside the mixed-precision weights; verify that the 8-bit
//! activation path is accuracy-transparent and trains.

use clado_models::{
    build_resnet, train, ResNetConfig, SynthVision, SynthVisionConfig, TrainConfig,
};

#[test]
fn eight_bit_activations_are_accuracy_transparent() {
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 5,
        img: 16,
        train: 320,
        val: 160,
        seed: 909,
        noise: 0.3,
        label_noise: 0.05,
    });
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.08,
        momentum: 0.9,
        weight_decay: 1e-4,
    };

    let mut fp = build_resnet(&ResNetConfig::resnet20_mini(5, 3));
    let fp_report = train(&mut fp, &data.train, &data.val, &cfg);

    let mut aq = build_resnet(&ResNetConfig::resnet20_mini(5, 3).with_act_bits(8));
    let aq_report = train(&mut aq, &data.train, &data.val, &cfg);

    assert!(fp_report.val_accuracy > 0.5, "fp32 model failed to train");
    assert!(
        (aq_report.val_accuracy - fp_report.val_accuracy).abs() < 0.06,
        "8-bit activations should be ~transparent: fp32 {} vs act-quant {}",
        fp_report.val_accuracy,
        aq_report.val_accuracy
    );
}

#[test]
fn act_quant_layers_do_not_change_the_quantizable_inventory() {
    use clado_models::{
        build_mobilenet, build_regnet, build_vit, MobileNetConfig, RegNetConfig, ViTConfig,
    };
    let pairs = [
        (
            build_resnet(&ResNetConfig::resnet34_mini(10, 0))
                .quantizable_layers()
                .len(),
            build_resnet(&ResNetConfig::resnet34_mini(10, 0).with_act_bits(8))
                .quantizable_layers()
                .len(),
        ),
        (
            build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 0))
                .quantizable_layers()
                .len(),
            build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 0).with_act_bits(8))
                .quantizable_layers()
                .len(),
        ),
        (
            build_regnet(&RegNetConfig::regnet_mini(10, 0))
                .quantizable_layers()
                .len(),
            build_regnet(&RegNetConfig::regnet_mini(10, 0).with_act_bits(8))
                .quantizable_layers()
                .len(),
        ),
        (
            build_vit(&ViTConfig::vit_mini(10, 0))
                .quantizable_layers()
                .len(),
            build_vit(&ViTConfig::vit_mini(10, 0).with_act_bits(8))
                .quantizable_layers()
                .len(),
        ),
    ];
    for (plain, quant) in pairs {
        assert_eq!(
            plain, quant,
            "activation quantizers must not add weight targets"
        );
    }
}

#[test]
fn act_quant_models_forward_and_backward() {
    use clado_models::{build_vit, ViTConfig};
    use clado_tensor::Tensor;
    let mut net = build_vit(&ViTConfig::vit_mini(4, 1).with_act_bits(8));
    let y = net.forward(Tensor::zeros([2, 3, 16, 16]), true);
    assert_eq!(y.shape().dims(), &[2, 4]);
    let (_, grad) = clado_nn::cross_entropy(&y, &[0, 3]);
    net.backward(grad);
}
