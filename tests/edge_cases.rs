//! Edge-case coverage across crates: optimizer/buffer interactions, model
//! determinism, mask validation, and error-path displays.

use clado_models::{
    build_mobilenet, build_regnet, build_vit, MobileNetConfig, RegNetConfig, ViTConfig,
};
use clado_nn::{BatchNorm2d, Network, ParamRole, Sequential, Sgd};
use clado_quant::BitWidthSet;
use clado_solver::{IqpError, IqpProblem, SymMatrix};
use clado_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SGD must not touch Buffer parameters (BatchNorm running statistics).
#[test]
fn sgd_leaves_batchnorm_buffers_untouched() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv",
                clado_nn::Conv2d::new(
                    clado_tensor::Conv2dSpec::new(1, 2, 3, 1, 1),
                    false,
                    &mut rng,
                ),
            )
            .push("bn", BatchNorm2d::new(2))
            .push("pool", clado_nn::GlobalAvgPool::new())
            .push("fc", clado_nn::Linear::new(2, 2, &mut rng)),
        2,
    );
    // Run a training forward to move the running stats off their defaults.
    let x = init::normal([4, 1, 6, 6], 1.0, 1.0, &mut rng);
    let logits = net.forward(x, true);
    let (_, grad) = clado_nn::cross_entropy(&logits, &[0, 1, 0, 1]);
    net.backward(grad);

    let mut buffers_before = Vec::new();
    net.visit_params(&mut |name, p| {
        if p.role == ParamRole::Buffer {
            buffers_before.push((name.to_string(), p.value.clone()));
        }
    });
    assert_eq!(buffers_before.len(), 2, "running mean + var");

    Sgd::new(0.5, 0.9, 1e-2).step(&mut net);

    let mut idx = 0;
    net.visit_params(&mut |name, p| {
        if p.role == ParamRole::Buffer {
            assert_eq!(name, buffers_before[idx].0);
            assert_eq!(
                p.value.data(),
                buffers_before[idx].1.data(),
                "SGD modified buffer {name}"
            );
            idx += 1;
        }
    });
}

/// Every zoo builder is deterministic: same seed ⇒ identical forward output.
#[test]
fn zoo_builders_are_deterministic() {
    let x = Tensor::full([1, 3, 16, 16], 0.25);
    let pairs: Vec<(Network, Network)> = vec![
        (
            build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 3)),
            build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 3)),
        ),
        (
            build_regnet(&RegNetConfig::regnet_mini(10, 3)),
            build_regnet(&RegNetConfig::regnet_mini(10, 3)),
        ),
        (
            build_vit(&ViTConfig::vit_mini(10, 3)),
            build_vit(&ViTConfig::vit_mini(10, 3)),
        ),
    ];
    for (mut a, mut b) in pairs {
        let ya = a.forward(x.clone(), false);
        let yb = b.forward(x.clone(), false);
        assert_eq!(ya.data(), yb.data());
    }
}

/// Different seeds give different weights (no accidental seed pinning).
#[test]
fn zoo_builders_respect_the_seed() {
    let a = build_vit(&ViTConfig::vit_mini(10, 1));
    let b = build_vit(&ViTConfig::vit_mini(10, 2));
    assert_ne!(a.weight(0).data(), b.weight(0).data());
}

/// Block-mask length validation on the sensitivity matrix.
#[test]
#[should_panic(expected = "block id per layer")]
fn block_mask_length_is_validated() {
    use clado_core::{measure_sensitivities, SensitivityOptions};
    use clado_models::{SynthVision, SynthVisionConfig};
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv",
                clado_nn::Conv2d::new(clado_tensor::Conv2dSpec::new(3, 4, 3, 1, 1), true, &mut rng),
            )
            .push("pool", clado_nn::GlobalAvgPool::new())
            .push("fc", clado_nn::Linear::new(4, 3, &mut rng)),
        3,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 3,
        img: 8,
        train: 16,
        val: 8,
        seed: 2,
        noise: 0.2,
        label_noise: 0.0,
    });
    let set = data.train.subset(&(0..8).collect::<Vec<_>>());
    let sm = measure_sensitivities(
        &mut net,
        &set,
        &BitWidthSet::new(&[2, 8]),
        &SensitivityOptions::default(),
    )
    .expect("sensitivity measurement");
    let _ = sm.block_masked(&[0]); // wrong length: 1 id for 2 layers
}

/// IqpError display strings are informative.
#[test]
fn iqp_error_displays() {
    let g = SymMatrix::zeros(4);
    let err = IqpProblem::new(g, &[2, 2], vec![5, 9, 7, 9], 10).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("infeasible") && msg.contains("12") && msg.contains("10"),
        "{msg}"
    );

    let not_sep = IqpError::NotSeparable { defect: 0.25 };
    assert!(not_sep.to_string().contains("cross-layer"), "{not_sep}");
    let too_big = IqpError::NotSeparable { defect: -1.0 };
    assert!(too_big.to_string().contains("too large"), "{too_big}");

    let overflow = IqpError::CostOverflow { group: 3 };
    assert!(overflow.to_string().contains("overflow"), "{overflow}");
    let asym = IqpError::AsymmetricObjective { defect: 0.5 };
    assert!(asym.to_string().contains("symmetr"), "{asym}");
    let degenerate = IqpError::DegenerateObjective {
        clip_mass_ratio: 0.9,
    };
    let msg = degenerate.to_string();
    assert!(msg.contains("0.9") || msg.contains("90"), "{msg}");
}

/// Ω hardening repairs a poisoned cross term leniently and rejects it (with
/// coordinates) under strict mode; the hardened matrix still solves.
#[test]
fn omega_hardening_edge_cases() {
    use clado_solver::{diagnose, harden, SolverConfig};

    let mut g = SymMatrix::zeros(4);
    for i in 0..4 {
        g.set(i, i, 0.5 + i as f64 * 0.1);
    }
    g.set(0, 3, f64::NAN);
    let diag = diagnose(&g);
    assert_eq!(diag.off_diagonal_non_finite, 2); // both triangles
    assert!(!diag.is_clean());

    let (repaired, report) = harden(&g, false).expect("lenient repair");
    assert_eq!(report.repaired_non_finite, 2);
    assert_eq!(repaired.get(0, 3), 0.0);
    let problem = IqpProblem::new(repaired, &[2, 2], vec![1, 2, 1, 2], 4).expect("valid instance");
    let solution = problem.solve(&SolverConfig::default()).expect("solves");
    assert!(problem.is_feasible(&solution.choices));

    match harden(&g, true) {
        Err(IqpError::NonFiniteObjective { row, col, .. }) => {
            assert_eq!((row.min(col), row.max(col)), (0, 3))
        }
        other => panic!("strict hardening should reject, got {other:?}"),
    }
}

/// BatchNorm running statistics serialize with the model and affect
/// evaluation-mode behaviour after a reload.
#[test]
fn batchnorm_buffers_roundtrip_through_weights_io() {
    use clado_models::{build_resnet, load_weights, save_weights, ResNetConfig};
    let mut rng = StdRng::seed_from_u64(5);
    let mut a = build_resnet(&ResNetConfig::resnet20_mini(4, 8));
    // Shift running stats away from defaults with training passes.
    for _ in 0..3 {
        let x = init::normal([8, 3, 16, 16], 0.5, 1.0, &mut rng);
        a.forward(x, true);
    }
    let path = std::env::temp_dir().join(format!("clado-bnbuf-{}.cldw", std::process::id()));
    save_weights(&mut a, &path).unwrap();
    let mut b = build_resnet(&ResNetConfig::resnet20_mini(4, 8));
    load_weights(&mut b, &path).unwrap();
    std::fs::remove_file(&path).ok();
    let probe = Tensor::full([1, 3, 16, 16], 0.3);
    let ya = a.forward(probe.clone(), false);
    let yb = b.forward(probe, false);
    assert_eq!(
        ya.data(),
        yb.data(),
        "eval outputs differ ⇒ buffers not serialized"
    );
}

/// Activation layers are composable inside arbitrary Sequential nesting and
/// their visitor paths stay stable (used by the weight cache).
#[test]
fn visitor_paths_are_stable_across_identical_builds() {
    let collect = || {
        let mut net = build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 3));
        let mut names = Vec::new();
        net.visit_params(&mut |n, _| names.push(n.to_string()));
        names
    };
    assert_eq!(collect(), collect());
}
