//! Cross-crate integration: the full CLADO pipeline from training through
//! sensitivity measurement, IQP solve, and quantized evaluation.

use clado_core::{
    assign_bits, measure_sensitivities, quantized_accuracy, Algorithm, AssignOptions, CladoVariant,
    ExperimentContext, SensitivityOptions,
};
use clado_models::{train, SynthVision, SynthVisionConfig, TrainConfig};
use clado_nn::{ActKind, Activation, Conv2d, GlobalAvgPool, Linear, Network, Sequential};
use clado_quant::{BitWidthSet, LayerSizes, QuantScheme};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_cnn() -> (Network, SynthVision) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut net = Network::new(
        Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", Activation::new(ActKind::Relu))
            .push(
                "conv2",
                Conv2d::new(Conv2dSpec::new(8, 10, 3, 2, 1), true, &mut rng),
            )
            .push("relu2", Activation::new(ActKind::Relu))
            .push(
                "conv3",
                Conv2d::new(Conv2dSpec::new(10, 12, 3, 2, 1), true, &mut rng),
            )
            .push("relu3", Activation::new(ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(12, 6, &mut rng)),
        6,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 6,
        img: 12,
        train: 384,
        val: 192,
        seed: 1234,
        noise: 0.3,
        label_noise: 0.05,
    });
    let report = train(
        &mut net,
        &data.train,
        &data.val,
        &TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
    );
    assert!(
        report.val_accuracy > 0.6,
        "training failed: {}",
        report.val_accuracy
    );
    (net, data)
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let (mut net, data) = trained_cnn();
        let sens = data.train.sample_subset(32, 7);
        let bits = BitWidthSet::standard();
        let sm = measure_sensitivities(&mut net, &sens, &bits, &SensitivityOptions::default())
            .expect("sensitivity measurement");
        let sizes = LayerSizes::new(net.layer_param_counts());
        let budget = sizes.budget_from_avg_bits(3.0);
        let a = assign_bits(&sm, &sizes, budget, &AssignOptions::default()).expect("feasible");
        let acc = quantized_accuracy(
            &mut net,
            &a.bits,
            QuantScheme::PerTensorSymmetric,
            &data.val,
        );
        (a.bits.iter().map(|b| b.bits()).collect::<Vec<_>>(), acc)
    };
    let (bits1, acc1) = run();
    let (bits2, acc2) = run();
    assert_eq!(bits1, bits2, "bit assignments differ across identical runs");
    assert!(
        (acc1 - acc2).abs() < 1e-12,
        "accuracies differ: {acc1} vs {acc2}"
    );
}

#[test]
fn clado_beats_worst_case_assignment_and_respects_budget() {
    let (mut net, data) = trained_cnn();
    let sens = data.train.sample_subset(48, 3);
    let bits = BitWidthSet::standard();
    let sm = measure_sensitivities(&mut net, &sens, &bits, &SensitivityOptions::default())
        .expect("sensitivity measurement");
    let sizes = LayerSizes::new(net.layer_param_counts());
    let budget = sizes.budget_from_avg_bits(3.0);
    let a = assign_bits(&sm, &sizes, budget, &AssignOptions::default()).expect("feasible");
    assert!(a.cost_bits <= budget, "budget violated");

    let clado_acc = quantized_accuracy(
        &mut net,
        &a.bits,
        QuantScheme::PerTensorSymmetric,
        &data.val,
    );
    // Same cost, inverted priorities: give 2 bits wherever CLADO gave 8
    // and vice versa, then repair to the budget. That adversarial flip
    // should be clearly worse.
    let flipped: Vec<clado_quant::BitWidth> = a
        .bits
        .iter()
        .map(|b| match b.bits() {
            2 => clado_quant::BitWidth::of(8),
            8 => clado_quant::BitWidth::of(2),
            other => clado_quant::BitWidth::of(other),
        })
        .collect();
    if sizes.assignment_bits(&flipped) <= budget {
        let flipped_acc = quantized_accuracy(
            &mut net,
            &flipped,
            QuantScheme::PerTensorSymmetric,
            &data.val,
        );
        assert!(
            clado_acc >= flipped_acc - 0.02,
            "CLADO ({clado_acc}) should not lose to its own inversion ({flipped_acc})"
        );
    }
}

#[test]
fn experiment_context_runs_every_algorithm_on_a_real_model() {
    let (net, data) = trained_cnn();
    let sens = data.train.sample_subset(32, 5);
    let mut ctx = ExperimentContext::new(
        net,
        sens,
        data.val.clone(),
        BitWidthSet::standard(),
        QuantScheme::PerTensorSymmetric,
    );
    let budget = ctx.sizes.budget_from_avg_bits(3.5);
    let mut results = Vec::new();
    for alg in [
        Algorithm::Hawq,
        Algorithm::Mpqco,
        Algorithm::CladoStar,
        Algorithm::BlockClado,
        Algorithm::Clado,
    ] {
        let (a, acc) = ctx.run(alg, budget).expect("feasible");
        assert!(a.cost_bits <= budget, "{alg:?} violated the budget");
        results.push((alg, acc));
    }
    // All algorithms should produce usable (above-chance) models at a
    // moderate 3.5-bit budget on this easy task.
    for (alg, acc) in results {
        assert!(acc > 1.0 / 6.0, "{alg:?} below chance: {acc}");
    }
}

#[test]
fn variant_masks_change_only_off_diagonal_structure() {
    let (mut net, data) = trained_cnn();
    let sens = data.train.sample_subset(24, 11);
    let bits = BitWidthSet::standard();
    let sm = measure_sensitivities(&mut net, &sens, &bits, &SensitivityOptions::default())
        .expect("sensitivity measurement");
    let sizes = LayerSizes::new(net.layer_param_counts());
    let budget = sizes.budget_from_avg_bits(4.0);

    // DiagonalOnly must equal BlockOnly when every layer is its own block.
    let singleton_blocks: Vec<usize> = (0..sizes.num_layers()).collect();
    let diag = assign_bits(
        &sm,
        &sizes,
        budget,
        &AssignOptions {
            variant: CladoVariant::DiagonalOnly,
            ..Default::default()
        },
    )
    .expect("feasible");
    let blocks = assign_bits(
        &sm,
        &sizes,
        budget,
        &AssignOptions {
            variant: CladoVariant::BlockOnly(singleton_blocks),
            ..Default::default()
        },
    )
    .expect("feasible");
    assert!(
        (diag.predicted_delta_loss - blocks.predicted_delta_loss).abs() < 1e-9,
        "singleton-block mask must reduce to the diagonal variant"
    );

    // All-in-one-block must equal the full variant.
    let one_block = vec![0usize; sizes.num_layers()];
    let full = assign_bits(&sm, &sizes, budget, &AssignOptions::default()).expect("feasible");
    let merged = assign_bits(
        &sm,
        &sizes,
        budget,
        &AssignOptions {
            variant: CladoVariant::BlockOnly(one_block),
            ..Default::default()
        },
    )
    .expect("feasible");
    assert!(
        (full.predicted_delta_loss - merged.predicted_delta_loss).abs() < 1e-9,
        "single-block mask must reduce to full CLADO"
    );
}
