//! # clado
//!
//! Facade crate of the CLADO reproduction — re-exports every sub-crate so
//! downstream users can depend on one package:
//!
//! * [`core`] — the paper's algorithm: sensitivity measurement, PSD
//!   approximation, IQP bit assignment, baselines, QAT, vᵀHv validation.
//! * [`models`] — synthetic dataset + mini model zoo + trainer.
//! * [`nn`] — layers, backprop, networks, SGD.
//! * [`quant`] — quantizers, calibration, size accounting.
//! * [`solver`] — eigen/PSD and the IQP solver suite.
//! * [`tensor`] — dense tensors and numeric kernels.
//!
//! ## Example
//!
//! ```no_run
//! use clado::core::{assign_bits, measure_sensitivities, AssignOptions, SensitivityOptions};
//! use clado::models::{pretrained, ModelKind};
//! use clado::quant::{BitWidthSet, LayerSizes};
//!
//! let mut p = pretrained(ModelKind::ResNet34);
//! let sens_set = p.data.train.sample_subset(128, 0);
//! let sm = measure_sensitivities(
//!     &mut p.network,
//!     &sens_set,
//!     &BitWidthSet::standard(),
//!     &SensitivityOptions::default(),
//! )
//! .expect("sensitivity measurement");
//! let sizes = LayerSizes::new(p.network.layer_param_counts());
//! let a = assign_bits(&sm, &sizes, sizes.budget_from_avg_bits(3.0), &AssignOptions::default())?;
//! println!("{}", a.bitmap());
//! # Ok::<(), clado::solver::IqpError>(())
//! ```

#![warn(missing_docs)]

pub use clado_core as core;
pub use clado_models as models;
pub use clado_nn as nn;
pub use clado_quant as quant;
pub use clado_solver as solver;
pub use clado_tensor as tensor;
