//! Property-based tests for the eigen/PSD machinery and the IQP solvers.

use clado_solver::{IqpProblem, SolveMethod, SolverConfig, SymMatrix};
use proptest::prelude::*;

fn sym_matrix_strategy(n: usize) -> impl Strategy<Value = SymMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |upper| {
        let mut m = SymMatrix::zeros(n);
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in i..n {
                m.set(i, j, it.next().expect("sized"));
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A = V Λ Vᵀ reconstruction.
    #[test]
    fn eigen_reconstructs_the_matrix(m in sym_matrix_strategy(5)) {
        let rebuilt = m.eigen().reassemble_with(|e| e);
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((rebuilt.get(i, j) - m.get(i, j)).abs() < 1e-8);
            }
        }
    }

    /// Eigenvalue sum equals the trace.
    #[test]
    fn eigenvalues_sum_to_trace(m in sym_matrix_strategy(5)) {
        let trace: f64 = (0..5).map(|i| m.get(i, i)).sum();
        let sum: f64 = m.eigen().values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    /// PSD projection is idempotent and yields a non-negative quadratic form.
    #[test]
    fn psd_projection_idempotent_and_nonnegative(m in sym_matrix_strategy(5)) {
        let p = m.psd_project();
        prop_assert!(p.min_eigenvalue() > -1e-8);
        let pp = p.psd_project();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((pp.get(i, j) - p.get(i, j)).abs() < 1e-7);
            }
        }
        for probe in 0..3 {
            let x: Vec<f64> = (0..5).map(|k| ((k * 7 + probe * 13) % 11) as f64 - 5.0).collect();
            prop_assert!(p.quadratic_form(&x) > -1e-6);
        }
    }

    /// PSD projection never moves the matrix further than the original's
    /// most-negative eigenvalue allows (projection optimality in Frobenius
    /// norm: ‖A − P(A)‖² = Σ min(λ,0)²).
    #[test]
    fn psd_projection_distance_matches_negative_spectrum(m in sym_matrix_strategy(4)) {
        let eig = m.eigen();
        let expect: f64 = eig.values.iter().map(|&e| e.min(0.0).powi(2)).sum::<f64>().sqrt();
        let p = m.psd_project();
        let mut diff2 = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                let d = m.get(i, j) - p.get(i, j);
                diff2 += d * d;
            }
        }
        prop_assert!((diff2.sqrt() - expect).abs() < 1e-7);
    }
}

/// Random small IQP instance: groups of size 2–3 with positive costs.
fn iqp_strategy() -> impl Strategy<Value = (IqpProblem, usize)> {
    (2usize..=5, 0u64..1_000_000).prop_flat_map(|(k, seed)| {
        let sizes = vec![3usize; k];
        let n = 3 * k;
        (
            prop::collection::vec(-0.5f64..0.5, n * (n + 1) / 2),
            prop::collection::vec(1u64..50, n),
            Just((k, seed, sizes)),
        )
            .prop_map(|(upper, costs, (k, _seed, sizes))| {
                let n = 3 * k;
                let mut g = SymMatrix::zeros(n);
                let mut it = upper.into_iter();
                for i in 0..n {
                    for j in i..n {
                        let scale = if i == j { 1.0 } else { 0.3 };
                        g.set(i, j, it.next().expect("sized") * scale);
                    }
                }
                let min_cost: u64 = (0..k)
                    .map(|i| (0..3).map(|m| costs[3 * i + m]).min().expect("3"))
                    .sum();
                let max_cost: u64 = (0..k)
                    .map(|i| (0..3).map(|m| costs[3 * i + m]).max().expect("3"))
                    .sum();
                let budget = min_cost + (max_cost - min_cost) / 2;
                (
                    IqpProblem::new(g, &sizes, costs, budget).expect("feasible by construction"),
                    k,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Branch-and-bound matches brute force and always fits the budget.
    #[test]
    fn bnb_is_exact_on_random_instances((p, _k) in iqp_strategy()) {
        let ex = p
            .solve(&SolverConfig { method: SolveMethod::Exhaustive, ..Default::default() })
            .expect("feasible");
        let bb = p
            .solve(&SolverConfig { method: SolveMethod::BranchAndBound, ..Default::default() })
            .expect("feasible");
        prop_assert!(bb.proved_optimal);
        prop_assert!((bb.objective - ex.objective).abs() < 1e-9,
            "bnb {} vs exhaustive {}", bb.objective, ex.objective);
        prop_assert!(bb.cost <= p.budget());
        prop_assert!(p.is_feasible(&bb.choices));
    }

    /// Local search is feasible and no better than the proven optimum.
    #[test]
    fn local_search_is_feasible_and_bounded((p, _k) in iqp_strategy()) {
        let ex = p
            .solve(&SolverConfig { method: SolveMethod::Exhaustive, ..Default::default() })
            .expect("feasible");
        let ls = p
            .solve(&SolverConfig { method: SolveMethod::LocalSearch, ..Default::default() })
            .expect("feasible");
        prop_assert!(ls.cost <= p.budget());
        prop_assert!(ls.objective >= ex.objective - 1e-9,
            "local search {} beat the optimum {}", ls.objective, ex.objective);
        // Reported objective matches a direct evaluation.
        prop_assert!((ls.objective - p.assignment_objective(&ls.choices)).abs() < 1e-9);
    }
}
