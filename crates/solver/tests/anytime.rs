//! Property tests for the anytime degradation ladder: every rung returns a
//! feasible assignment whose objective is within the reported gap of the
//! exhaustive optimum, and a pre-raised cancel flag degrades to the greedy
//! warm start instead of erroring.

use clado_solver::{IqpProblem, MethodUsed, SolveMethod, SolverConfig, SymMatrix, Termination};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Duration;

const METHODS: [SolveMethod; 5] = [
    SolveMethod::Auto,
    SolveMethod::BranchAndBound,
    SolveMethod::LocalSearch,
    SolveMethod::DynamicProgramming,
    SolveMethod::Exhaustive,
];

/// Raw material for a small random instance: group count, group size, the
/// upper-triangle entries of G, per-variable costs, and the budget as a
/// percentage of the feasible cost range (0 = tightest, 100 = uncapped).
fn raw_instance() -> impl Strategy<Value = (usize, usize, Vec<f64>, Vec<u64>, u8)> {
    (2usize..=4, 2usize..=3).prop_flat_map(|(k, s)| {
        let n = k * s;
        (
            Just(k),
            Just(s),
            prop::collection::vec(-1.0f64..1.0, n * (n + 1) / 2),
            prop::collection::vec(1u64..50, n),
            0u8..=100,
        )
    })
}

fn build(k: usize, s: usize, tri: &[f64], costs: Vec<u64>, budget_pct: u8) -> IqpProblem {
    let n = k * s;
    let mut g = SymMatrix::zeros(n);
    let mut it = tri.iter();
    for i in 0..n {
        for j in i..n {
            let scale = if i == j { 1.0 } else { 0.3 };
            g.set(i, j, it.next().expect("triangle sized to fit") * scale);
        }
    }
    let group_cost = |i: usize, agg: fn(u64, u64) -> u64, init: u64| {
        (0..s).map(|m| costs[i * s + m]).fold(init, agg)
    };
    let min_total: u64 = (0..k).map(|i| group_cost(i, u64::min, u64::MAX)).sum();
    let max_total: u64 = (0..k).map(|i| group_cost(i, u64::max, 0)).sum();
    let budget = min_total + (max_total - min_total) * budget_pct as u64 / 100;
    IqpProblem::new(g, &vec![s; k], costs, budget).expect("budget ≥ min_total by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_rung_is_feasible_and_within_its_reported_gap(
        (k, s, tri, costs, pct) in raw_instance()
    ) {
        let p = build(k, s, &tri, costs, pct);
        let optimum = p
            .solve(&SolverConfig {
                method: SolveMethod::Exhaustive,
                ..Default::default()
            })
            .unwrap();
        prop_assert!(optimum.proved_optimal);
        for method in METHODS {
            let sol = p
                .solve(&SolverConfig { method, ..Default::default() })
                .unwrap();
            prop_assert!(p.is_feasible(&sol.choices), "{method:?} infeasible");
            prop_assert!(
                sol.gap.is_finite() && sol.gap >= 0.0,
                "{method:?}: bad gap {}",
                sol.gap
            );
            // The reported gap must cover the distance to the optimum:
            // objective − gap is a valid lower bound.
            prop_assert!(
                sol.objective - sol.gap <= optimum.objective + 1e-9,
                "{method:?}: objective {} − gap {} exceeds optimum {}",
                sol.objective,
                sol.gap,
                optimum.objective
            );
            if sol.proved_optimal {
                prop_assert!(
                    (sol.objective - optimum.objective).abs() < 1e-9,
                    "{method:?} claims proof at {} but optimum is {}",
                    sol.objective,
                    optimum.objective
                );
                prop_assert_eq!(sol.gap, 0.0);
            }
        }
    }

    #[test]
    fn preset_cancel_degrades_to_the_warm_start_without_error(
        (k, s, tri, costs, pct) in raw_instance()
    ) {
        let p = build(k, s, &tri, costs, pct);
        let warm = p.warm_start();
        prop_assert!(p.is_feasible(&warm.choices));
        for method in METHODS {
            let config = SolverConfig { method, ..Default::default() };
            config.cancel.store(true, Ordering::Relaxed);
            let sol = p.solve(&config).expect("cancel must degrade, not error");
            prop_assert_eq!(&sol.choices, &warm.choices, "{:?}", method);
            prop_assert_eq!(sol.termination, Termination::Cancelled);
            prop_assert_eq!(sol.method_used, MethodUsed::Greedy);
            prop_assert!(!sol.downgrades.is_empty());
        }
    }

    #[test]
    fn expired_deadlines_are_deterministic(
        (k, s, tri, costs, pct) in raw_instance()
    ) {
        let p = build(k, s, &tri, costs, pct);
        let solve = || {
            p.solve(&SolverConfig {
                max_wall: Some(Duration::ZERO),
                ..Default::default()
            })
            .unwrap()
        };
        let a = solve();
        let b = solve();
        prop_assert_eq!(&a.choices, &b.choices);
        prop_assert!(p.is_feasible(&a.choices));
        prop_assert_eq!(a.termination, Termination::DeadlineExceeded);
        prop_assert!(a.gap.is_finite() && a.gap >= 0.0);
    }
}
