//! Dense symmetric matrices, Jacobi eigendecomposition, and PSD projection.
//!
//! CLADO's sensitivity matrix Ĝ is symmetric but, measured on a small
//! sensitivity set, possibly indefinite. The paper projects it onto the PSD
//! cone by eigendecomposition and clamping negative eigenvalues — exactly
//! what [`SymMatrix::psd_project`] does, backed by a cyclic Jacobi
//! eigensolver (robust and plenty fast for the |𝔹|·I ≲ 200 matrices MPQ
//! produces).

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use std::fmt;

/// Relative off-diagonal tolerance at which Jacobi sweeps stop.
const JACOBI_TOL: f64 = 1e-12;
/// Maximum number of Jacobi sweeps (each sweep visits all off-diag pairs).
const JACOBI_MAX_SWEEPS: usize = 100;

/// A dense symmetric `n×n` matrix of `f64` values.
///
/// Symmetry is maintained by construction: [`SymMatrix::set`] writes both
/// `(i, j)` and `(j, i)`.
///
/// # Examples
///
/// ```
/// use clado_solver::SymMatrix;
///
/// let mut a = SymMatrix::zeros(2);
/// a.set(0, 0, 2.0);
/// a.set(0, 1, 1.0);
/// a.set(1, 1, 2.0);
/// let x = [1.0, -1.0];
/// assert_eq!(a.quadratic_form(&x), 2.0); // xᵀAx = 2 - 2·1 + 2
/// ```
#[derive(Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n×n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates a matrix from a row-major buffer, symmetrizing it as
    /// `(A + Aᵀ)/2` (useful when the two halves were measured separately).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*n`.
    pub fn from_dense_symmetrized(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "buffer length must be n²");
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = 0.5 * (data[i * n + j] + data[j * n + i]);
            }
        }
        m
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        self.data[i * self.n + j]
    }

    /// Sets entries `(i, j)` and `(j, i)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Evaluates the quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n, "vector length must match matrix dimension");
        let mut acc = 0.0;
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut r = 0.0;
            for (a, &xj) in row.iter().zip(x) {
                r += a * xj;
            }
            acc += x[i] * r;
        }
        acc
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Eigendecomposition by the cyclic Jacobi method.
    ///
    /// Returns eigenvalues (ascending) and the matching orthonormal
    /// eigenvectors.
    pub fn eigen(&self) -> EigenDecomposition {
        let n = self.n;
        let mut a = self.data.clone();
        // v holds the accumulated rotations; columns are eigenvectors.
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            v[i * n + i] = 1.0;
        }
        let norm = self.frobenius_norm().max(f64::MIN_POSITIVE);
        let mut sweeps = 0usize;
        for _sweep in 0..JACOBI_MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[i * n + j] * a[i * n + j];
                }
            }
            if off.sqrt() <= JACOBI_TOL * norm {
                break;
            }
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[p * n + q];
                    if apq.abs() <= JACOBI_TOL * norm / (n as f64) {
                        continue;
                    }
                    let app = a[p * n + p];
                    let aqq = a[q * n + q];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Tangent of the rotation angle, the stable formula.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation G(p,q,θ) on both sides of A.
                    for k in 0..n {
                        let akp = a[k * n + p];
                        let akq = a[k * n + q];
                        a[k * n + p] = c * akp - s * akq;
                        a[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p * n + k];
                        let aqk = a[q * n + k];
                        a[p * n + k] = c * apk - s * aqk;
                        a[q * n + k] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[k * n + p];
                        let vkq = v[k * n + q];
                        v[k * n + p] = c * vkp - s * vkq;
                        v[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[i * n + i], i)).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("eigenvalues are finite"));
        let values: Vec<f64> = pairs.iter().map(|&(e, _)| e).collect();
        let mut vectors = vec![0.0; n * n];
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for k in 0..n {
                vectors[k * n + new_col] = v[k * n + old_col];
            }
        }
        EigenDecomposition {
            n,
            values,
            vectors,
            sweeps,
        }
    }

    /// Projects the matrix onto the PSD cone: eigendecompose, clamp negative
    /// eigenvalues to zero, reassemble (Algorithm 1's final preprocessing
    /// step before the IQP solve).
    pub fn psd_project(&self) -> Self {
        self.psd_project_stats().matrix
    }

    /// [`SymMatrix::psd_project`] plus observability: how many eigenvalues
    /// were clamped to zero and how many Jacobi sweeps the decomposition
    /// took (surfaced as telemetry counters by `clado-core`).
    pub fn psd_project_stats(&self) -> PsdProjection {
        let eig = self.eigen();
        let clipped = eig.values.iter().filter(|&&e| e < 0.0).count();
        let clipped_mass: f64 = eig.values.iter().filter(|&&e| e < 0.0).map(|e| -e).sum();
        let min_eigenvalue = *eig.values.first().expect("n > 0");
        let max_eigenvalue = *eig.values.last().expect("n > 0");
        let total_mass: f64 = eig.values.iter().map(|e| e.abs()).sum();
        let min_positive = eig.values.iter().copied().find(|&e| e > 0.0);
        let condition = match min_positive {
            Some(mp) if max_eigenvalue > 0.0 => max_eigenvalue / mp,
            _ => 1.0,
        };
        PsdProjection {
            matrix: eig.reassemble_with(|e| e.max(0.0)),
            clipped,
            clipped_mass,
            sweeps: eig.sweeps,
            min_eigenvalue,
            max_eigenvalue,
            total_mass,
            condition,
        }
    }

    /// Smallest eigenvalue (convexity diagnostic).
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigen().values[0]
    }

    /// The first non-finite entry `(i, j, value)` in row-major order, if
    /// any. Used as a pre-solve validation: a NaN/Inf that slips into the
    /// IQP objective would silently poison every node bound, so callers
    /// reject the matrix up front instead.
    pub fn first_non_finite(&self) -> Option<(usize, usize, f64)> {
        self.data
            .iter()
            .enumerate()
            .find_map(|(idx, &v)| (!v.is_finite()).then_some((idx / self.n, idx % self.n, v)))
    }
}

impl fmt::Debug for SymMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SymMatrix({}×{}, ‖·‖F={:.3e})",
            self.n,
            self.n,
            self.frobenius_norm()
        )
    }
}

/// The result of [`SymMatrix::eigen`]: eigenvalues in ascending order and
/// the corresponding orthonormal eigenvectors (column `k` of `vectors`
/// pairs with `values[k]`).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    n: usize,
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Row-major `n×n` matrix whose columns are eigenvectors.
    pub vectors: Vec<f64>,
    /// Jacobi sweeps performed before the off-diagonal norm converged.
    pub sweeps: usize,
}

/// Result of [`SymMatrix::psd_project_stats`].
#[derive(Debug, Clone)]
pub struct PsdProjection {
    /// The projected (PSD) matrix.
    pub matrix: SymMatrix,
    /// Number of negative eigenvalues clamped to zero.
    pub clipped: usize,
    /// Total magnitude `Σ|λ|` of the clamped negative eigenvalues — how
    /// much of the measured matrix the projection discarded. A large
    /// value relative to `‖Ĝ‖F` means the sensitivity measurement was
    /// noisy (or poisoned) and the IQP objective is a poor surrogate.
    pub clipped_mass: f64,
    /// Jacobi sweeps the eigendecomposition took.
    pub sweeps: usize,
    /// Smallest eigenvalue of the *measured* (pre-projection) matrix.
    pub min_eigenvalue: f64,
    /// Largest eigenvalue of the measured matrix.
    pub max_eigenvalue: f64,
    /// Nuclear norm `Σ|λ|` of the measured spectrum. `clipped_mass /
    /// total_mass` is the fraction of the measurement the projection
    /// discarded — the Ω-hardening clip-mass ratio.
    pub total_mass: f64,
    /// Condition number of the *projected* matrix over its strictly
    /// positive eigenvalues (`λ_max / λ_min⁺`; 1.0 when no positive
    /// eigenvalue remains).
    pub condition: f64,
}

impl EigenDecomposition {
    /// Rebuilds `Σ f(λₖ) vₖ vₖᵀ`.
    pub fn reassemble_with(&self, f: impl Fn(f64) -> f64) -> SymMatrix {
        let n = self.n;
        let mut out = SymMatrix::zeros(n);
        for k in 0..n {
            let lam = f(self.values[k]);
            if lam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = self.vectors[i * n + k];
                if vik == 0.0 {
                    continue;
                }
                for j in i..n {
                    let add = lam * vik * self.vectors[j * n + k];
                    out.data[i * n + j] += add;
                    if i != j {
                        out.data[j * n + i] += add;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn quadratic_form_basic() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 4.0);
        a.set(0, 1, 2.0);
        approx(a.quadratic_form(&[1.0, 1.0]), 9.0, 1e-12);
        approx(a.quadratic_form(&[1.0, 0.0]), 1.0, 1e-12);
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 3.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 2.0);
        let eig = a.eigen();
        approx(eig.values[0], -1.0, 1e-10);
        approx(eig.values[1], 2.0, 1e-10);
        approx(eig.values[2], 3.0, 1e-10);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 2.0);
        a.set(0, 1, 1.0);
        let eig = a.eigen();
        approx(eig.values[0], 1.0, 1e-10);
        approx(eig.values[1], 3.0, 1e-10);
    }

    #[test]
    fn eigen_reconstruction_identity() {
        // A = V Λ Vᵀ must reproduce A.
        let mut a = SymMatrix::zeros(4);
        let vals = [
            [1.5, -0.3, 0.2, 0.0],
            [-0.3, 2.0, 0.5, -0.7],
            [0.2, 0.5, -1.0, 0.1],
            [0.0, -0.7, 0.1, 0.8],
        ];
        for i in 0..4 {
            for j in i..4 {
                a.set(i, j, vals[i][j]);
            }
        }
        let rebuilt = a.eigen().reassemble_with(|e| e);
        for i in 0..4 {
            for j in 0..4 {
                approx(rebuilt.get(i, j), a.get(i, j), 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 2.0);
        a.set(2, 2, 3.0);
        a.set(0, 1, 0.5);
        a.set(1, 2, -0.25);
        let eig = a.eigen();
        let n = 3;
        for c1 in 0..n {
            for c2 in 0..n {
                let dot: f64 = (0..n)
                    .map(|k| eig.vectors[k * n + c1] * eig.vectors[k * n + c2])
                    .sum();
                approx(dot, if c1 == c2 { 1.0 } else { 0.0 }, 1e-9);
            }
        }
    }

    #[test]
    fn psd_projection_clamps_negatives() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        a.set(0, 1, 2.0); // eigenvalues -1 and 3
        assert!(a.min_eigenvalue() < 0.0);
        let p = a.psd_project();
        assert!(p.min_eigenvalue() >= -1e-10);
        // Projection of the positive part: eigenvalue 3 with vector (1,1)/√2
        // gives entries 1.5 everywhere.
        approx(p.get(0, 0), 1.5, 1e-9);
        approx(p.get(0, 1), 1.5, 1e-9);
    }

    #[test]
    fn psd_projection_is_idempotent_on_psd_input() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 1.0);
        a.set(0, 1, 0.5);
        assert!(a.min_eigenvalue() > 0.0);
        let p = a.psd_project();
        for i in 0..2 {
            for j in 0..2 {
                approx(p.get(i, j), a.get(i, j), 1e-9);
            }
        }
    }

    #[test]
    fn psd_quadratic_form_is_nonnegative() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 0.2);
        a.set(1, 1, -0.6);
        a.set(2, 2, 0.3);
        a.set(0, 1, 0.5);
        a.set(0, 2, -0.4);
        a.set(1, 2, 0.9);
        let p = a.psd_project();
        for x in [[1.0, 0.0, 0.0], [1.0, -2.0, 0.5], [-0.3, 0.7, 1.1]] {
            assert!(p.quadratic_form(&x) >= -1e-9);
        }
    }

    #[test]
    fn psd_project_stats_reports_clip_and_sweep_counts() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        a.set(0, 1, 2.0); // eigenvalues -1 and 3
        let proj = a.psd_project_stats();
        assert_eq!(proj.clipped, 1);
        assert!(
            (proj.clipped_mass - 1.0).abs() < 1e-9,
            "the clamped eigenvalue −1 carries mass 1, got {}",
            proj.clipped_mass
        );
        assert!(proj.sweeps >= 1);
        assert_eq!(proj.matrix, a.psd_project());
        approx(proj.min_eigenvalue, -1.0, 1e-9);
        approx(proj.max_eigenvalue, 3.0, 1e-9);
        approx(proj.total_mass, 4.0, 1e-9);
        // Only one positive eigenvalue survives: condition collapses to
        // λmax/λmin⁺ = 3/3 = 1.
        approx(proj.condition, 1.0, 1e-9);
        // An already-diagonal matrix converges without any sweep and clips
        // nothing.
        let d = SymMatrix::identity(3);
        let proj = d.psd_project_stats();
        assert_eq!(proj.sweeps, 0);
        assert_eq!(proj.clipped, 0);
        assert_eq!(proj.clipped_mass, 0.0);
    }

    #[test]
    fn first_non_finite_locates_the_poisoned_entry() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 1.0);
        a.set(1, 2, 0.5);
        assert_eq!(a.first_non_finite(), None);
        a.set(1, 2, f64::NAN);
        let (i, j, v) = a.first_non_finite().expect("NaN present");
        // set() mirrors, so row-major order finds (1,2) first.
        assert_eq!((i, j), (1, 2));
        assert!(v.is_nan());
        let mut b = SymMatrix::zeros(2);
        b.set(1, 1, f64::INFINITY);
        let (i, j, v) = b.first_non_finite().expect("Inf present");
        assert_eq!((i, j), (1, 1));
        assert!(v.is_infinite());
    }

    #[test]
    fn symmetrized_constructor() {
        let m = SymMatrix::from_dense_symmetrized(2, &[1.0, 3.0, 1.0, 4.0]);
        approx(m.get(0, 1), 2.0, 1e-12);
        approx(m.get(1, 0), 2.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        SymMatrix::zeros(2).get(2, 0);
    }
}
