//! # clado-solver
//!
//! The optimization substrate of the CLADO reproduction: a dense symmetric
//! eigensolver with PSD projection (the paper's sensitivity-matrix
//! preprocessing) and an Integer Quadratic Program solver for the
//! bit-width-assignment problem of equation (11) — standing in for the
//! paper's CVXPY + GUROBI stack.
//!
//! ## Example
//!
//! ```
//! use clado_solver::{IqpProblem, SolverConfig, SymMatrix};
//!
//! let mut g = SymMatrix::zeros(4);
//! g.set(0, 0, 1.0);
//! g.set(1, 1, 0.1);
//! g.set(2, 2, 0.5);
//! g.set(3, 3, 0.05);
//! let g = g.psd_project(); // the paper's PSD approximation step
//! let problem = IqpProblem::new(g, &[2, 2], vec![10, 20, 10, 20], 30)?;
//! let solution = problem.solve(&SolverConfig::default())?;
//! assert!(solution.cost <= 30);
//! # Ok::<(), clado_solver::IqpError>(())
//! ```

#![warn(missing_docs)]

mod iqp;
mod linalg;
mod validate;

pub use iqp::{
    Downgrade, DowngradeReason, IqpError, IqpProblem, MethodUsed, Solution, SolveMethod,
    SolverConfig, Termination,
};
pub use linalg::{EigenDecomposition, PsdProjection, SymMatrix};
pub use validate::{
    diagnose, diagnose_raw, harden, harden_partial, harden_raw, ObservedMask, OmegaDiagnostics,
    OmegaReport, PartialOmegaReport,
};
