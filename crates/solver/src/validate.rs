//! Ω-matrix hardening: diagnose and repair (or reject) measured
//! sensitivity matrices before they reach the IQP objective.
//!
//! A Ĝ estimated on a small sensitivity set can arrive damaged in three
//! ways: non-finite entries (a poisoned probe), material asymmetry (the two
//! halves of a cross term measured inconsistently), and a spectrum the PSD
//! projection would mostly discard (clip-mass ratio near 1 — the objective
//! becomes projection artefact). The lenient path repairs what can be
//! repaired conservatively — zero off-diagonal non-finite entries (dropping
//! a cross term is safe; inventing one is not) and symmetrize — while a
//! non-finite *diagonal* is always rejected, because a layer's own
//! sensitivity cannot be conjured from nothing. Under strict hardening
//! (`--solver-strict`) every defect is a typed rejection instead.

use crate::iqp::IqpError;
use crate::SymMatrix;

/// Relative symmetry tolerance: defects up to `max|entry| ×` this are
/// attributed to floating-point accumulation order, not measurement error.
const SYMMETRY_TOL_REL: f64 = 1e-9;

/// What [`diagnose_raw`] found in a measured Ω buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct OmegaDiagnostics {
    /// Matrix dimension `n`.
    pub dim: usize,
    /// Largest absolute difference `|a_ij − a_ji|` (0 for a symmetric
    /// buffer; NaN-vs-number mismatches count via the finite side).
    pub symmetry_defect: f64,
    /// Non-finite entries on the diagonal.
    pub diagonal_non_finite: usize,
    /// Non-finite entries off the diagonal (counting both triangles).
    pub off_diagonal_non_finite: usize,
    /// Largest finite `|entry|` — the scale the symmetry tolerance is
    /// relative to.
    pub max_abs: f64,
}

impl OmegaDiagnostics {
    /// `true` when the buffer needs no repair: every entry finite and the
    /// symmetry defect within floating-point tolerance of the scale.
    pub fn is_clean(&self) -> bool {
        self.diagonal_non_finite == 0
            && self.off_diagonal_non_finite == 0
            && self.symmetry_defect <= SYMMETRY_TOL_REL * self.max_abs
    }
}

/// Scans a row-major `n×n` buffer for the defects Ω hardening acts on.
///
/// # Panics
///
/// Panics if `data.len() != n * n`.
pub fn diagnose_raw(n: usize, data: &[f64]) -> OmegaDiagnostics {
    assert_eq!(data.len(), n * n, "buffer length must be n²");
    let mut symmetry_defect = 0.0f64;
    let mut diagonal_non_finite = 0usize;
    let mut off_diagonal_non_finite = 0usize;
    let mut max_abs = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let v = data[i * n + j];
            if v.is_finite() {
                max_abs = max_abs.max(v.abs());
            } else if i == j {
                diagonal_non_finite += 1;
            } else {
                off_diagonal_non_finite += 1;
            }
            if i < j {
                let u = data[j * n + i];
                let d = (v - u).abs();
                if d.is_finite() {
                    symmetry_defect = symmetry_defect.max(d);
                }
            }
        }
    }
    OmegaDiagnostics {
        dim: n,
        symmetry_defect,
        diagonal_non_finite,
        off_diagonal_non_finite,
        max_abs,
    }
}

/// Diagnoses an already-symmetric [`SymMatrix`] (the defect is structurally
/// zero; non-finite counts still matter).
pub fn diagnose(matrix: &SymMatrix) -> OmegaDiagnostics {
    let n = matrix.dim();
    let data: Vec<f64> = (0..n * n).map(|idx| matrix.get(idx / n, idx % n)).collect();
    diagnose_raw(n, &data)
}

/// What [`harden_raw`] did to the buffer it accepted.
#[derive(Debug, Clone, PartialEq)]
pub struct OmegaReport {
    /// The pre-repair diagnostics.
    pub diagnostics: OmegaDiagnostics,
    /// Whether symmetrization changed any entry beyond tolerance.
    pub symmetrized: bool,
    /// Off-diagonal non-finite entries zeroed (counting both triangles).
    pub repaired_non_finite: usize,
}

impl OmegaReport {
    /// `true` if hardening changed the matrix at all.
    pub fn repaired(&self) -> bool {
        self.symmetrized || self.repaired_non_finite > 0
    }
}

/// Hardens a raw row-major Ω buffer into a solver-ready [`SymMatrix`].
///
/// Lenient (`strict == false`): off-diagonal non-finite entries are zeroed
/// (both triangles), the buffer is symmetrized as `(A + Aᵀ)/2`, and the
/// repairs are recorded in the [`OmegaReport`]. Strict: any defect is a
/// typed rejection.
///
/// # Errors
///
/// [`IqpError::NonFiniteObjective`] for a non-finite diagonal entry (always)
/// or any non-finite entry (strict); [`IqpError::AsymmetricObjective`] for
/// a beyond-tolerance symmetry defect (strict).
///
/// # Panics
///
/// Panics if `data.len() != n * n`.
pub fn harden_raw(
    n: usize,
    data: &[f64],
    strict: bool,
) -> Result<(SymMatrix, OmegaReport), IqpError> {
    let diagnostics = diagnose_raw(n, data);
    // A layer's own sensitivity cannot be repaired: reject diagonal
    // non-finite entries under either mode.
    if diagnostics.diagonal_non_finite > 0 {
        let (row, value) = (0..n)
            .map(|i| (i, data[i * n + i]))
            .find(|(_, v)| !v.is_finite())
            .expect("diagnostics counted a non-finite diagonal entry");
        return Err(IqpError::NonFiniteObjective {
            row,
            col: row,
            value,
        });
    }
    if strict {
        if let Some((idx, &value)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(IqpError::NonFiniteObjective {
                row: idx / n,
                col: idx % n,
                value,
            });
        }
        if diagnostics.symmetry_defect > SYMMETRY_TOL_REL * diagnostics.max_abs {
            return Err(IqpError::AsymmetricObjective {
                defect: diagnostics.symmetry_defect,
            });
        }
    }
    // Lenient repair: zero unusable cross terms, then symmetrize.
    let mut repaired = data.to_vec();
    let mut repaired_non_finite = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j && !repaired[i * n + j].is_finite() {
                repaired[i * n + j] = 0.0;
                repaired_non_finite += 1;
            }
        }
    }
    let matrix = SymMatrix::from_dense_symmetrized(n, &repaired);
    let symmetrized = diagnostics.symmetry_defect > SYMMETRY_TOL_REL * diagnostics.max_abs;
    Ok((
        matrix,
        OmegaReport {
            diagnostics,
            symmetrized,
            repaired_non_finite,
        },
    ))
}

/// [`harden_raw`] for a matrix that is already a [`SymMatrix`] (symmetric
/// by construction): only the non-finite checks and repairs apply.
///
/// # Errors
///
/// Same as [`harden_raw`], minus `AsymmetricObjective`.
pub fn harden(matrix: &SymMatrix, strict: bool) -> Result<(SymMatrix, OmegaReport), IqpError> {
    let n = matrix.dim();
    let data: Vec<f64> = (0..n * n).map(|idx| matrix.get(idx / n, idx % n)).collect();
    harden_raw(n, &data, strict)
}

/// Which entries of a partially-observed Ω were actually measured.
///
/// A sub-quadratic estimator spends its probe budget on a subset of the
/// cross-term grid; entries it never probed are *unobserved* — zero in the
/// matrix buffer but carrying no information, unlike a measured zero. The
/// mask is symmetric (observing `(i, j)` observes `(j, i)`), mirroring
/// [`SymMatrix`] storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedMask {
    n: usize,
    data: Vec<bool>,
}

impl ObservedMask {
    /// Creates an all-unobserved mask for an `n×n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "mask dimension must be positive");
        Self {
            n,
            data: vec![false; n * n],
        }
    }

    /// Mask dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Whether entry `(i, j)` was observed.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        self.data[i * self.n + j]
    }

    /// Marks entries `(i, j)` and `(j, i)` as observed.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        self.data[i * self.n + j] = true;
        self.data[j * self.n + i] = true;
    }

    /// Observed entries of the upper triangle (diagonal included).
    pub fn observed(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in i..self.n {
                if self.data[i * self.n + j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Total upper-triangle entries `n(n+1)/2`.
    pub fn total(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    /// Observed fraction of the upper triangle in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.observed() as f64 / self.total() as f64
    }

    /// First diagonal index without an observation, if any.
    pub fn first_unobserved_diagonal(&self) -> Option<usize> {
        (0..self.n).find(|&i| !self.data[i * self.n + i])
    }
}

/// What [`harden_partial`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialOmegaReport {
    /// Observed upper-triangle entries (diagonal included).
    pub observed: usize,
    /// Total upper-triangle entries.
    pub total: usize,
    /// The ordinary hardening report over the observed buffer.
    pub report: OmegaReport,
}

impl PartialOmegaReport {
    /// Observed fraction of the upper triangle in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.observed as f64 / self.total as f64
    }
}

/// Hardens a partially-observed Ω into a solver-ready matrix.
///
/// An unobserved *diagonal* entry is always rejected — estimation must
/// spend budget on every diagonal probe, because a variable's own
/// sensitivity cannot be defaulted. Unobserved off-diagonal entries are
/// legitimate zeros of the estimate (the estimator's completion step has
/// already filled in whatever it can infer), so the observed buffer then
/// goes through the ordinary [`harden`] path.
///
/// # Errors
///
/// [`IqpError::UnobservedDiagonal`] for a diagonal entry without an
/// observation; otherwise the same errors as [`harden`].
///
/// # Panics
///
/// Panics if the mask dimension differs from the matrix dimension.
pub fn harden_partial(
    matrix: &SymMatrix,
    mask: &ObservedMask,
    strict: bool,
) -> Result<(SymMatrix, PartialOmegaReport), IqpError> {
    assert_eq!(
        matrix.dim(),
        mask.dim(),
        "mask dimension must match matrix dimension"
    );
    if let Some(index) = mask.first_unobserved_diagonal() {
        return Err(IqpError::UnobservedDiagonal { index });
    }
    let (hardened, report) = harden(matrix, strict)?;
    Ok((
        hardened,
        PartialOmegaReport {
            observed: mask.observed(),
            total: mask.total(),
            report,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        vec![1.0, 0.5, 0.5, 2.0]
    }

    #[test]
    fn clean_matrix_passes_through_unchanged() {
        let (m, report) = harden_raw(2, &sample(), true).expect("clean input");
        assert!(!report.repaired());
        assert!(report.diagnostics.is_clean());
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn lenient_zeroes_off_diagonal_non_finite_and_symmetrizes() {
        let data = vec![1.0, f64::NAN, 0.4, 2.0];
        let (m, report) = harden_raw(2, &data, false).expect("lenient repairs");
        assert_eq!(report.repaired_non_finite, 1);
        assert!(report.repaired());
        // NaN zeroed, then averaged with the surviving 0.4.
        assert!((m.get(0, 1) - 0.2).abs() < 1e-12);
        assert_eq!(report.diagnostics.off_diagonal_non_finite, 1);
    }

    #[test]
    fn lenient_symmetrizes_asymmetric_buffers() {
        let data = vec![1.0, 0.8, 0.2, 2.0];
        let diag = diagnose_raw(2, &data);
        assert!((diag.symmetry_defect - 0.6).abs() < 1e-12);
        assert!(!diag.is_clean());
        let (m, report) = harden_raw(2, &data, false).expect("lenient symmetrizes");
        assert!(report.symmetrized);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strict_rejects_asymmetry_and_non_finite() {
        let asym = vec![1.0, 0.8, 0.2, 2.0];
        match harden_raw(2, &asym, true) {
            Err(IqpError::AsymmetricObjective { defect }) => {
                assert!((defect - 0.6).abs() < 1e-12)
            }
            other => panic!("expected AsymmetricObjective, got {other:?}"),
        }
        let poisoned = vec![1.0, f64::INFINITY, 0.4, 2.0];
        match harden_raw(2, &poisoned, true) {
            Err(IqpError::NonFiniteObjective { row, col, .. }) => assert_eq!((row, col), (0, 1)),
            other => panic!("expected NonFiniteObjective, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_non_finite_is_rejected_in_both_modes() {
        let data = vec![f64::NAN, 0.5, 0.5, 2.0];
        for strict in [false, true] {
            match harden_raw(2, &data, strict) {
                Err(IqpError::NonFiniteObjective { row, col, value }) => {
                    assert_eq!((row, col), (0, 0));
                    assert!(value.is_nan());
                }
                other => panic!("strict={strict}: expected NonFiniteObjective, got {other:?}"),
            }
        }
    }

    #[test]
    fn observed_mask_counts_upper_triangle() {
        let mut mask = ObservedMask::new(3);
        assert_eq!(mask.total(), 6);
        assert_eq!(mask.observed(), 0);
        mask.set(0, 0);
        mask.set(1, 1);
        mask.set(2, 2);
        mask.set(0, 2);
        assert_eq!(mask.observed(), 4);
        assert!(mask.get(2, 0), "observation is symmetric");
        assert!((mask.fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(mask.first_unobserved_diagonal(), None);
    }

    #[test]
    fn harden_partial_rejects_unobserved_diagonal() {
        let m = SymMatrix::identity(3);
        let mut mask = ObservedMask::new(3);
        mask.set(0, 0);
        mask.set(2, 2);
        match harden_partial(&m, &mask, false) {
            Err(IqpError::UnobservedDiagonal { index }) => assert_eq!(index, 1),
            other => panic!("expected UnobservedDiagonal, got {other:?}"),
        }
    }

    #[test]
    fn harden_partial_passes_fully_diagonal_observed_matrices() {
        let mut m = SymMatrix::identity(3);
        m.set(0, 1, 0.25);
        let mut mask = ObservedMask::new(3);
        for i in 0..3 {
            mask.set(i, i);
        }
        mask.set(0, 1);
        let (hardened, report) = harden_partial(&m, &mask, true).expect("observed diagonal");
        assert_eq!(hardened.get(0, 1), 0.25);
        assert_eq!(report.observed, 4);
        assert_eq!(report.total, 6);
        assert!(!report.report.repaired());
    }

    #[test]
    fn sym_matrix_harden_repairs_mirrored_entries() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 1.0);
        m.set(0, 2, f64::NAN); // mirrored into both triangles
        let (repaired, report) = harden(&m, false).expect("lenient repairs");
        assert_eq!(report.repaired_non_finite, 2);
        assert_eq!(repaired.get(0, 2), 0.0);
        assert_eq!(repaired.get(2, 0), 0.0);
        assert!(harden(&m, true).is_err());
    }
}
