//! Admissible lower bounds for branch and bound.
//!
//! The workhorse is the Dantzig LP relaxation of the multiple-choice
//! knapsack problem (MCKP): given per-candidate linearized objective
//! coefficients and costs, it returns a value no larger than any feasible
//! integer completion.

use super::IqpProblem;

/// One candidate inside an MCKP class.
#[derive(Debug, Clone, Copy)]
pub(crate) struct McKpItem {
    /// Linearized objective coefficient (to be minimized).
    pub value: f64,
    /// Cost in budget units.
    pub cost: u64,
}

/// Dantzig LP lower bound for the multiple-choice knapsack (minimization).
///
/// Each class in `classes` must contribute exactly one item; total cost must
/// not exceed `budget`. Returns `f64::INFINITY` when even the cheapest
/// selection exceeds the budget (the caller prunes).
pub(crate) fn mckp_lp_bound(classes: &[Vec<McKpItem>], budget: u64) -> f64 {
    // Step 1: per class, keep only LP-efficient items: sort by cost, drop
    // items not on the lower-left convex hull of (cost, value).
    let mut start_value = 0.0f64;
    let mut start_cost = 0u64;
    // Incremental swaps: (slope, value_delta, cost_delta).
    let mut swaps: Vec<(f64, f64, u64)> = Vec::new();
    for class in classes {
        debug_assert!(!class.is_empty());
        let mut items: Vec<McKpItem> = class.clone();
        items.sort_by(|a, b| {
            a.cost
                .cmp(&b.cost)
                .then(a.value.partial_cmp(&b.value).expect("finite"))
        });
        // Remove dominated: value must strictly decrease as cost increases.
        let mut frontier: Vec<McKpItem> = Vec::with_capacity(items.len());
        for it in items {
            if let Some(last) = frontier.last() {
                if it.cost == last.cost || it.value >= last.value {
                    continue;
                }
            }
            frontier.push(it);
        }
        // Convex-hull filter: slopes (Δvalue/Δcost) must be increasing.
        let mut hull: Vec<McKpItem> = Vec::with_capacity(frontier.len());
        for it in frontier {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                let s1 = (b.value - a.value) / (b.cost - a.cost) as f64;
                let s2 = (it.value - b.value) / (it.cost - b.cost) as f64;
                if s2 <= s1 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(it);
        }
        start_value += hull[0].value;
        start_cost += hull[0].cost;
        for pair in hull.windows(2) {
            let dv = pair[1].value - pair[0].value;
            let dc = pair[1].cost - pair[0].cost;
            debug_assert!(dc > 0);
            let slope = dv / dc as f64;
            if slope < 0.0 {
                swaps.push((slope, dv, dc));
            }
        }
    }
    if start_cost > budget {
        return f64::INFINITY;
    }
    // Step 2: apply the most profitable swaps (most negative slope first)
    // while the budget allows; the first partial swap is taken fractionally.
    swaps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite slopes"));
    let mut remaining = budget - start_cost;
    let mut value = start_value;
    for (slope, dv, dc) in swaps {
        if dc <= remaining {
            value += dv;
            remaining -= dc;
        } else {
            value += slope * remaining as f64;
            break;
        }
    }
    value
}

/// Deterministic admissible lower bound on the optimal objective of the
/// whole problem — the root-node version of the B&B bound: each variable's
/// quadratic interactions are under-approximated by per-row minima over
/// every other group, then the Dantzig LP relaxation of the resulting
/// multiple-choice knapsack accounts for the budget. Used to report
/// [`super::Solution::gap`] for heuristic terminations.
///
/// Always finite for problems that passed construction (the all-cheapest
/// assignment fits the budget).
pub(crate) fn root_lower_bound(problem: &IqpProblem) -> f64 {
    let g = problem.matrix();
    let k = problem.num_groups();
    let classes: Vec<Vec<McKpItem>> = (0..k)
        .map(|i| {
            (0..problem.group_size(i))
                .map(|m| {
                    let v = problem.var(i, m);
                    // coef(v) = g(v,v) + Σ_{j≠i} min_u∈j g(v,u) ≤ the true
                    // contribution of v in any full assignment containing it
                    // (cross terms are split symmetrically across rows).
                    let mut coef = g.get(v, v);
                    for j in 0..k {
                        if j == i {
                            continue;
                        }
                        coef += (0..problem.group_size(j))
                            .map(|u| g.get(v, problem.var(j, u)))
                            .fold(f64::INFINITY, f64::min);
                    }
                    McKpItem {
                        value: coef,
                        cost: problem.cost(i, m),
                    }
                })
                .collect()
        })
        .collect();
    mckp_lp_bound(&classes, problem.budget())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(value: f64, cost: u64) -> McKpItem {
        McKpItem { value, cost }
    }

    #[test]
    fn root_lower_bound_is_admissible_and_finite() {
        let p = super::super::tests::cross_term_instance();
        let lb = root_lower_bound(&p);
        assert!(lb.is_finite());
        // Scan all assignments: the bound must not exceed any feasible
        // objective.
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let ch = [a, b, c];
                    if p.is_feasible(&ch) {
                        let obj = p.assignment_objective(&ch);
                        assert!(lb <= obj + 1e-9, "bound {lb} > objective {obj} of {ch:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_class_picks_best_affordable() {
        let classes = vec![vec![item(1.0, 10), item(0.2, 20), item(0.0, 40)]];
        // Budget 40: integer optimum 0.0; LP bound must be ≤ that and ≥ ...
        assert!(mckp_lp_bound(&classes, 40) <= 0.0 + 1e-12);
        // Budget 10: only the first fits.
        assert!((mckp_lp_bound(&classes, 10) - 1.0).abs() < 1e-12);
        // Budget 15: fractional between items 1 and 2.
        let b = mckp_lp_bound(&classes, 15);
        assert!(b < 1.0 && b > 0.2, "{b}");
    }

    #[test]
    fn infeasible_returns_infinity() {
        let classes = vec![vec![item(0.0, 50)], vec![item(0.0, 60)]];
        assert!(mckp_lp_bound(&classes, 100).is_infinite());
    }

    #[test]
    fn bound_is_admissible_vs_bruteforce() {
        // Random-ish small instance; check bound ≤ best integer solution
        // for a sweep of budgets.
        let classes = vec![
            vec![item(0.9, 2), item(0.4, 4), item(0.05, 8)],
            vec![item(0.5, 3), item(0.3, 6), item(0.0, 12)],
            vec![item(1.5, 2), item(0.2, 4), item(0.1, 8)],
        ];
        for budget in [7u64, 9, 12, 16, 20, 28] {
            let mut best = f64::INFINITY;
            for a in 0..3 {
                for b in 0..3 {
                    for c in 0..3 {
                        let cost = classes[0][a].cost + classes[1][b].cost + classes[2][c].cost;
                        if cost <= budget {
                            best = best.min(
                                classes[0][a].value + classes[1][b].value + classes[2][c].value,
                            );
                        }
                    }
                }
            }
            let bound = mckp_lp_bound(&classes, budget);
            if best.is_finite() {
                assert!(
                    bound <= best + 1e-9,
                    "budget {budget}: bound {bound} > best {best}"
                );
            } else {
                assert!(bound.is_infinite());
            }
        }
    }

    #[test]
    fn dominated_items_are_ignored() {
        // Item (0.9, 5) is dominated by (0.4, 4); the bound with and
        // without it must be identical.
        let with = vec![vec![
            item(1.0, 2),
            item(0.9, 5),
            item(0.4, 4),
            item(0.05, 8),
        ]];
        let without = vec![vec![item(1.0, 2), item(0.4, 4), item(0.05, 8)]];
        for budget in [2u64, 4, 6, 8] {
            let a = mckp_lp_bound(&with, budget);
            let b = mckp_lp_bound(&without, budget);
            assert!((a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()));
        }
    }
}
