//! Brute-force enumeration, for small instances and as a test oracle.

use super::deadline::{Anytime, Stop, Ticker};
use super::{Candidate, IqpProblem, MethodUsed};

/// Enumerates every feasible assignment under the anytime controls in
/// `ctl`. Exponential: intended for `Π group_size ≲ 10⁶`.
///
/// On a stop the partial incumbent is discarded (the point reached depends
/// on wall clock) and the caller degrades to the next ladder rung.
pub(super) fn run(problem: &IqpProblem, ctl: &Anytime) -> Result<Candidate, Stop> {
    let k = problem.num_groups();
    let mut choices = vec![0usize; k];
    let mut ticker = Ticker::new(ctl);
    let mut best: Option<(Vec<usize>, f64, u64)> = None;
    loop {
        if let Some(stop) = ticker.tick() {
            return Err(stop);
        }
        if problem.is_feasible(&choices) {
            let obj = problem.assignment_objective(&choices);
            if best.as_ref().is_none_or(|(_, b, _)| obj < *b) {
                best = Some((choices.clone(), obj, problem.assignment_cost(&choices)));
            }
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == k {
                // Construction guarantees feasibility, so the scan found
                // at least the all-cheapest assignment.
                let (choices, objective, cost) =
                    best.expect("a feasible assignment exists after construction");
                return Ok(Candidate {
                    choices,
                    objective,
                    cost,
                    method: MethodUsed::Exhaustive,
                    proved: true,
                });
            }
            choices[pos] += 1;
            if choices[pos] < problem.group_size(pos) {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::cross_term_instance;
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn exhaustive_finds_global_optimum() {
        let p = cross_term_instance();
        let ctl = Anytime::resolve(None, None, Arc::new(AtomicBool::new(false)));
        let sol = run(&p, &ctl).expect("unconstrained enumeration completes");
        assert!(sol.proved);
        // Verify against a manual scan of all 8 assignments.
        let mut best = f64::INFINITY;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let ch = [a, b, c];
                    if p.is_feasible(&ch) {
                        best = best.min(p.assignment_objective(&ch));
                    }
                }
            }
        }
        assert!((sol.objective - best).abs() < 1e-12);
    }
}
