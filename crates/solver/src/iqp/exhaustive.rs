//! Brute-force enumeration, for small instances and as a test oracle.

use super::{IqpError, IqpProblem, Solution};

/// Enumerates every feasible assignment. Exponential: intended for
/// `Π group_size ≲ 10⁶`.
pub(super) fn solve(problem: &IqpProblem) -> Result<Solution, IqpError> {
    let k = problem.num_groups();
    let mut choices = vec![0usize; k];
    let mut best: Option<(Vec<usize>, f64, u64)> = None;
    loop {
        if problem.is_feasible(&choices) {
            let obj = problem.assignment_objective(&choices);
            if best.as_ref().is_none_or(|(_, b, _)| obj < *b) {
                best = Some((choices.clone(), obj, problem.assignment_cost(&choices)));
            }
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == k {
                let (choices, objective, cost) = best.ok_or(IqpError::Infeasible {
                    min_cost: problem.min_total_cost(),
                    budget: problem.budget(),
                })?;
                return Ok(Solution {
                    choices,
                    objective,
                    cost,
                    proved_optimal: true,
                    nodes_explored: 0,
                });
            }
            choices[pos] += 1;
            if choices[pos] < problem.group_size(pos) {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::cross_term_instance;

    #[test]
    fn exhaustive_finds_global_optimum() {
        let p = cross_term_instance();
        let sol = super::solve(&p).unwrap();
        assert!(sol.proved_optimal);
        // Verify against a manual scan of all 8 assignments.
        let mut best = f64::INFINITY;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let ch = [a, b, c];
                    if p.is_feasible(&ch) {
                        best = best.min(p.assignment_objective(&ch));
                    }
                }
            }
        }
        assert!((sol.objective - best).abs() < 1e-12);
    }
}
