//! Anytime-solve control: deadlines, cooperative cancellation, and the
//! vocabulary of the degradation ladder.
//!
//! Every IQP method checks an [`Anytime`] control block at deterministic
//! points — every [`TICK_MASK`]+1 enumeration steps, every branch-and-bound
//! node batch, every DP row, every local-search restart. The checks are
//! *observers only*: they never influence pruning, ordering, or any other
//! decision that shapes the search tree, so two runs with the same seed and
//! configuration visit identical states until one of them is stopped.
//!
//! Determinism under wall-clock stops is preserved by a discard rule rather
//! than by trying to stop at the same node twice: when a method is
//! interrupted by a deadline or a cancel flag (events whose timing is not
//! reproducible), its partial incumbent is thrown away and the ladder falls
//! to the next rung, which either completes deterministically or is itself
//! skipped. Only the node-cap stop — a pure function of the visit count —
//! may keep its incumbent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Deterministic check cadence: `Ticker::tick` consults the clock and the
/// cancel flag once every `TICK_MASK + 1` calls (a power of two).
pub(crate) const TICK_MASK: u64 = 1023;

/// Why a method stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stop {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancel flag was raised (e.g. Ctrl-C).
    Cancelled,
    /// The branch-and-bound node cap was exhausted (deterministic).
    NodeCap,
}

/// Resolved anytime controls for one `solve` call: the effective deadline
/// (the earlier of `SolverConfig::deadline` and now + `max_wall`, resolved
/// once at entry) and the shared cancel flag.
pub(crate) struct Anytime {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

impl Anytime {
    pub(crate) fn resolve(
        deadline: Option<Instant>,
        max_wall: Option<std::time::Duration>,
        cancel: Arc<AtomicBool>,
    ) -> Self {
        let wall = max_wall.and_then(|d| Instant::now().checked_add(d));
        let deadline = match (deadline, wall) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Self { deadline, cancel }
    }

    /// Immediate stop check (used at rung boundaries).
    pub(crate) fn check_now(&self) -> Option<Stop> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(Stop::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Stop::Deadline);
            }
        }
        None
    }
}

/// Counts work units and performs the stop check every `TICK_MASK + 1`
/// ticks, keeping the per-unit overhead to one increment and one mask.
pub(crate) struct Ticker<'a> {
    ctl: &'a Anytime,
    count: u64,
}

impl<'a> Ticker<'a> {
    pub(crate) fn new(ctl: &'a Anytime) -> Self {
        Self { ctl, count: 0 }
    }

    /// One work unit; returns a stop reason on check ticks only.
    pub(crate) fn tick(&mut self) -> Option<Stop> {
        self.count += 1;
        if self.count & TICK_MASK != 0 {
            return None;
        }
        self.ctl.check_now()
    }
}

/// How a [`super::Solution`] terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// Optimality was proved (B&B or exhaustive completed, or the exact DP
    /// applied to a separable instance).
    #[default]
    Proved,
    /// A heuristic method completed normally; the solution is feasible but
    /// only bounded through [`super::Solution::gap`].
    Heuristic,
    /// The branch-and-bound node cap was exhausted; the best incumbent
    /// found within the cap is returned (deterministic).
    NodeCapExhausted,
    /// The wall-clock deadline passed; a deterministically obtained
    /// fallback solution is returned.
    DeadlineExceeded,
    /// The cancel flag was raised; a deterministically obtained fallback
    /// solution is returned.
    Cancelled,
}

impl Termination {
    /// Stable lower-snake label for manifests and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Proved => "proved",
            Self::Heuristic => "heuristic",
            Self::NodeCapExhausted => "node_cap_exhausted",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Cancelled => "cancelled",
        }
    }
}

/// The method that produced the returned assignment — a rung of the
/// degradation ladder (exhaustive → B&B → DP-on-diagonal → local search →
/// greedy), plus the exact-DP fast path for separable instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodUsed {
    /// Full enumeration.
    Exhaustive,
    /// Branch and bound (warm-started by local search).
    BranchAndBound,
    /// Exact multiple-choice-knapsack DP on a separable instance.
    DynamicProgramming,
    /// DP on the diagonal of a *non*-separable instance: the cross terms
    /// are dropped for the knapsack, then the returned choices are scored
    /// on the true quadratic objective. Heuristic.
    DiagonalDp,
    /// Multi-start local search.
    LocalSearch,
    /// The greedy budget-filling construction — the ladder's floor, which
    /// always completes, even with the cancel flag already raised.
    Greedy,
}

impl MethodUsed {
    /// Stable lower-snake label for manifests and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Exhaustive => "exhaustive",
            Self::BranchAndBound => "branch_and_bound",
            Self::DynamicProgramming => "dynamic_programming",
            Self::DiagonalDp => "diagonal_dp",
            Self::LocalSearch => "local_search",
            Self::Greedy => "greedy",
        }
    }
}

/// Why the ladder stepped down from one rung to the next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DowngradeReason {
    /// The wall-clock deadline passed while (or before) the rung ran.
    DeadlineExceeded,
    /// The cancel flag was raised.
    Cancelled,
    /// The branch-and-bound node cap was exhausted.
    NodeCapExhausted,
    /// The instance has cross-layer terms, so the exact DP does not apply.
    NotSeparable {
        /// Largest absolute off-diagonal-block entry.
        defect: f64,
    },
    /// The gcd-scaled budget exceeds the DP table limit.
    TableTooLarge,
}

impl DowngradeReason {
    /// Stable lower-snake slug used in `solver.downgrades.<slug>` counters.
    pub fn slug(&self) -> &'static str {
        match self {
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Cancelled => "cancelled",
            Self::NodeCapExhausted => "node_cap_exhausted",
            Self::NotSeparable { .. } => "not_separable",
            Self::TableTooLarge => "table_too_large",
        }
    }
}

impl From<Stop> for DowngradeReason {
    fn from(stop: Stop) -> Self {
        match stop {
            Stop::Deadline => Self::DeadlineExceeded,
            Stop::Cancelled => Self::Cancelled,
            Stop::NodeCap => Self::NodeCapExhausted,
        }
    }
}

/// One step down the degradation ladder, recorded in
/// [`super::Solution::downgrades`] and surfaced as `solver.downgrades`
/// telemetry counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Downgrade {
    /// The rung that could not complete.
    pub from: MethodUsed,
    /// The rung the ladder fell to.
    pub to: MethodUsed,
    /// Why.
    pub reason: DowngradeReason,
}

impl std::fmt::Display for Downgrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}->{} ({})",
            self.from.label(),
            self.to.label(),
            self.reason.slug()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn resolve_takes_the_earlier_of_deadline_and_max_wall() {
        let cancel = Arc::new(AtomicBool::new(false));
        let far = Instant::now() + Duration::from_secs(3600);
        let ctl = Anytime::resolve(Some(far), Some(Duration::ZERO), cancel.clone());
        assert_eq!(ctl.check_now(), Some(Stop::Deadline));
        let ctl = Anytime::resolve(Some(far), None, cancel.clone());
        assert_eq!(ctl.check_now(), None);
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(ctl.check_now(), Some(Stop::Cancelled));
    }

    #[test]
    fn ticker_checks_only_on_mask_boundaries() {
        let cancel = Arc::new(AtomicBool::new(true));
        let ctl = Anytime::resolve(None, None, cancel);
        let mut ticker = Ticker::new(&ctl);
        for _ in 0..TICK_MASK {
            assert_eq!(ticker.tick(), None);
        }
        assert_eq!(ticker.tick(), Some(Stop::Cancelled));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Termination::DeadlineExceeded.label(), "deadline_exceeded");
        assert_eq!(MethodUsed::DiagonalDp.label(), "diagonal_dp");
        assert_eq!(DowngradeReason::TableTooLarge.slug(), "table_too_large");
        let d = Downgrade {
            from: MethodUsed::BranchAndBound,
            to: MethodUsed::DiagonalDp,
            reason: DowngradeReason::NodeCapExhausted,
        };
        assert_eq!(
            d.to_string(),
            "branch_and_bound->diagonal_dp (node_cap_exhausted)"
        );
    }
}
