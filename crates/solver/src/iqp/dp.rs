//! Exact dynamic programming for *separable* instances (diagonal G).
//!
//! The multiple-choice knapsack DP is the classic solver behind
//! HAWQ-style ILP bit allocation: when no cross-layer terms exist, the
//! objective decomposes per layer and `dp[c] = min objective within cost c`
//! solves the problem exactly in `O(I · |𝔹| · C/gcd)` time.

// Index loops mirror the DP recurrences directly.
#![allow(clippy::needless_range_loop)]

use super::{IqpError, IqpProblem, Solution};

/// Maximum DP table width (budget units after gcd scaling); larger
/// instances should use branch and bound instead.
const MAX_CAPACITY: u64 = 4_000_000;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Returns the largest absolute off-diagonal-block entry (the separability
/// defect). Zero means the instance is exactly separable.
pub(super) fn separability_defect(problem: &IqpProblem) -> f64 {
    let g = problem.matrix();
    let mut defect = 0.0f64;
    for i in 0..problem.num_groups() {
        for j in 0..problem.num_groups() {
            if i == j {
                continue;
            }
            for m in 0..problem.group_size(i) {
                for n in 0..problem.group_size(j) {
                    defect = defect.max(g.get(problem.var(i, m), problem.var(j, n)).abs());
                }
            }
        }
    }
    defect
}

/// Solves a separable instance exactly by multiple-choice knapsack DP.
///
/// # Errors
///
/// [`IqpError::NotSeparable`] if the instance has cross-layer terms, or
/// [`IqpError::Infeasible`] if no assignment fits (checked at problem
/// construction, so not expected in practice). Instances whose scaled
/// budget exceeds an internal capacity limit also report `NotSeparable`
/// semantics via branch-and-bound being the right tool; they return an
/// error describing the limit.
pub(super) fn solve(problem: &IqpProblem) -> Result<Solution, IqpError> {
    let defect = separability_defect(problem);
    if defect > 0.0 {
        return Err(IqpError::NotSeparable { defect });
    }
    let k = problem.num_groups();
    // Scale costs by their gcd to shrink the table.
    let mut g = problem.budget();
    for i in 0..k {
        for m in 0..problem.group_size(i) {
            g = gcd(g, problem.cost(i, m));
        }
    }
    let g = g.max(1);
    let capacity = problem.budget() / g;
    if capacity > MAX_CAPACITY {
        return Err(IqpError::NotSeparable {
            defect: -1.0, // sentinel: table too large; documented in Display
        });
    }
    let cap = capacity as usize;

    const UNREACHED: f64 = f64::INFINITY;
    let mut dp = vec![UNREACHED; cap + 1];
    dp[0] = 0.0;
    // choice[i][c]: candidate chosen for layer i at cost c (u8 fits |𝔹|≤255).
    let mut choice = vec![vec![u8::MAX; cap + 1]; k];
    let mut reached_cost = 0usize; // max populated cost so far (prefix sums)

    for i in 0..k {
        let mut next = vec![UNREACHED; cap + 1];
        let mut next_reached = 0usize;
        for m in 0..problem.group_size(i) {
            let v = problem.var(i, m);
            let val = problem.matrix().get(v, v);
            let cost = (problem.cost(i, m) / g) as usize;
            if cost > cap {
                continue;
            }
            for c in 0..=reached_cost.min(cap - cost) {
                if dp[c] == UNREACHED {
                    continue;
                }
                let nc = c + cost;
                let nv = dp[c] + val;
                if nv < next[nc] {
                    next[nc] = nv;
                    choice[i][nc] = m as u8;
                    next_reached = next_reached.max(nc);
                }
            }
        }
        dp = next;
        reached_cost = next_reached;
    }

    // Best objective over all affordable costs.
    let (best_cost, best_val) = dp
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != UNREACHED)
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .ok_or(IqpError::Infeasible {
            min_cost: problem.min_total_cost(),
            budget: problem.budget(),
        })?;

    // Reconstruct choices backwards.
    let mut choices = vec![0usize; k];
    let mut c = best_cost;
    for i in (0..k).rev() {
        let m = choice[i][c];
        assert_ne!(m, u8::MAX, "reconstruction hit an unreached cell");
        choices[i] = m as usize;
        c -= (problem.cost(i, m as usize) / g) as usize;
    }
    debug_assert_eq!(c, 0);

    Ok(Solution {
        objective: *best_val,
        cost: problem.assignment_cost(&choices),
        choices,
        proved_optimal: true,
        nodes_explored: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::super::{IqpProblem, SolveMethod, SolverConfig};
    use super::*;
    use crate::SymMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_separable(seed: u64, k: usize) -> IqpProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3 * k;
        let mut g = SymMatrix::zeros(n);
        for v in 0..n {
            g.set(v, v, rng.gen_range(-0.2..1.0));
        }
        let costs: Vec<u64> = (0..n)
            .map(|v| ((v % 3) as u64 * 2 + 2) * rng.gen_range(5..40))
            .collect();
        let min_cost: u64 = (0..k)
            .map(|i| (0..3).map(|m| costs[3 * i + m]).min().unwrap())
            .sum();
        let max_cost: u64 = (0..k)
            .map(|i| (0..3).map(|m| costs[3 * i + m]).max().unwrap())
            .sum();
        let budget = min_cost + (max_cost - min_cost) * 3 / 5;
        IqpProblem::new(g, &vec![3; k], costs, budget).expect("feasible")
    }

    #[test]
    fn dp_matches_exhaustive_on_random_separable_instances() {
        for seed in 0..15 {
            let p = random_separable(seed, 5);
            let dp = solve(&p).unwrap();
            let ex = p
                .solve(&SolverConfig {
                    method: SolveMethod::Exhaustive,
                    ..Default::default()
                })
                .unwrap();
            assert!(
                (dp.objective - ex.objective).abs() < 1e-9,
                "seed {seed}: dp {} vs exhaustive {}",
                dp.objective,
                ex.objective
            );
            assert!(dp.cost <= p.budget());
            assert!(dp.proved_optimal);
            assert!((p.assignment_objective(&dp.choices) - dp.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_rejects_cross_terms() {
        let mut g = SymMatrix::zeros(4);
        g.set(0, 0, 1.0);
        g.set(2, 2, 1.0);
        g.set(0, 2, -0.5); // cross-layer entry
        let p = IqpProblem::new(g, &[2, 2], vec![2, 4, 2, 4], 8).unwrap();
        match solve(&p) {
            Err(IqpError::NotSeparable { defect }) => assert!((defect - 0.5).abs() < 1e-12),
            other => panic!("expected NotSeparable, got {other:?}"),
        }
    }

    #[test]
    fn dp_via_public_method_selector() {
        let p = random_separable(99, 6);
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::DynamicProgramming,
                ..Default::default()
            })
            .unwrap();
        let bb = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                ..Default::default()
            })
            .unwrap();
        assert!((sol.objective - bb.objective).abs() < 1e-9);
    }

    #[test]
    fn negative_sensitivities_still_fit_the_budget() {
        // All-negative diagonal wants maximum cost everywhere; DP must still
        // respect the knapsack.
        let mut g = SymMatrix::zeros(4);
        for v in 0..4 {
            g.set(v, v, -1.0 - v as f64);
        }
        let p = IqpProblem::new(g, &[2, 2], vec![2, 10, 2, 10], 12).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.cost <= 12);
        // Best affordable: exactly one expensive choice. Two optima tie at
        // objective −5 ([1,0] and [0,1]); accept either.
        assert!((sol.objective - (-5.0)).abs() < 1e-12, "{}", sol.objective);
        assert_eq!(sol.cost, 12);
    }
}
