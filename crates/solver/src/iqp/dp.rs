//! Exact dynamic programming over the diagonal of G.
//!
//! The multiple-choice knapsack DP is the classic solver behind
//! HAWQ-style ILP bit allocation: when no cross-layer terms exist, the
//! objective decomposes per layer and `dp[c] = min objective within cost c`
//! solves the problem exactly in `O(I · |𝔹| · C/gcd)` time.
//!
//! [`knapsack`] itself never inspects the off-diagonal blocks — it always
//! optimizes the diagonal relaxation. The caller (the degradation ladder in
//! `mod.rs`) decides what that means: on a separable instance the result is
//! the proved optimum ([`super::MethodUsed::DynamicProgramming`]); on a
//! non-separable one it is a heuristic whose choices are re-scored on the
//! true quadratic objective ([`super::MethodUsed::DiagonalDp`]).

// Index loops mirror the DP recurrences directly.
#![allow(clippy::needless_range_loop)]

use super::deadline::{Anytime, Stop, Ticker};
use super::IqpProblem;

/// Maximum DP table width (budget units after gcd scaling); larger
/// instances fall through to local search.
const MAX_CAPACITY: u64 = 4_000_000;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Returns the largest absolute off-diagonal-block entry (the separability
/// defect). Zero means the instance is exactly separable.
pub(super) fn separability_defect(problem: &IqpProblem) -> f64 {
    let g = problem.matrix();
    let mut defect = 0.0f64;
    for i in 0..problem.num_groups() {
        for j in 0..problem.num_groups() {
            if i == j {
                continue;
            }
            for m in 0..problem.group_size(i) {
                for n in 0..problem.group_size(j) {
                    defect = defect.max(g.get(problem.var(i, m), problem.var(j, n)).abs());
                }
            }
        }
    }
    defect
}

/// Outcome of the knapsack DP.
pub(super) enum DpOutcome {
    /// The diagonal-optimal choices (one candidate index per group).
    Solved(Vec<usize>),
    /// The gcd-scaled budget exceeds [`MAX_CAPACITY`].
    TooLarge,
    /// Stopped by the anytime controls mid-table.
    Stopped(Stop),
}

/// Multiple-choice knapsack DP over the diagonal of G, under the anytime
/// controls in `ctl` (checked on deterministic cell-count boundaries).
pub(super) fn knapsack(problem: &IqpProblem, ctl: &Anytime) -> DpOutcome {
    let k = problem.num_groups();
    // Scale costs by their gcd to shrink the table.
    let mut g = problem.budget();
    for i in 0..k {
        for m in 0..problem.group_size(i) {
            g = gcd(g, problem.cost(i, m));
        }
    }
    let g = g.max(1);
    let capacity = problem.budget() / g;
    if capacity > MAX_CAPACITY {
        return DpOutcome::TooLarge;
    }
    let cap = capacity as usize;
    let mut ticker = Ticker::new(ctl);

    const UNREACHED: f64 = f64::INFINITY;
    let mut dp = vec![UNREACHED; cap + 1];
    dp[0] = 0.0;
    // choice[i][c]: candidate chosen for layer i at cost c (u8 fits |𝔹|≤255).
    let mut choice = vec![vec![u8::MAX; cap + 1]; k];
    let mut reached_cost = 0usize; // max populated cost so far (prefix sums)

    for i in 0..k {
        let mut next = vec![UNREACHED; cap + 1];
        let mut next_reached = 0usize;
        for m in 0..problem.group_size(i) {
            let v = problem.var(i, m);
            let val = problem.matrix().get(v, v);
            let cost = (problem.cost(i, m) / g) as usize;
            if cost > cap {
                continue;
            }
            for c in 0..=reached_cost.min(cap - cost) {
                if let Some(stop) = ticker.tick() {
                    return DpOutcome::Stopped(stop);
                }
                if dp[c] == UNREACHED {
                    continue;
                }
                let nc = c + cost;
                let nv = dp[c] + val;
                if nv < next[nc] {
                    next[nc] = nv;
                    choice[i][nc] = m as u8;
                    next_reached = next_reached.max(nc);
                }
            }
        }
        dp = next;
        reached_cost = next_reached;
    }

    // Best objective over all affordable costs. Construction guarantees
    // `min_total_cost ≤ budget`, and the gcd divides every cost exactly, so
    // at least one cell is reached.
    let (best_cost, _) = dp
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != UNREACHED)
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("a feasible assignment exists after construction");

    // Reconstruct choices backwards.
    let mut choices = vec![0usize; k];
    let mut c = best_cost;
    for i in (0..k).rev() {
        let m = choice[i][c];
        assert_ne!(m, u8::MAX, "reconstruction hit an unreached cell");
        choices[i] = m as usize;
        c -= (problem.cost(i, m as usize) / g) as usize;
    }
    debug_assert_eq!(c, 0);
    DpOutcome::Solved(choices)
}

#[cfg(test)]
mod tests {
    use super::super::{DowngradeReason, IqpProblem, MethodUsed, SolveMethod, SolverConfig};
    use super::*;
    use crate::SymMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn unconstrained() -> Anytime {
        Anytime::resolve(None, None, Arc::new(AtomicBool::new(false)))
    }

    fn random_separable(seed: u64, k: usize) -> IqpProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3 * k;
        let mut g = SymMatrix::zeros(n);
        for v in 0..n {
            g.set(v, v, rng.gen_range(-0.2..1.0));
        }
        let costs: Vec<u64> = (0..n)
            .map(|v| ((v % 3) as u64 * 2 + 2) * rng.gen_range(5..40))
            .collect();
        let min_cost: u64 = (0..k)
            .map(|i| (0..3).map(|m| costs[3 * i + m]).min().unwrap())
            .sum();
        let max_cost: u64 = (0..k)
            .map(|i| (0..3).map(|m| costs[3 * i + m]).max().unwrap())
            .sum();
        let budget = min_cost + (max_cost - min_cost) * 3 / 5;
        IqpProblem::new(g, &vec![3; k], costs, budget).expect("feasible")
    }

    #[test]
    fn dp_matches_exhaustive_on_random_separable_instances() {
        for seed in 0..15 {
            let p = random_separable(seed, 5);
            let choices = match knapsack(&p, &unconstrained()) {
                DpOutcome::Solved(c) => c,
                _ => panic!("seed {seed}: unconstrained DP must solve"),
            };
            let objective = p.assignment_objective(&choices);
            let ex = p
                .solve(&SolverConfig {
                    method: SolveMethod::Exhaustive,
                    ..Default::default()
                })
                .unwrap();
            assert!(
                (objective - ex.objective).abs() < 1e-9,
                "seed {seed}: dp {objective} vs exhaustive {}",
                ex.objective
            );
            assert!(p.assignment_cost(&choices) <= p.budget());
        }
    }

    #[test]
    fn dp_on_cross_terms_degrades_to_the_diagonal_relaxation() {
        let mut g = SymMatrix::zeros(4);
        g.set(0, 0, 1.0);
        g.set(2, 2, 1.0);
        g.set(0, 2, -0.5); // cross-layer entry
        let p = IqpProblem::new(g, &[2, 2], vec![2, 4, 2, 4], 8).unwrap();
        assert!((separability_defect(&p) - 0.5).abs() < 1e-12);
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::DynamicProgramming,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(sol.method_used, MethodUsed::DiagonalDp);
        assert!(!sol.proved_optimal);
        assert!(matches!(
            sol.downgrades[0].reason,
            DowngradeReason::NotSeparable { defect } if (defect - 0.5).abs() < 1e-12
        ));
    }

    #[test]
    fn dp_via_public_method_selector() {
        let p = random_separable(99, 6);
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::DynamicProgramming,
                ..Default::default()
            })
            .unwrap();
        assert!(sol.proved_optimal);
        assert_eq!(sol.method_used, MethodUsed::DynamicProgramming);
        let bb = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                ..Default::default()
            })
            .unwrap();
        assert!((sol.objective - bb.objective).abs() < 1e-9);
    }

    #[test]
    fn negative_sensitivities_still_fit_the_budget() {
        // All-negative diagonal wants maximum cost everywhere; DP must still
        // respect the knapsack.
        let mut g = SymMatrix::zeros(4);
        for v in 0..4 {
            g.set(v, v, -1.0 - v as f64);
        }
        let p = IqpProblem::new(g, &[2, 2], vec![2, 10, 2, 10], 12).unwrap();
        let choices = match knapsack(&p, &unconstrained()) {
            DpOutcome::Solved(c) => c,
            _ => panic!("unconstrained DP must solve"),
        };
        let cost = p.assignment_cost(&choices);
        assert!(cost <= 12);
        // Best affordable: exactly one expensive choice. Two optima tie at
        // objective −5 ([1,0] and [0,1]); accept either.
        let objective = p.assignment_objective(&choices);
        assert!((objective - (-5.0)).abs() < 1e-12, "{objective}");
        assert_eq!(cost, 12);
    }

    #[test]
    fn preset_cancel_stops_the_table_fill() {
        // gcd 1 and a wide budget force a table with far more than one
        // check-tick's worth of cells, so the first boundary check fires
        // inside the fill.
        let g = SymMatrix::zeros(4);
        let p = IqpProblem::new(g, &[2, 2], vec![1, 3000, 1, 3000], 6000).unwrap();
        let cancel = Arc::new(AtomicBool::new(true));
        let ctl = Anytime::resolve(None, None, cancel);
        match knapsack(&p, &ctl) {
            DpOutcome::Stopped(Stop::Cancelled) => {}
            DpOutcome::Solved(_) => panic!("cancel flag ignored"),
            _ => panic!("unexpected outcome"),
        }
    }
}
