//! Integer Quadratic Programming for mixed-precision bit-width assignment.
//!
//! The problem solved here is the paper's equation (11):
//!
//! ```text
//! min  αᵀ Ĝ α
//! s.t. one choice per group (layer): Σ_m α_m⁽ⁱ⁾ = 1, α binary
//!      Σ cost(chosen) ≤ budget
//! ```
//!
//! where group `i` holds the |𝔹| candidate bit-widths of layer `i` and
//! `cost` is `|w⁽ⁱ⁾|·b_m` in bits. Three solvers are provided:
//!
//! * [`SolveMethod::BranchAndBound`] — exact (within a node budget), with an
//!   admissible bound combining the quadratic structure and a Dantzig-style
//!   LP relaxation of the multiple-choice knapsack;
//! * [`SolveMethod::LocalSearch`] — multi-start greedy descent, used
//!   standalone for large instances and as the B&B incumbent;
//! * [`SolveMethod::Exhaustive`] — brute force, for small instances and
//!   testing.

mod bnb;
mod bounds;
mod dp;
mod exhaustive;
mod local;

use crate::SymMatrix;
use clado_telemetry::Telemetry;
use std::fmt;

/// Errors produced when building or solving an [`IqpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum IqpError {
    /// Matrix dimension does not match the total number of variables.
    DimensionMismatch {
        /// Matrix dimension.
        matrix: usize,
        /// Total variable count implied by the groups.
        variables: usize,
    },
    /// `costs` length does not match the variable count.
    CostLengthMismatch {
        /// Cost vector length.
        costs: usize,
        /// Total variable count.
        variables: usize,
    },
    /// A group is empty.
    EmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
    /// No assignment satisfies the budget (even all-minimum-cost).
    Infeasible {
        /// Cheapest achievable cost.
        min_cost: u64,
        /// The requested budget.
        budget: u64,
    },
    /// The dynamic-programming solver was asked to solve an instance with
    /// cross-layer terms (or one whose scaled budget exceeds the DP table
    /// limit, signalled by a negative `defect`).
    NotSeparable {
        /// Largest absolute off-diagonal-block entry; `-1.0` means the
        /// instance is separable but too large for the DP table.
        defect: f64,
    },
    /// The objective matrix contains a NaN or infinite entry; every solver
    /// would silently mis-rank assignments, so construction refuses it.
    NonFiniteObjective {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
}

impl fmt::Display for IqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { matrix, variables } => write!(
                f,
                "sensitivity matrix is {matrix}×{matrix} but groups imply {variables} variables"
            ),
            Self::CostLengthMismatch { costs, variables } => {
                write!(
                    f,
                    "cost vector has {costs} entries for {variables} variables"
                )
            }
            Self::EmptyGroup { group } => write!(f, "group {group} has no candidates"),
            Self::Infeasible { min_cost, budget } => write!(
                f,
                "infeasible: cheapest assignment costs {min_cost} bits, budget is {budget}"
            ),
            Self::NotSeparable { defect } if *defect < 0.0 => {
                write!(
                    f,
                    "instance too large for the DP table; use branch and bound"
                )
            }
            Self::NotSeparable { defect } => write!(
                f,
                "instance has cross-layer terms (max |off-diagonal| = {defect:.3e}); \
                 the DP solver handles separable objectives only"
            ),
            Self::NonFiniteObjective { row, col, value } => write!(
                f,
                "objective matrix entry ({row}, {col}) is non-finite ({value}); \
                 quarantine or re-measure the sensitivity before solving"
            ),
        }
    }
}

impl std::error::Error for IqpError {}

/// Solver strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMethod {
    /// Local-search warm start, then branch-and-bound within the node cap.
    #[default]
    Auto,
    /// Branch and bound only (still warm-started by one greedy descent).
    BranchAndBound,
    /// Multi-start local search only.
    LocalSearch,
    /// Exact multiple-choice-knapsack dynamic programming; separable
    /// (diagonal) objectives only — the classic HAWQ-style ILP path.
    DynamicProgramming,
    /// Full enumeration (exponential; small instances only).
    Exhaustive,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Strategy to use.
    pub method: SolveMethod,
    /// Maximum number of branch-and-bound nodes before returning the best
    /// incumbent with `proved_optimal = false`.
    pub max_nodes: u64,
    /// Number of local-search restarts.
    pub restarts: usize,
    /// RNG seed for local-search perturbations.
    pub seed: u64,
    /// Telemetry sink for solve spans and node/prune counters; never
    /// affects the solution.
    pub telemetry: Telemetry,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            method: SolveMethod::Auto,
            max_nodes: 2_000_000,
            restarts: 24,
            seed: 0x51AD0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A solved bit-width assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Chosen candidate index within each group (layer), in group order.
    pub choices: Vec<usize>,
    /// Objective value `αᵀĜα` of the assignment.
    pub objective: f64,
    /// Total cost (bits) of the assignment.
    pub cost: u64,
    /// Whether optimality was proved (B&B completed / exhaustive).
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored (0 for other methods).
    pub nodes_explored: u64,
}

/// The integer quadratic program of equation (11).
///
/// # Examples
///
/// ```
/// use clado_solver::{IqpProblem, SolverConfig, SymMatrix};
///
/// // Two layers, two bit choices each. Diagonal = layer sensitivities.
/// let mut g = SymMatrix::zeros(4);
/// g.set(0, 0, 1.0); // layer 0, cheap choice: high error
/// g.set(1, 1, 0.1); // layer 0, expensive choice: low error
/// g.set(2, 2, 0.5);
/// g.set(3, 3, 0.05);
/// let problem = IqpProblem::new(g, &[2, 2], vec![10, 20, 10, 20], 30)?;
/// let sol = problem.solve(&SolverConfig::default())?;
/// // Budget 30 permits exactly one expensive choice; layer 0 gains more.
/// assert_eq!(sol.choices, vec![1, 0]);
/// # Ok::<(), clado_solver::IqpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IqpProblem {
    g: SymMatrix,
    /// Start offset of each group in variable space; one extra final entry.
    offsets: Vec<usize>,
    costs: Vec<u64>,
    budget: u64,
}

impl IqpProblem {
    /// Builds a problem instance.
    ///
    /// `group_sizes[i]` is the number of candidates for layer `i`; variables
    /// are laid out group-contiguously, matching the paper's `Ĝ` indexing
    /// `(|𝔹|·i + m)`.
    ///
    /// # Errors
    ///
    /// Returns an [`IqpError`] describing any dimensional inconsistency or
    /// an unconditionally infeasible budget.
    pub fn new(
        g: SymMatrix,
        group_sizes: &[usize],
        costs: Vec<u64>,
        budget: u64,
    ) -> Result<Self, IqpError> {
        let mut offsets = Vec::with_capacity(group_sizes.len() + 1);
        let mut total = 0usize;
        for (i, &s) in group_sizes.iter().enumerate() {
            if s == 0 {
                return Err(IqpError::EmptyGroup { group: i });
            }
            offsets.push(total);
            total += s;
        }
        offsets.push(total);
        if g.dim() != total {
            return Err(IqpError::DimensionMismatch {
                matrix: g.dim(),
                variables: total,
            });
        }
        if costs.len() != total {
            return Err(IqpError::CostLengthMismatch {
                costs: costs.len(),
                variables: total,
            });
        }
        if let Some((row, col, value)) = g.first_non_finite() {
            return Err(IqpError::NonFiniteObjective { row, col, value });
        }
        let problem = Self {
            g,
            offsets,
            costs,
            budget,
        };
        let min_cost = problem.min_total_cost();
        if min_cost > budget {
            return Err(IqpError::Infeasible { min_cost, budget });
        }
        Ok(problem)
    }

    /// Number of groups (layers).
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of candidates in group `i`.
    pub fn group_size(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Global variable index of candidate `m` in group `i`.
    pub fn var(&self, i: usize, m: usize) -> usize {
        debug_assert!(m < self.group_size(i));
        self.offsets[i] + m
    }

    /// The budget (bits).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The sensitivity matrix.
    pub fn matrix(&self) -> &SymMatrix {
        &self.g
    }

    /// Cost of candidate `m` in group `i`.
    pub fn cost(&self, i: usize, m: usize) -> u64 {
        self.costs[self.var(i, m)]
    }

    /// Cheapest possible total cost.
    pub fn min_total_cost(&self) -> u64 {
        (0..self.num_groups())
            .map(|i| {
                (0..self.group_size(i))
                    .map(|m| self.cost(i, m))
                    .min()
                    .expect("non-empty")
            })
            .sum()
    }

    /// Total cost of a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or an out-of-range choice.
    pub fn assignment_cost(&self, choices: &[usize]) -> u64 {
        assert_eq!(
            choices.len(),
            self.num_groups(),
            "choice vector length mismatch"
        );
        choices
            .iter()
            .enumerate()
            .map(|(i, &m)| self.cost(i, m))
            .sum()
    }

    /// Objective `αᵀĜα` of a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or an out-of-range choice.
    pub fn assignment_objective(&self, choices: &[usize]) -> f64 {
        assert_eq!(
            choices.len(),
            self.num_groups(),
            "choice vector length mismatch"
        );
        let vars: Vec<usize> = choices
            .iter()
            .enumerate()
            .map(|(i, &m)| self.var(i, m))
            .collect();
        let mut acc = 0.0;
        for &u in &vars {
            for &v in &vars {
                acc += self.g.get(u, v);
            }
        }
        acc
    }

    /// `true` if the assignment satisfies the budget.
    pub fn is_feasible(&self, choices: &[usize]) -> bool {
        self.assignment_cost(choices) <= self.budget
    }

    /// Solves the program with the configured strategy.
    ///
    /// # Errors
    ///
    /// Returns [`IqpError::Infeasible`] if no assignment fits the budget
    /// (already checked at construction, so in practice this does not
    /// occur for problems built through [`IqpProblem::new`]).
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution, IqpError> {
        let telemetry = &config.telemetry;
        let _span = telemetry.span("solver.iqp");
        match config.method {
            SolveMethod::Exhaustive => {
                let _s = telemetry.span("solver.iqp.exhaustive");
                exhaustive::solve(self)
            }
            SolveMethod::DynamicProgramming => {
                let _s = telemetry.span("solver.iqp.dp");
                dp::solve(self)
            }
            SolveMethod::LocalSearch => {
                let _s = telemetry.span("solver.iqp.local");
                local::solve(self, config)
            }
            SolveMethod::BranchAndBound | SolveMethod::Auto => {
                let warm = {
                    let _s = telemetry.span("solver.iqp.local");
                    local::solve(self, config)?
                };
                let _s = telemetry.span("solver.iqp.branch");
                bnb::solve(self, config, warm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 groups × 2 candidates with planted negative cross terms that make
    /// the separable optimum suboptimal.
    pub(crate) fn cross_term_instance() -> IqpProblem {
        let mut g = SymMatrix::zeros(6);
        // Diagonals (cheap, expensive) per group.
        let diag = [0.115, 0.0, 0.140, 0.0, 0.246, 0.0];
        for (i, &d) in diag.iter().enumerate() {
            g.set(i, i, d);
        }
        // Cross term between group 0 cheap and group 2 cheap is strongly
        // negative — mirroring the paper's Fig. 1 example where the jointly
        // best pair is not the individually best pair.
        g.set(0, 4, -0.12);
        g.set(0, 2, 0.02);
        g.set(2, 4, 0.009);
        // Costs: cheap = 2 bits/unit, expensive = 8 bits/unit, 100 units per
        // layer. Budget forces exactly one... actually allows two cheap.
        let costs = vec![200, 800, 200, 800, 200, 800];
        IqpProblem::new(g, &[2, 2, 2], costs, 1200).expect("valid instance")
    }

    #[test]
    fn construction_validations() {
        let g = SymMatrix::zeros(4);
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 3], vec![0; 4], 10),
            Err(IqpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 2], vec![0; 3], 10),
            Err(IqpError::CostLengthMismatch { .. })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 0, 2], vec![0; 4], 10),
            Err(IqpError::EmptyGroup { group: 1 })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 2], vec![5, 9, 7, 9], 10),
            Err(IqpError::Infeasible {
                min_cost: 12,
                budget: 10
            })
        ));
        let mut poisoned = g;
        poisoned.set(1, 3, f64::NAN);
        let err = IqpProblem::new(poisoned, &[2, 2], vec![0; 4], 10).unwrap_err();
        match err {
            IqpError::NonFiniteObjective { row, col, value } => {
                assert_eq!((row, col), (1, 3));
                assert!(value.is_nan());
                assert!(err.to_string().contains("non-finite"));
            }
            other => panic!("expected NonFiniteObjective, got {other:?}"),
        }
    }

    #[test]
    fn objective_counts_cross_terms_twice() {
        let p = cross_term_instance();
        // choices (0, _, 0): groups 0 and 2 at cheap → diag + 2·cross.
        let obj = p.assignment_objective(&[0, 1, 0]);
        let expect = 0.115 + 0.246 + 2.0 * (-0.12);
        assert!((obj - expect).abs() < 1e-12, "{obj} vs {expect}");
    }

    #[test]
    fn cost_accounting() {
        let p = cross_term_instance();
        assert_eq!(p.assignment_cost(&[0, 0, 0]), 600);
        assert_eq!(p.assignment_cost(&[1, 0, 0]), 1200);
        assert!(p.is_feasible(&[1, 0, 0]));
        assert!(!p.is_feasible(&[1, 1, 0]));
        assert_eq!(p.min_total_cost(), 600);
    }

    #[test]
    fn all_methods_agree_on_small_instance() {
        let p = cross_term_instance();
        let exhaustive = p
            .solve(&SolverConfig {
                method: SolveMethod::Exhaustive,
                ..Default::default()
            })
            .unwrap();
        for method in [
            SolveMethod::Auto,
            SolveMethod::BranchAndBound,
            SolveMethod::LocalSearch,
        ] {
            let sol = p
                .solve(&SolverConfig {
                    method,
                    ..Default::default()
                })
                .unwrap();
            assert!(
                (sol.objective - exhaustive.objective).abs() < 1e-9,
                "{method:?}: {} vs exhaustive {}",
                sol.objective,
                exhaustive.objective
            );
            assert!(sol.cost <= p.budget());
        }
        assert!(exhaustive.proved_optimal);
    }

    #[test]
    fn telemetry_records_solve_spans_and_node_counters() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                telemetry: telemetry.clone(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(
            telemetry.counter_value("solver.iqp.nodes"),
            sol.nodes_explored
        );
        assert!(telemetry.span_stats("solver.iqp").is_some());
        assert!(telemetry.span_stats("solver.iqp.local").is_some());
        assert!(telemetry.span_stats("solver.iqp.branch").is_some());
        // At least one of the prune counters fires on this instance.
        let prunes = telemetry.counter_value("solver.iqp.bound_prunes")
            + telemetry.counter_value("solver.iqp.feasibility_prunes");
        assert!(prunes > 0, "no prunes recorded");
    }

    #[test]
    fn cross_terms_change_the_optimum() {
        // With the planted negative interaction, the optimum must pair
        // groups 0 and 2 at their cheap setting.
        let p = cross_term_instance();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::Exhaustive,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(sol.choices[0], 0);
        assert_eq!(sol.choices[2], 0);
    }
}
