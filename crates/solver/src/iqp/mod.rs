//! Integer Quadratic Programming for mixed-precision bit-width assignment.
//!
//! The problem solved here is the paper's equation (11):
//!
//! ```text
//! min  αᵀ Ĝ α
//! s.t. one choice per group (layer): Σ_m α_m⁽ⁱ⁾ = 1, α binary
//!      Σ cost(chosen) ≤ budget
//! ```
//!
//! where group `i` holds the |𝔹| candidate bit-widths of layer `i` and
//! `cost` is `|w⁽ⁱ⁾|·b_m` in bits. Several solvers are provided:
//!
//! * [`SolveMethod::BranchAndBound`] — exact (within a node budget), with an
//!   admissible bound combining the quadratic structure and a Dantzig-style
//!   LP relaxation of the multiple-choice knapsack;
//! * [`SolveMethod::LocalSearch`] — multi-start greedy descent, used
//!   standalone for large instances and as the B&B incumbent;
//! * [`SolveMethod::DynamicProgramming`] — exact multiple-choice knapsack
//!   for separable (diagonal) objectives;
//! * [`SolveMethod::Exhaustive`] — brute force, for small instances and
//!   testing.
//!
//! # Anytime solving
//!
//! [`IqpProblem::solve`] is *anytime*: it honours a wall-clock deadline and
//! a cooperative cancel flag ([`SolverConfig::deadline`],
//! [`SolverConfig::max_wall`], [`SolverConfig::cancel`]) and always returns
//! a feasible [`Solution`] carrying an optimality [`Solution::gap`], the
//! [`MethodUsed`], and a [`Termination`] status. When a method cannot
//! complete — timeout, cancellation, non-separable objective handed to the
//! DP, or node-cap exhaustion — a degradation ladder
//! (exhaustive → B&B → DP-on-diagonal → local search → greedy) steps down,
//! recording a typed [`Downgrade`] per step. Determinism is preserved under
//! deadlines: stop checks fire on node-count boundaries and never influence
//! pruning, and incumbents from wall-clock-interrupted searches are
//! discarded rather than returned (see [`deadline`](self) module docs), so
//! identical seed + config yields bitwise-identical `choices`.

mod bnb;
mod bounds;
mod deadline;
mod dp;
mod exhaustive;
mod local;

use deadline::{Anytime, Stop};
pub use deadline::{Downgrade, DowngradeReason, MethodUsed, Termination};

use crate::SymMatrix;
use clado_telemetry::Telemetry;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors produced when building or solving an [`IqpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum IqpError {
    /// Matrix dimension does not match the total number of variables.
    DimensionMismatch {
        /// Matrix dimension.
        matrix: usize,
        /// Total variable count implied by the groups.
        variables: usize,
    },
    /// `costs` length does not match the variable count.
    CostLengthMismatch {
        /// Cost vector length.
        costs: usize,
        /// Total variable count.
        variables: usize,
    },
    /// A group is empty.
    EmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
    /// No assignment satisfies the budget (even all-minimum-cost).
    Infeasible {
        /// Cheapest achievable cost.
        min_cost: u64,
        /// The requested budget.
        budget: u64,
    },
    /// The worst-case total assignment cost (every group at its most
    /// expensive candidate) overflows `u64`, so budget arithmetic cannot be
    /// carried out exactly; rescale the costs (e.g. bytes instead of bits).
    CostOverflow {
        /// Group at which the running worst-case sum overflowed.
        group: usize,
    },
    /// The dynamic-programming solver was asked to solve an instance with
    /// cross-layer terms (or one whose scaled budget exceeds the DP table
    /// limit, signalled by a negative `defect`).
    NotSeparable {
        /// Largest absolute off-diagonal-block entry; `-1.0` means the
        /// instance is separable but too large for the DP table.
        defect: f64,
    },
    /// The objective matrix contains a NaN or infinite entry; every solver
    /// would silently mis-rank assignments, so construction refuses it.
    NonFiniteObjective {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// A partially-observed Ω (a `clado-estim` product) has a diagonal
    /// entry without an observation; the objective cannot rank that
    /// variable at all, so estimation must always spend budget on every
    /// diagonal probe.
    UnobservedDiagonal {
        /// First diagonal index without an observation.
        index: usize,
    },
    /// The raw Ω buffer is materially asymmetric (strict hardening only;
    /// the lenient path symmetrizes instead).
    AsymmetricObjective {
        /// Largest absolute difference `|a_ij − a_ji|` found.
        defect: f64,
    },
    /// The PSD projection discarded most of the measured spectrum (strict
    /// hardening only): the clipped eigenvalue mass dominates the total, so
    /// the IQP objective would be mostly projection artefact.
    DegenerateObjective {
        /// `Σ|λ<0| / Σ|λ|` of the measured matrix.
        clip_mass_ratio: f64,
    },
}

impl fmt::Display for IqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { matrix, variables } => write!(
                f,
                "sensitivity matrix is {matrix}×{matrix} but groups imply {variables} variables"
            ),
            Self::CostLengthMismatch { costs, variables } => {
                write!(
                    f,
                    "cost vector has {costs} entries for {variables} variables"
                )
            }
            Self::EmptyGroup { group } => write!(f, "group {group} has no candidates"),
            Self::Infeasible { min_cost, budget } => write!(
                f,
                "infeasible: cheapest assignment costs {min_cost} bits, budget is {budget}"
            ),
            Self::CostOverflow { group } => write!(
                f,
                "worst-case assignment cost overflows u64 at group {group}; \
                 rescale the per-candidate costs to a coarser unit"
            ),
            Self::NotSeparable { defect } if *defect < 0.0 => {
                write!(
                    f,
                    "instance too large for the DP table; use branch and bound"
                )
            }
            Self::NotSeparable { defect } => write!(
                f,
                "instance has cross-layer terms (max |off-diagonal| = {defect:.3e}); \
                 the DP solver handles separable objectives only"
            ),
            Self::NonFiniteObjective { row, col, value } => write!(
                f,
                "objective matrix entry ({row}, {col}) is non-finite ({value}); \
                 quarantine or re-measure the sensitivity before solving"
            ),
            Self::UnobservedDiagonal { index } => write!(
                f,
                "partially-observed objective has no observation for diagonal \
                 entry {index}; the estimator budget must cover every diagonal probe"
            ),
            Self::AsymmetricObjective { defect } => write!(
                f,
                "objective matrix is asymmetric (max |a_ij − a_ji| = {defect:.3e}) \
                 under strict hardening; re-measure or drop --solver-strict to symmetrize"
            ),
            Self::DegenerateObjective { clip_mass_ratio } => write!(
                f,
                "PSD projection would discard {:.1}% of the eigenvalue mass under \
                 strict hardening; the measured Ω is too noisy to optimize over",
                clip_mass_ratio * 100.0
            ),
        }
    }
}

impl std::error::Error for IqpError {}

/// Solver strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMethod {
    /// Exact DP when the instance is separable, otherwise local-search warm
    /// start followed by branch-and-bound within the node cap.
    #[default]
    Auto,
    /// Branch and bound (warm-started by multi-start local search).
    BranchAndBound,
    /// Multi-start local search only.
    LocalSearch,
    /// Exact multiple-choice-knapsack dynamic programming; separable
    /// (diagonal) objectives only — the classic HAWQ-style ILP path.
    /// Non-separable instances degrade to [`MethodUsed::DiagonalDp`].
    DynamicProgramming,
    /// Full enumeration (exponential; small instances only).
    Exhaustive,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Strategy to use.
    pub method: SolveMethod,
    /// Maximum number of branch-and-bound nodes before the ladder steps
    /// down with the best incumbent (deterministic stop).
    pub max_nodes: u64,
    /// Number of local-search restarts.
    pub restarts: usize,
    /// RNG seed for local-search perturbations.
    pub seed: u64,
    /// Absolute wall-clock deadline; the effective deadline is the earlier
    /// of this and `now + max_wall`, resolved once at `solve` entry.
    pub deadline: Option<Instant>,
    /// Wall-clock budget for this solve, relative to `solve` entry.
    pub max_wall: Option<Duration>,
    /// Cooperative cancel flag, checked on deterministic node-count
    /// boundaries; share it with a signal handler for Ctrl-C support.
    pub cancel: Arc<AtomicBool>,
    /// Telemetry sink for solve spans and node/prune/downgrade counters;
    /// never affects the solution.
    pub telemetry: Telemetry,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            method: SolveMethod::Auto,
            max_nodes: 2_000_000,
            restarts: 24,
            seed: 0x51AD0,
            deadline: None,
            max_wall: None,
            cancel: Arc::new(AtomicBool::new(false)),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A solved bit-width assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Chosen candidate index within each group (layer), in group order.
    pub choices: Vec<usize>,
    /// Objective value `αᵀĜα` of the assignment.
    pub objective: f64,
    /// Total cost (bits) of the assignment.
    pub cost: u64,
    /// Whether optimality was proved (B&B / exhaustive completed, or exact
    /// DP on a separable instance). Equivalent to
    /// `termination == Termination::Proved`.
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored (0 for other methods).
    pub nodes_explored: u64,
    /// Upper bound on the suboptimality of `objective`: the true optimum is
    /// at least `objective - gap`. Zero when optimality was proved;
    /// otherwise the distance to a root LP relaxation bound, so it is
    /// finite but usually loose.
    pub gap: f64,
    /// The method (ladder rung) that produced `choices`.
    pub method_used: MethodUsed,
    /// How the solve terminated.
    pub termination: Termination,
    /// The degradation-ladder trail: one entry per rung that could not
    /// complete. Empty when the requested method ran to completion.
    pub downgrades: Vec<Downgrade>,
}

/// A feasible assignment produced by one ladder rung (internal currency of
/// the degradation ladder; `solve` turns the winner into a [`Solution`]).
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) choices: Vec<usize>,
    pub(crate) objective: f64,
    pub(crate) cost: u64,
    pub(crate) method: MethodUsed,
    pub(crate) proved: bool,
}

impl Candidate {
    pub(crate) fn evaluated(problem: &IqpProblem, choices: Vec<usize>, method: MethodUsed) -> Self {
        let objective = problem.assignment_objective(&choices);
        let cost = problem.assignment_cost(&choices);
        Self {
            choices,
            objective,
            cost,
            method,
            proved: false,
        }
    }
}

/// Keeps `a` unless `b` is strictly better; ties favour the earlier rung,
/// which is deterministic.
fn better(a: Candidate, b: Candidate) -> Candidate {
    if b.objective < a.objective {
        b
    } else {
        a
    }
}

/// The integer quadratic program of equation (11).
///
/// # Examples
///
/// ```
/// use clado_solver::{IqpProblem, SolverConfig, SymMatrix};
///
/// // Two layers, two bit choices each. Diagonal = layer sensitivities.
/// let mut g = SymMatrix::zeros(4);
/// g.set(0, 0, 1.0); // layer 0, cheap choice: high error
/// g.set(1, 1, 0.1); // layer 0, expensive choice: low error
/// g.set(2, 2, 0.5);
/// g.set(3, 3, 0.05);
/// let problem = IqpProblem::new(g, &[2, 2], vec![10, 20, 10, 20], 30)?;
/// let sol = problem.solve(&SolverConfig::default())?;
/// // Budget 30 permits exactly one expensive choice; layer 0 gains more.
/// assert_eq!(sol.choices, vec![1, 0]);
/// assert!(sol.proved_optimal && sol.gap == 0.0);
/// # Ok::<(), clado_solver::IqpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IqpProblem {
    g: SymMatrix,
    /// Start offset of each group in variable space; one extra final entry.
    offsets: Vec<usize>,
    costs: Vec<u64>,
    budget: u64,
}

impl IqpProblem {
    /// Builds a problem instance.
    ///
    /// `group_sizes[i]` is the number of candidates for layer `i`; variables
    /// are laid out group-contiguously, matching the paper's `Ĝ` indexing
    /// `(|𝔹|·i + m)`.
    ///
    /// # Errors
    ///
    /// Returns an [`IqpError`] describing any dimensional inconsistency, a
    /// non-finite objective entry, an unconditionally infeasible budget, or
    /// a worst-case total cost that overflows `u64`
    /// ([`IqpError::CostOverflow`]) — the last guarantee is what lets every
    /// solver use plain `u64` cost sums afterwards.
    pub fn new(
        g: SymMatrix,
        group_sizes: &[usize],
        costs: Vec<u64>,
        budget: u64,
    ) -> Result<Self, IqpError> {
        let mut offsets = Vec::with_capacity(group_sizes.len() + 1);
        let mut total = 0usize;
        for (i, &s) in group_sizes.iter().enumerate() {
            if s == 0 {
                return Err(IqpError::EmptyGroup { group: i });
            }
            offsets.push(total);
            total += s;
        }
        offsets.push(total);
        if g.dim() != total {
            return Err(IqpError::DimensionMismatch {
                matrix: g.dim(),
                variables: total,
            });
        }
        if costs.len() != total {
            return Err(IqpError::CostLengthMismatch {
                costs: costs.len(),
                variables: total,
            });
        }
        if let Some((row, col, value)) = g.first_non_finite() {
            return Err(IqpError::NonFiniteObjective { row, col, value });
        }
        // Worst-case total cost must fit in u64 so that every partial sum
        // any solver can form (one candidate per group) is overflow-free.
        let mut max_total = 0u64;
        for (i, w) in offsets.windows(2).enumerate() {
            let group_max = costs[w[0]..w[1]].iter().copied().max().expect("non-empty");
            max_total = max_total
                .checked_add(group_max)
                .ok_or(IqpError::CostOverflow { group: i })?;
        }
        let problem = Self {
            g,
            offsets,
            costs,
            budget,
        };
        let min_cost = problem.min_total_cost();
        if min_cost > budget {
            return Err(IqpError::Infeasible { min_cost, budget });
        }
        Ok(problem)
    }

    /// Number of groups (layers).
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of candidates in group `i`.
    pub fn group_size(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Global variable index of candidate `m` in group `i`.
    pub fn var(&self, i: usize, m: usize) -> usize {
        debug_assert!(m < self.group_size(i));
        self.offsets[i] + m
    }

    /// The budget (bits).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The sensitivity matrix.
    pub fn matrix(&self) -> &SymMatrix {
        &self.g
    }

    /// Cost of candidate `m` in group `i`.
    pub fn cost(&self, i: usize, m: usize) -> u64 {
        self.costs[self.var(i, m)]
    }

    /// Cheapest possible total cost.
    pub fn min_total_cost(&self) -> u64 {
        (0..self.num_groups())
            .map(|i| {
                (0..self.group_size(i))
                    .map(|m| self.cost(i, m))
                    .min()
                    .expect("non-empty")
            })
            .sum()
    }

    /// Total cost of a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or an out-of-range choice.
    pub fn assignment_cost(&self, choices: &[usize]) -> u64 {
        assert_eq!(
            choices.len(),
            self.num_groups(),
            "choice vector length mismatch"
        );
        choices.iter().enumerate().fold(0u64, |acc, (i, &m)| {
            acc.checked_add(self.cost(i, m))
                .expect("construction bounds the worst-case total cost")
        })
    }

    /// Objective `αᵀĜα` of a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or an out-of-range choice.
    pub fn assignment_objective(&self, choices: &[usize]) -> f64 {
        assert_eq!(
            choices.len(),
            self.num_groups(),
            "choice vector length mismatch"
        );
        let vars: Vec<usize> = choices
            .iter()
            .enumerate()
            .map(|(i, &m)| self.var(i, m))
            .collect();
        let mut acc = 0.0;
        for &u in &vars {
            for &v in &vars {
                acc += self.g.get(u, v);
            }
        }
        acc
    }

    /// `true` if the assignment satisfies the budget.
    pub fn is_feasible(&self, choices: &[usize]) -> bool {
        self.assignment_cost(choices) <= self.budget
    }

    /// The greedy budget-filling construction: the deterministic warm start
    /// every heuristic begins from, and the floor of the degradation
    /// ladder. Cheap (`O(k²·|𝔹|²)`), always feasible, never fails — this is
    /// the assignment `solve` returns when the cancel flag is already
    /// raised at entry.
    pub fn warm_start(&self) -> Solution {
        let cand = local::greedy_candidate(self);
        Solution {
            choices: cand.choices,
            objective: cand.objective,
            cost: cand.cost,
            proved_optimal: false,
            nodes_explored: 0,
            gap: (cand.objective - bounds::root_lower_bound(self)).max(0.0),
            method_used: MethodUsed::Greedy,
            termination: Termination::Heuristic,
            downgrades: Vec::new(),
        }
    }

    /// Solves the program with the configured strategy, anytime-style: the
    /// result is always a feasible assignment, with [`Solution::gap`],
    /// [`Solution::termination`], and the [`Solution::downgrades`] trail
    /// describing how close to optimal it is and which ladder rungs ran.
    ///
    /// # Errors
    ///
    /// None in practice: [`IqpProblem::new`] already validates dimensions,
    /// finiteness, feasibility, and cost overflow, and every runtime
    /// failure mode (timeout, cancellation, non-separable DP input, node
    /// caps) degrades to a feasible fallback instead of erroring. The
    /// `Result` is kept so future validation can fail without an API break.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution, IqpError> {
        let telemetry = &config.telemetry;
        let _span = telemetry.span("solver.iqp");
        let ctl = Anytime::resolve(config.deadline, config.max_wall, config.cancel.clone());
        let mut trail: Vec<Downgrade> = Vec::new();
        let (winner, nodes, first_stop) = self.run_ladder(config, &ctl, &mut trail);
        for d in &trail {
            telemetry.add("solver.downgrades", 1);
            telemetry.add(&format!("solver.downgrades.{}", d.reason.slug()), 1);
        }
        let termination = if winner.proved {
            Termination::Proved
        } else {
            match first_stop {
                Some(Stop::Cancelled) => Termination::Cancelled,
                Some(Stop::Deadline) => Termination::DeadlineExceeded,
                Some(Stop::NodeCap) => Termination::NodeCapExhausted,
                None => Termination::Heuristic,
            }
        };
        let gap = if winner.proved {
            0.0
        } else {
            (winner.objective - bounds::root_lower_bound(self)).max(0.0)
        };
        telemetry.set_gauge("solver.iqp.gap", gap);
        Ok(Solution {
            choices: winner.choices,
            objective: winner.objective,
            cost: winner.cost,
            proved_optimal: winner.proved,
            nodes_explored: nodes,
            gap,
            method_used: winner.method,
            termination,
            downgrades: trail,
        })
    }

    /// Walks the degradation ladder from the configured entry rung down to
    /// the greedy floor, carrying the best deterministically obtained
    /// incumbent. Returns the winning candidate, total B&B nodes explored,
    /// and the first stop signal observed (if any).
    fn run_ladder(
        &self,
        config: &SolverConfig,
        ctl: &Anytime,
        trail: &mut Vec<Downgrade>,
    ) -> (Candidate, u64, Option<Stop>) {
        let telemetry = &config.telemetry;
        let mut rung = self.entry_rung(config.method);
        let mut carried: Option<Candidate> = None;
        let mut nodes = 0u64;
        let mut first_stop: Option<Stop> = None;
        let note = |slot: &mut Option<Stop>, stop: Stop| {
            slot.get_or_insert(stop);
        };
        // Every ladder step lands both in the typed trail and, when tracing
        // is on, as an instant on the trace timeline so downgrades line up
        // with the incumbent curve.
        let step = |trail: &mut Vec<Downgrade>, d: Downgrade| {
            telemetry.instant(
                "solver.downgrade",
                &[
                    ("from", d.from.label().into()),
                    ("to", d.to.label().into()),
                    ("reason", d.reason.slug().into()),
                ],
            );
            trail.push(d);
        };
        let finish = |carried: Option<Candidate>, last: Candidate| match carried {
            Some(c) => better(c, last),
            None => last,
        };
        loop {
            // A rung reached after the stop signal is already raised is
            // skipped outright — running it would waste the deadline, and
            // for wall-clock stops its result would be nondeterministic.
            if rung != MethodUsed::Greedy {
                if let Some(stop) = ctl.check_now() {
                    note(&mut first_stop, stop);
                    let to = next_rung(rung);
                    step(
                        trail,
                        Downgrade {
                            from: rung,
                            to,
                            reason: stop.into(),
                        },
                    );
                    rung = to;
                    continue;
                }
            }
            match rung {
                MethodUsed::Exhaustive => {
                    let _s = telemetry.span("solver.iqp.exhaustive");
                    match exhaustive::run(self, ctl) {
                        Ok(cand) => {
                            telemetry.series_push(
                                "solver.incumbents",
                                cand.objective,
                                "exhaustive",
                            );
                            return (finish(carried, cand), nodes, first_stop);
                        }
                        Err(stop) => {
                            note(&mut first_stop, stop);
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::BranchAndBound,
                                    reason: stop.into(),
                                },
                            );
                            rung = MethodUsed::BranchAndBound;
                        }
                    }
                }
                MethodUsed::DynamicProgramming => {
                    let defect = dp::separability_defect(self);
                    if defect > 0.0 {
                        step(
                            trail,
                            Downgrade {
                                from: rung,
                                to: MethodUsed::DiagonalDp,
                                reason: DowngradeReason::NotSeparable { defect },
                            },
                        );
                        rung = MethodUsed::DiagonalDp;
                        continue;
                    }
                    let _s = telemetry.span("solver.iqp.dp");
                    match dp::knapsack(self, ctl) {
                        dp::DpOutcome::Solved(choices) => {
                            let mut cand = Candidate::evaluated(self, choices, rung);
                            cand.proved = true;
                            telemetry.series_push("solver.incumbents", cand.objective, "dp");
                            return (finish(carried, cand), nodes, first_stop);
                        }
                        dp::DpOutcome::TooLarge => {
                            // The diagonal rung would hit the same table
                            // limit; skip straight to local search.
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::LocalSearch,
                                    reason: DowngradeReason::TableTooLarge,
                                },
                            );
                            rung = MethodUsed::LocalSearch;
                        }
                        dp::DpOutcome::Stopped(stop) => {
                            note(&mut first_stop, stop);
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::LocalSearch,
                                    reason: stop.into(),
                                },
                            );
                            rung = MethodUsed::LocalSearch;
                        }
                    }
                }
                MethodUsed::BranchAndBound => {
                    let warm = {
                        let _s = telemetry.span("solver.iqp.local");
                        local::run(self, config, ctl)
                    };
                    match warm {
                        local::LocalRun::Done(warm) => {
                            telemetry.series_push(
                                "solver.incumbents",
                                warm.objective,
                                "warm_start",
                            );
                            let _s = telemetry.span("solver.iqp.branch");
                            let bb = bnb::run(self, config, &warm, ctl);
                            nodes += bb.nodes;
                            match bb.stop {
                                None => {
                                    let cand = Candidate {
                                        proved: true,
                                        method: rung,
                                        ..Candidate::evaluated(self, bb.choices, rung)
                                    };
                                    return (finish(carried, cand), nodes, first_stop);
                                }
                                Some(stop @ Stop::NodeCap) => {
                                    // Node-cap stops are deterministic, so
                                    // the incumbent (≥ warm) is kept.
                                    note(&mut first_stop, stop);
                                    let cand = Candidate::evaluated(self, bb.choices, rung);
                                    carried = Some(match carried {
                                        Some(c) => better(c, cand),
                                        None => cand,
                                    });
                                    step(
                                        trail,
                                        Downgrade {
                                            from: rung,
                                            to: MethodUsed::DiagonalDp,
                                            reason: stop.into(),
                                        },
                                    );
                                    rung = MethodUsed::DiagonalDp;
                                }
                                Some(stop) => {
                                    // Wall-clock stop: discard the partial
                                    // incumbent (nondeterministic stopping
                                    // point), keep the completed warm start.
                                    note(&mut first_stop, stop);
                                    carried = Some(match carried {
                                        Some(c) => better(c, warm),
                                        None => warm,
                                    });
                                    step(
                                        trail,
                                        Downgrade {
                                            from: rung,
                                            to: MethodUsed::DiagonalDp,
                                            reason: stop.into(),
                                        },
                                    );
                                    rung = MethodUsed::DiagonalDp;
                                }
                            }
                        }
                        local::LocalRun::Aborted { stop, greedy } => {
                            note(&mut first_stop, stop);
                            carried = Some(match carried {
                                Some(c) => better(c, greedy),
                                None => greedy,
                            });
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::DiagonalDp,
                                    reason: stop.into(),
                                },
                            );
                            rung = MethodUsed::DiagonalDp;
                        }
                    }
                }
                MethodUsed::DiagonalDp => {
                    let _s = telemetry.span("solver.iqp.dp");
                    match dp::knapsack(self, ctl) {
                        dp::DpOutcome::Solved(choices) => {
                            let mut cand = Candidate::evaluated(self, choices, rung);
                            // The diagonal relaxation is exact when the
                            // instance happens to be separable.
                            cand.proved = dp::separability_defect(self) == 0.0;
                            if cand.proved {
                                cand.method = MethodUsed::DynamicProgramming;
                            }
                            telemetry.series_push(
                                "solver.incumbents",
                                cand.objective,
                                "diagonal_dp",
                            );
                            return (finish(carried, cand), nodes, first_stop);
                        }
                        dp::DpOutcome::TooLarge => {
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::LocalSearch,
                                    reason: DowngradeReason::TableTooLarge,
                                },
                            );
                            rung = MethodUsed::LocalSearch;
                        }
                        dp::DpOutcome::Stopped(stop) => {
                            note(&mut first_stop, stop);
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::LocalSearch,
                                    reason: stop.into(),
                                },
                            );
                            rung = MethodUsed::LocalSearch;
                        }
                    }
                }
                MethodUsed::LocalSearch => {
                    let _s = telemetry.span("solver.iqp.local");
                    match local::run(self, config, ctl) {
                        local::LocalRun::Done(cand) => {
                            telemetry.series_push(
                                "solver.incumbents",
                                cand.objective,
                                "local_search",
                            );
                            return (finish(carried, cand), nodes, first_stop);
                        }
                        local::LocalRun::Aborted { stop, greedy } => {
                            note(&mut first_stop, stop);
                            carried = Some(match carried {
                                Some(c) => better(c, greedy),
                                None => greedy,
                            });
                            step(
                                trail,
                                Downgrade {
                                    from: rung,
                                    to: MethodUsed::Greedy,
                                    reason: stop.into(),
                                },
                            );
                            rung = MethodUsed::Greedy;
                        }
                    }
                }
                MethodUsed::Greedy => {
                    // The floor: pure deterministic construction, runs even
                    // with the cancel flag raised.
                    let cand = local::greedy_candidate(self);
                    telemetry.series_push("solver.incumbents", cand.objective, "greedy");
                    return (finish(carried, cand), nodes, first_stop);
                }
            }
        }
    }

    fn entry_rung(&self, method: SolveMethod) -> MethodUsed {
        match method {
            SolveMethod::Exhaustive => MethodUsed::Exhaustive,
            SolveMethod::DynamicProgramming => MethodUsed::DynamicProgramming,
            SolveMethod::BranchAndBound => MethodUsed::BranchAndBound,
            SolveMethod::LocalSearch => MethodUsed::LocalSearch,
            // Separable instances (the HAWQ/MPQCO/CLADO* baselines) get the
            // exact DP fast path; quadratic ones go to warm-started B&B.
            SolveMethod::Auto => {
                if dp::separability_defect(self) == 0.0 {
                    MethodUsed::DynamicProgramming
                } else {
                    MethodUsed::BranchAndBound
                }
            }
        }
    }
}

/// The rung below `rung` on the degradation ladder.
fn next_rung(rung: MethodUsed) -> MethodUsed {
    match rung {
        MethodUsed::Exhaustive => MethodUsed::BranchAndBound,
        MethodUsed::BranchAndBound => MethodUsed::DiagonalDp,
        MethodUsed::DynamicProgramming | MethodUsed::DiagonalDp => MethodUsed::LocalSearch,
        MethodUsed::LocalSearch | MethodUsed::Greedy => MethodUsed::Greedy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    /// 3 groups × 2 candidates with planted negative cross terms that make
    /// the separable optimum suboptimal.
    pub(crate) fn cross_term_instance() -> IqpProblem {
        let mut g = SymMatrix::zeros(6);
        // Diagonals (cheap, expensive) per group.
        let diag = [0.115, 0.0, 0.140, 0.0, 0.246, 0.0];
        for (i, &d) in diag.iter().enumerate() {
            g.set(i, i, d);
        }
        // Cross term between group 0 cheap and group 2 cheap is strongly
        // negative — mirroring the paper's Fig. 1 example where the jointly
        // best pair is not the individually best pair.
        g.set(0, 4, -0.12);
        g.set(0, 2, 0.02);
        g.set(2, 4, 0.009);
        // Costs: cheap = 2 bits/unit, expensive = 8 bits/unit, 100 units per
        // layer. Budget forces exactly one... actually allows two cheap.
        let costs = vec![200, 800, 200, 800, 200, 800];
        IqpProblem::new(g, &[2, 2, 2], costs, 1200).expect("valid instance")
    }

    #[test]
    fn construction_validations() {
        let g = SymMatrix::zeros(4);
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 3], vec![0; 4], 10),
            Err(IqpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 2], vec![0; 3], 10),
            Err(IqpError::CostLengthMismatch { .. })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 0, 2], vec![0; 4], 10),
            Err(IqpError::EmptyGroup { group: 1 })
        ));
        assert!(matches!(
            IqpProblem::new(g.clone(), &[2, 2], vec![5, 9, 7, 9], 10),
            Err(IqpError::Infeasible {
                min_cost: 12,
                budget: 10
            })
        ));
        let mut poisoned = g;
        poisoned.set(1, 3, f64::NAN);
        let err = IqpProblem::new(poisoned, &[2, 2], vec![0; 4], 10).unwrap_err();
        match err {
            IqpError::NonFiniteObjective { row, col, value } => {
                assert_eq!((row, col), (1, 3));
                assert!(value.is_nan());
                assert!(err.to_string().contains("non-finite"));
            }
            other => panic!("expected NonFiniteObjective, got {other:?}"),
        }
    }

    #[test]
    fn worst_case_cost_overflow_is_rejected_at_construction() {
        // Two groups whose most expensive candidates sum past u64::MAX.
        let g = SymMatrix::zeros(4);
        let big = u64::MAX / 2 + 1;
        let err = IqpProblem::new(g, &[2, 2], vec![1, big, 1, big], u64::MAX).unwrap_err();
        match &err {
            IqpError::CostOverflow { group } => assert_eq!(*group, 1),
            other => panic!("expected CostOverflow, got {other:?}"),
        }
        assert!(err.to_string().contains("overflows u64"));
    }

    #[test]
    fn near_max_budgets_solve_without_overflow() {
        // Regression for the former `cost as i64` comparisons in local
        // search: costs near u64::MAX/4 made the i64 casts wrap. The
        // construction-time worst-case guard plus subtract-first updates
        // must keep every method exact here.
        let big = u64::MAX / 4;
        let mut g = SymMatrix::zeros(4);
        g.set(0, 0, 1.0);
        g.set(1, 1, 0.1);
        g.set(2, 2, 0.5);
        g.set(3, 3, 0.05);
        let costs = vec![big, big + 1000, big, big + 1000];
        // Budget fits exactly one upgraded group.
        let p = IqpProblem::new(g, &[2, 2], costs, 2 * big + 1000).expect("in-range costs");
        for method in [
            SolveMethod::Auto,
            SolveMethod::LocalSearch,
            SolveMethod::BranchAndBound,
            SolveMethod::Exhaustive,
        ] {
            let sol = p
                .solve(&SolverConfig {
                    method,
                    ..Default::default()
                })
                .unwrap();
            assert!(sol.cost <= p.budget(), "{method:?} violated the budget");
            assert_eq!(sol.choices, vec![1, 0], "{method:?} missed the optimum");
        }
    }

    #[test]
    fn infeasible_and_exact_budget_edges() {
        // budget < min_total_cost: construction rejects.
        let g = SymMatrix::zeros(4);
        let err = IqpProblem::new(g.clone(), &[2, 2], vec![5, 9, 7, 9], 11).unwrap_err();
        assert!(matches!(
            err,
            IqpError::Infeasible {
                min_cost: 12,
                budget: 11
            }
        ));
        assert!(err.to_string().contains("infeasible"));
        // budget == min_total_cost: exactly one feasible assignment — the
        // all-cheapest one — and every method must return it.
        let mut g = SymMatrix::zeros(4);
        g.set(0, 0, 5.0);
        g.set(1, 1, 0.0);
        g.set(2, 2, 3.0);
        g.set(3, 3, 0.0);
        let p = IqpProblem::new(g, &[2, 2], vec![5, 9, 7, 9], 12).expect("tight but feasible");
        for method in [
            SolveMethod::Auto,
            SolveMethod::BranchAndBound,
            SolveMethod::LocalSearch,
            SolveMethod::DynamicProgramming,
            SolveMethod::Exhaustive,
        ] {
            let sol = p
                .solve(&SolverConfig {
                    method,
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(sol.choices, vec![0, 0], "{method:?}");
            assert_eq!(sol.cost, 12, "{method:?}");
        }
    }

    #[test]
    fn objective_counts_cross_terms_twice() {
        let p = cross_term_instance();
        // choices (0, _, 0): groups 0 and 2 at cheap → diag + 2·cross.
        let obj = p.assignment_objective(&[0, 1, 0]);
        let expect = 0.115 + 0.246 + 2.0 * (-0.12);
        assert!((obj - expect).abs() < 1e-12, "{obj} vs {expect}");
    }

    #[test]
    fn cost_accounting() {
        let p = cross_term_instance();
        assert_eq!(p.assignment_cost(&[0, 0, 0]), 600);
        assert_eq!(p.assignment_cost(&[1, 0, 0]), 1200);
        assert!(p.is_feasible(&[1, 0, 0]));
        assert!(!p.is_feasible(&[1, 1, 0]));
        assert_eq!(p.min_total_cost(), 600);
    }

    #[test]
    fn all_methods_agree_on_small_instance() {
        let p = cross_term_instance();
        let exhaustive = p
            .solve(&SolverConfig {
                method: SolveMethod::Exhaustive,
                ..Default::default()
            })
            .unwrap();
        for method in [
            SolveMethod::Auto,
            SolveMethod::BranchAndBound,
            SolveMethod::LocalSearch,
        ] {
            let sol = p
                .solve(&SolverConfig {
                    method,
                    ..Default::default()
                })
                .unwrap();
            assert!(
                (sol.objective - exhaustive.objective).abs() < 1e-9,
                "{method:?}: {} vs exhaustive {}",
                sol.objective,
                exhaustive.objective
            );
            assert!(sol.cost <= p.budget());
            assert!(sol.gap >= 0.0 && sol.gap.is_finite(), "{method:?}");
            assert!(
                sol.objective - sol.gap <= exhaustive.objective + 1e-9,
                "{method:?}: gap does not cover the optimum"
            );
        }
        assert!(exhaustive.proved_optimal);
        assert_eq!(exhaustive.termination, Termination::Proved);
        assert_eq!(exhaustive.method_used, MethodUsed::Exhaustive);
        assert_eq!(exhaustive.gap, 0.0);
        assert!(exhaustive.downgrades.is_empty());
    }

    #[test]
    fn telemetry_records_solve_spans_and_node_counters() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                telemetry: telemetry.clone(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(
            telemetry.counter_value("solver.iqp.nodes"),
            sol.nodes_explored
        );
        assert!(telemetry.span_stats("solver.iqp").is_some());
        assert!(telemetry.span_stats("solver.iqp.local").is_some());
        assert!(telemetry.span_stats("solver.iqp.branch").is_some());
        // At least one of the prune counters fires on this instance.
        let prunes = telemetry.counter_value("solver.iqp.bound_prunes")
            + telemetry.counter_value("solver.iqp.feasibility_prunes");
        assert!(prunes > 0, "no prunes recorded");
        // A completed solve records no downgrades.
        assert_eq!(telemetry.counter_value("solver.downgrades"), 0);
    }

    #[test]
    fn solve_records_an_incumbent_timeline() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                telemetry: telemetry.clone(),
                ..Default::default()
            })
            .unwrap();
        let series = telemetry.series();
        let incumbents = series
            .iter()
            .find(|(name, _)| name == "solver.incumbents")
            .map(|(_, points)| points.as_slice())
            .expect("solver.incumbents series recorded");
        // The warm start always lands first; B&B improvements (if any)
        // follow, monotonically decreasing in objective.
        assert_eq!(incumbents[0].label, "warm_start");
        for pair in incumbents.windows(2) {
            assert!(pair[1].t_us >= pair[0].t_us, "timeline not ordered");
            assert!(
                pair[1].value <= pair[0].value + 1e-12,
                "incumbent objective increased along the timeline"
            );
        }
        let last = incumbents.last().expect("at least the warm start");
        assert!(
            (last.value - sol.objective).abs() < 1e-9,
            "final incumbent {} != returned objective {}",
            last.value,
            sol.objective
        );
    }

    #[test]
    fn downgrades_emit_timeline_instants_when_tracing() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        telemetry.set_trace_enabled(true);
        let config = SolverConfig {
            method: SolveMethod::DynamicProgramming,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        p.solve(&config).expect("DP degrades instead of erroring");
        clado_telemetry::flush_thread_local();
        let events = telemetry.take_trace_events();
        let downgrade = events
            .iter()
            .find(|e| e.name == "solver.downgrade")
            .expect("downgrade instant on the trace timeline");
        let reason = downgrade
            .args
            .iter()
            .find(|(k, _)| k == "reason")
            .map(|(_, v)| v.clone());
        assert_eq!(
            reason,
            Some(clado_telemetry::ManifestValue::Str(
                "not_separable".to_string()
            ))
        );
    }

    #[test]
    fn cross_terms_change_the_optimum() {
        // With the planted negative interaction, the optimum must pair
        // groups 0 and 2 at their cheap setting.
        let p = cross_term_instance();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::Exhaustive,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(sol.choices[0], 0);
        assert_eq!(sol.choices[2], 0);
    }

    #[test]
    fn preset_cancel_returns_the_warm_start_for_every_method() {
        let p = cross_term_instance();
        let reference = p.warm_start();
        for method in [
            SolveMethod::Auto,
            SolveMethod::BranchAndBound,
            SolveMethod::LocalSearch,
            SolveMethod::DynamicProgramming,
            SolveMethod::Exhaustive,
        ] {
            let config = SolverConfig {
                method,
                ..Default::default()
            };
            config.cancel.store(true, Ordering::Relaxed);
            let sol = p.solve(&config).expect("cancel degrades, never errors");
            assert_eq!(sol.choices, reference.choices, "{method:?}");
            assert_eq!(sol.termination, Termination::Cancelled, "{method:?}");
            assert_eq!(sol.method_used, MethodUsed::Greedy, "{method:?}");
            assert!(!sol.downgrades.is_empty(), "{method:?}: no trail recorded");
            assert!(sol.gap.is_finite() && sol.gap >= 0.0, "{method:?}");
        }
    }

    #[test]
    fn expired_deadline_is_deterministic_and_degrades() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        let solve_once = || {
            p.solve(&SolverConfig {
                max_wall: Some(Duration::ZERO),
                telemetry: telemetry.clone(),
                ..Default::default()
            })
            .unwrap()
        };
        let a = solve_once();
        let b = solve_once();
        assert_eq!(a.choices, b.choices, "deadline stop broke determinism");
        assert_eq!(a.termination, Termination::DeadlineExceeded);
        assert!(p.is_feasible(&a.choices));
        assert!(a.gap.is_finite() && a.gap >= 0.0);
        assert!(!a.downgrades.is_empty());
        assert!(telemetry.counter_value("solver.downgrades") > 0);
        assert!(telemetry.counter_value("solver.downgrades.deadline_exceeded") > 0);
    }

    #[test]
    fn auto_takes_the_exact_dp_path_on_separable_instances() {
        let mut g = SymMatrix::zeros(4);
        g.set(0, 0, 1.0);
        g.set(1, 1, 0.1);
        g.set(2, 2, 0.5);
        g.set(3, 3, 0.05);
        let p = IqpProblem::new(g, &[2, 2], vec![10, 20, 10, 20], 30).unwrap();
        let sol = p.solve(&SolverConfig::default()).unwrap();
        assert_eq!(sol.method_used, MethodUsed::DynamicProgramming);
        assert!(sol.proved_optimal);
        assert_eq!(sol.gap, 0.0);
        assert!(sol.downgrades.is_empty());
    }

    #[test]
    fn explicit_dp_on_cross_terms_degrades_to_diagonal() {
        let p = cross_term_instance();
        let telemetry = Telemetry::new();
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::DynamicProgramming,
                telemetry: telemetry.clone(),
                ..Default::default()
            })
            .expect("DP degrades instead of erroring");
        assert!(p.is_feasible(&sol.choices));
        assert_eq!(sol.method_used, MethodUsed::DiagonalDp);
        assert_eq!(sol.termination, Termination::Heuristic);
        assert!(!sol.proved_optimal);
        assert!(sol.gap.is_finite() && sol.gap >= 0.0);
        assert_eq!(sol.downgrades.len(), 1);
        assert!(matches!(
            sol.downgrades[0].reason,
            DowngradeReason::NotSeparable { defect } if defect > 0.0
        ));
        assert_eq!(telemetry.counter_value("solver.downgrades"), 1);
        assert_eq!(
            telemetry.counter_value("solver.downgrades.not_separable"),
            1
        );
        // The diagonal approximation scores its choices on the TRUE
        // objective, cross terms included.
        assert!((sol.objective - p.assignment_objective(&sol.choices)).abs() < 1e-12);
    }
}
