//! Exact branch and bound for the bit-width IQP.
//!
//! Depth-first search over layers with an admissible lower bound that
//! combines three ingredients at every node:
//!
//! 1. the exact objective contribution of the assigned prefix,
//! 2. a per-candidate linearization of the remaining quadratic terms
//!    (interactions with assigned layers exactly; interactions among
//!    unassigned layers via per-row minima), and
//! 3. a Dantzig LP relaxation of the multiple-choice knapsack over the
//!    linearized coefficients, which accounts for the budget.
//!
//! The search is anytime: every [`TICK_MASK`]+1 nodes it consults the
//! [`Anytime`] control block, and it stops deterministically when the node
//! cap is exhausted. The stop check never influences pruning or child
//! ordering, so two runs visit identical nodes until one is stopped.

use super::bounds::{mckp_lp_bound, McKpItem};
use super::deadline::{Anytime, Stop, TICK_MASK};
use super::{Candidate, IqpProblem, SolverConfig};
use clado_telemetry::Telemetry;

/// Outcome of one branch-and-bound run.
pub(super) struct BnbRun {
    /// Best incumbent found (always feasible; at least as good as the warm
    /// start). On a wall-clock stop the caller must discard this in favour
    /// of a deterministically obtained solution.
    pub(super) choices: Vec<usize>,
    /// Nodes explored.
    pub(super) nodes: u64,
    /// `None` if the search completed (optimality proved).
    pub(super) stop: Option<Stop>,
}

struct Search<'p> {
    problem: &'p IqpProblem,
    ctl: &'p Anytime,
    /// Incumbent-timeline sink: every strict improvement is pushed to the
    /// `solver.incumbents` series (no-op on a disabled handle).
    telemetry: &'p Telemetry,
    /// Group visit order (group indices).
    order: Vec<usize>,
    /// `rowmin[v][pos]`: min over candidates of the group at `order[pos]`
    /// of `g[v][·]`.
    rowmin: Vec<Vec<f64>>,
    /// `suffix_rowmin[v][depth] = Σ_{pos ≥ depth} rowmin[v][pos]`.
    suffix_rowmin: Vec<Vec<f64>>,
    /// `suffix_min_cost[depth]`: cheapest completion cost of groups at
    /// positions ≥ depth.
    suffix_min_cost: Vec<u64>,
    /// `inter[v] = 2 Σ_{assigned u} g[v][u]`.
    inter: Vec<f64>,
    /// Current prefix objective.
    assigned_obj: f64,
    /// Current prefix cost.
    assigned_cost: u64,
    /// Current prefix choices (by position).
    prefix: Vec<usize>,
    /// Best-known full assignment (by group index).
    best_choices: Vec<usize>,
    best_obj: f64,
    nodes: u64,
    /// Nodes cut by the LP-knapsack lower bound.
    bound_prunes: u64,
    /// Nodes (and children) cut by budget infeasibility.
    feasibility_prunes: u64,
    max_nodes: u64,
    aborted: Option<Stop>,
}

impl<'p> Search<'p> {
    fn new(
        problem: &'p IqpProblem,
        warm: &Candidate,
        max_nodes: u64,
        ctl: &'p Anytime,
        telemetry: &'p Telemetry,
    ) -> Self {
        let k = problem.num_groups();
        let n = problem.matrix().dim();
        // Visit groups with the widest cost spread first: their budget
        // impact is largest, so decisions near the root prune best.
        let mut order: Vec<usize> = (0..k).collect();
        let spread = |i: usize| {
            let costs: Vec<u64> = (0..problem.group_size(i))
                .map(|m| problem.cost(i, m))
                .collect();
            costs.iter().max().copied().unwrap_or(0) - costs.iter().min().copied().unwrap_or(0)
        };
        order.sort_by_key(|&i| std::cmp::Reverse(spread(i)));

        let g = problem.matrix();
        let mut rowmin = vec![vec![0.0f64; k]; n];
        for (v, row) in rowmin.iter_mut().enumerate() {
            for (pos, &gi) in order.iter().enumerate() {
                row[pos] = (0..problem.group_size(gi))
                    .map(|m| g.get(v, problem.var(gi, m)))
                    .fold(f64::INFINITY, f64::min);
            }
        }
        let mut suffix_rowmin = vec![vec![0.0f64; k + 1]; n];
        for v in 0..n {
            for pos in (0..k).rev() {
                suffix_rowmin[v][pos] = suffix_rowmin[v][pos + 1] + rowmin[v][pos];
            }
        }
        let mut suffix_min_cost = vec![0u64; k + 1];
        for pos in (0..k).rev() {
            let gi = order[pos];
            let min_c = (0..problem.group_size(gi))
                .map(|m| problem.cost(gi, m))
                .min()
                .unwrap_or(0);
            suffix_min_cost[pos] = suffix_min_cost[pos + 1] + min_c;
        }

        Self {
            problem,
            ctl,
            telemetry,
            order,
            rowmin,
            suffix_rowmin,
            suffix_min_cost,
            inter: vec![0.0; n],
            assigned_obj: 0.0,
            assigned_cost: 0,
            prefix: Vec::with_capacity(k),
            best_choices: warm.choices.clone(),
            best_obj: warm.objective,
            nodes: 0,
            bound_prunes: 0,
            feasibility_prunes: 0,
            max_nodes,
            aborted: None,
        }
    }

    /// Linearized coefficient of candidate `m` of the group at `pos`,
    /// admissible for any completion of the groups at positions ≥ `depth`.
    fn coef(&self, depth: usize, pos: usize, m: usize) -> f64 {
        let gi = self.order[pos];
        let v = self.problem.var(gi, m);
        let g = self.problem.matrix();
        g.get(v, v) + self.inter[v] + self.suffix_rowmin[v][depth] - self.rowmin[v][pos]
    }

    fn dfs(&mut self, depth: usize) {
        if self.aborted.is_some() {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.aborted = Some(Stop::NodeCap);
            return;
        }
        // Cooperative stop check on node-count boundaries only, so the set
        // of visited nodes up to any stop is identical across runs.
        if self.nodes & TICK_MASK == 0 {
            if let Some(stop) = self.ctl.check_now() {
                self.aborted = Some(stop);
                return;
            }
        }
        let k = self.problem.num_groups();
        if depth == k {
            if self.assigned_obj < self.best_obj - 1e-15 {
                self.best_obj = self.assigned_obj;
                let mut by_group = vec![0usize; k];
                for (pos, &m) in self.prefix.iter().enumerate() {
                    by_group[self.order[pos]] = m;
                }
                self.best_choices = by_group;
                self.telemetry
                    .series_push("solver.incumbents", self.best_obj, "bnb");
            }
            return;
        }
        // Budget feasibility prune.
        if self.assigned_cost + self.suffix_min_cost[depth] > self.problem.budget() {
            self.feasibility_prunes += 1;
            return;
        }
        // LP-knapsack bound over the linearized remainder.
        let remaining_budget = self.problem.budget() - self.assigned_cost;
        let classes: Vec<Vec<McKpItem>> = (depth..k)
            .map(|pos| {
                let gi = self.order[pos];
                (0..self.problem.group_size(gi))
                    .map(|m| McKpItem {
                        value: self.coef(depth, pos, m),
                        cost: self.problem.cost(gi, m),
                    })
                    .collect()
            })
            .collect();
        let bound = self.assigned_obj + mckp_lp_bound(&classes, remaining_budget);
        if bound >= self.best_obj - 1e-12 {
            self.bound_prunes += 1;
            return;
        }
        // Expand children, most promising linearized coefficient first.
        let gi = self.order[depth];
        let mut children: Vec<(f64, usize)> = (0..self.problem.group_size(gi))
            .map(|m| (self.coef(depth, depth, m), m))
            .collect();
        children.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite coefficients"));
        for (_, m) in children {
            let v = self.problem.var(gi, m);
            let cost = self.problem.cost(gi, m);
            if self.assigned_cost + cost + self.suffix_min_cost[depth + 1] > self.problem.budget() {
                self.feasibility_prunes += 1;
                continue;
            }
            // Push.
            let g = self.problem.matrix();
            let obj_add = g.get(v, v) + self.inter[v];
            self.assigned_obj += obj_add;
            self.assigned_cost += cost;
            for u in 0..self.inter.len() {
                self.inter[u] += 2.0 * g.get(u, v);
            }
            self.prefix.push(m);

            self.dfs(depth + 1);

            // Pop.
            self.prefix.pop();
            for u in 0..self.inter.len() {
                self.inter[u] -= 2.0 * g.get(u, v);
            }
            self.assigned_cost -= cost;
            self.assigned_obj -= obj_add;
            if self.aborted.is_some() {
                return;
            }
        }
    }
}

/// Runs branch and bound, warm-started by `warm` (typically a local-search
/// solution), under the anytime controls in `ctl`.
pub(super) fn run(
    problem: &IqpProblem,
    config: &SolverConfig,
    warm: &Candidate,
    ctl: &Anytime,
) -> BnbRun {
    let telemetry = &config.telemetry;
    let mut search = Search::new(problem, warm, config.max_nodes, ctl, telemetry);
    search.dfs(0);
    telemetry.add("solver.iqp.nodes", search.nodes);
    telemetry.add("solver.iqp.bound_prunes", search.bound_prunes);
    telemetry.add("solver.iqp.feasibility_prunes", search.feasibility_prunes);
    BnbRun {
        choices: search.best_choices,
        nodes: search.nodes,
        stop: search.aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::cross_term_instance;
    use super::super::{SolveMethod, SolverConfig, Termination};
    use super::*;
    use crate::SymMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unconstrained() -> Anytime {
        let config = SolverConfig::default();
        Anytime::resolve(None, None, config.cancel)
    }

    #[test]
    fn bnb_matches_exhaustive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let k = rng.gen_range(2..=6);
            let sizes = vec![3usize; k];
            let n = 3 * k;
            let mut g = SymMatrix::zeros(n);
            for i in 0..n {
                for j in i..n {
                    let scale = if i == j { 1.0 } else { 0.25 };
                    g.set(i, j, rng.gen_range(-1.0..1.0) * scale);
                }
            }
            let costs: Vec<u64> = (0..n)
                .map(|v| ((v % 3) as u64 * 2 + 2) * rng.gen_range(5..50))
                .collect();
            let min_cost: u64 = (0..k)
                .map(|i| (0..3).map(|m| costs[3 * i + m]).min().unwrap())
                .sum();
            let max_cost: u64 = (0..k)
                .map(|i| (0..3).map(|m| costs[3 * i + m]).max().unwrap())
                .sum();
            let budget = min_cost + (max_cost - min_cost) / 2;
            let p = IqpProblem::new(g, &sizes, costs, budget).unwrap();
            let ex = p
                .solve(&SolverConfig {
                    method: SolveMethod::Exhaustive,
                    ..Default::default()
                })
                .unwrap();
            let bb = p
                .solve(&SolverConfig {
                    method: SolveMethod::BranchAndBound,
                    ..Default::default()
                })
                .unwrap();
            assert!(bb.proved_optimal, "trial {trial} hit node cap");
            assert!(
                (bb.objective - ex.objective).abs() < 1e-9,
                "trial {trial}: bnb {} vs exhaustive {}",
                bb.objective,
                ex.objective
            );
            assert!(bb.cost <= p.budget());
        }
    }

    #[test]
    fn bnb_respects_node_cap() {
        let p = cross_term_instance();
        let ctl = unconstrained();
        let warm = match super::super::local::run(&p, &SolverConfig::default(), &ctl) {
            super::super::local::LocalRun::Done(c) => c,
            other => panic!("unconstrained local search must complete: {other:?}"),
        };
        let bb = run(
            &p,
            &SolverConfig {
                max_nodes: 0,
                ..Default::default()
            },
            &warm,
            &ctl,
        );
        assert_eq!(bb.stop, Some(Stop::NodeCap));
        assert!(p.is_feasible(&bb.choices));
        // Through the public API the node-cap stop degrades to the ladder
        // and surfaces as a typed termination with a feasible solution.
        let sol = p
            .solve(&SolverConfig {
                method: SolveMethod::BranchAndBound,
                max_nodes: 0,
                ..Default::default()
            })
            .unwrap();
        assert!(!sol.proved_optimal);
        assert_eq!(sol.termination, Termination::NodeCapExhausted);
        assert!(p.is_feasible(&sol.choices));
        assert!(!sol.downgrades.is_empty());
    }

    #[test]
    fn bnb_proves_optimality_on_psd_instances_quickly() {
        // PSD instances (post-projection) should be easy: verify node
        // counts stay small on a 12-layer problem.
        let mut rng = StdRng::seed_from_u64(7);
        let k = 12;
        let n = 3 * k;
        // Build PSD G = M Mᵀ (scaled).
        let m_cols = 8;
        let m: Vec<f64> = (0..n * m_cols).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let mut g = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let dot: f64 = (0..m_cols)
                    .map(|c| m[i * m_cols + c] * m[j * m_cols + c])
                    .sum();
                g.set(i, j, dot);
            }
        }
        let costs: Vec<u64> = (0..n).map(|v| ((v % 3) as u64 + 1) * 100).collect();
        let p = IqpProblem::new(g, &vec![3; k], costs, k as u64 * 180).unwrap();
        let sol = p.solve(&SolverConfig::default()).unwrap();
        assert!(sol.proved_optimal, "nodes: {}", sol.nodes_explored);
    }
}
