//! Multi-start local search: greedy construction plus coordinate descent.
//!
//! Cost arithmetic note: construction guarantees the worst-case total cost
//! fits in `u64` ([`super::IqpError::CostOverflow`] otherwise), so every
//! switched-assignment cost is computed subtract-first in `u64`
//! (`cost − old + new`) — no signed casts, no wraparound near `u64::MAX`.

use super::deadline::{Anytime, Stop};
use super::{Candidate, IqpProblem, MethodUsed, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a local-search run.
#[derive(Debug)]
pub(super) enum LocalRun {
    /// All restarts completed; the best local minimum found.
    Done(Candidate),
    /// Stopped between restarts. The incumbent at that point depends on how
    /// many restarts completed — a wall-clock artefact — so only the
    /// deterministic greedy construction is surfaced.
    Aborted {
        /// Why the run stopped.
        stop: Stop,
        /// The greedy budget-filling construction (always feasible).
        greedy: Candidate,
    },
}

/// Incremental objective/cost state for a full assignment.
struct State<'p> {
    problem: &'p IqpProblem,
    choices: Vec<usize>,
    /// `t[v] = Σ_{u ∈ selected} g[v][u]` for every variable `v`.
    t: Vec<f64>,
    objective: f64,
    cost: u64,
}

impl<'p> State<'p> {
    fn new(problem: &'p IqpProblem, choices: Vec<usize>) -> Self {
        let n = problem.matrix().dim();
        let vars: Vec<usize> = choices
            .iter()
            .enumerate()
            .map(|(i, &m)| problem.var(i, m))
            .collect();
        let mut t = vec![0.0f64; n];
        for (v, tv) in t.iter_mut().enumerate() {
            *tv = vars.iter().map(|&u| problem.matrix().get(v, u)).sum();
        }
        let objective = vars.iter().map(|&u| t[u]).sum();
        let cost = problem.assignment_cost(&choices);
        Self {
            problem,
            choices,
            t,
            objective,
            cost,
        }
    }

    /// Objective change if group `i` switches to candidate `m`.
    fn delta(&self, i: usize, m: usize) -> f64 {
        let a = self.problem.var(i, self.choices[i]);
        let b = self.problem.var(i, m);
        if a == b {
            return 0.0;
        }
        let g = self.problem.matrix();
        2.0 * self.t[b] - 2.0 * g.get(b, a) + g.get(b, b) - 2.0 * self.t[a] + g.get(a, a)
    }

    /// Total cost after switching group `i` to candidate `m`. Subtracting
    /// the old candidate first keeps the intermediate ≤ `cost`, and the
    /// construction-time worst-case bound keeps the result in `u64`.
    fn switched_cost(&self, i: usize, m: usize) -> u64 {
        self.cost - self.problem.cost(i, self.choices[i]) + self.problem.cost(i, m)
    }

    /// Applies the switch of group `i` to candidate `m`.
    fn apply(&mut self, i: usize, m: usize) {
        let a = self.problem.var(i, self.choices[i]);
        let b = self.problem.var(i, m);
        if a == b {
            return;
        }
        self.objective += self.delta(i, m);
        self.cost = self.switched_cost(i, m);
        let g = self.problem.matrix();
        for v in 0..self.t.len() {
            self.t[v] += g.get(v, b) - g.get(v, a);
        }
        self.choices[i] = m;
    }

    /// One pass of steepest coordinate descent; returns `true` if improved.
    fn descend_once(&mut self) -> bool {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.problem.num_groups() {
            for m in 0..self.problem.group_size(i) {
                if m == self.choices[i] {
                    continue;
                }
                if self.switched_cost(i, m) > self.problem.budget() {
                    continue;
                }
                let d = self.delta(i, m);
                if d < -1e-15 && best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, m, d));
                }
            }
        }
        if let Some((i, m, _)) = best {
            self.apply(i, m);
            true
        } else {
            false
        }
    }

    /// Runs coordinate descent to a local minimum.
    fn descend(&mut self) {
        // Each accepted move strictly decreases the objective, so this
        // terminates; cap defensively anyway.
        let cap = 64 * self.choices.len().max(1) * 8;
        for _ in 0..cap {
            if !self.descend_once() {
                break;
            }
        }
    }

    fn candidate(&self, method: MethodUsed) -> Candidate {
        Candidate {
            choices: self.choices.clone(),
            objective: self.objective,
            cost: self.cost,
            method,
            proved: false,
        }
    }
}

/// Cheapest-choice starting assignment (always feasible for problems that
/// passed construction).
fn cheapest_assignment(problem: &IqpProblem) -> Vec<usize> {
    (0..problem.num_groups())
        .map(|i| {
            (0..problem.group_size(i))
                .min_by_key(|&m| problem.cost(i, m))
                .expect("groups are non-empty")
        })
        .collect()
}

/// Greedy budget-filling start: begin at the cheapest assignment, then take
/// the best objective-per-cost upgrades while the budget allows.
fn greedy_assignment(problem: &IqpProblem) -> Vec<usize> {
    let mut state = State::new(problem, cheapest_assignment(problem));
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..problem.num_groups() {
            for m in 0..problem.group_size(i) {
                if m == state.choices[i] {
                    continue;
                }
                if state.switched_cost(i, m) > problem.budget() {
                    continue;
                }
                let d = state.delta(i, m);
                if d >= 0.0 {
                    continue;
                }
                // Rate: objective gain per extra bit (upgrades cost more).
                // i128 holds any u64 difference exactly.
                let dc = problem.cost(i, m) as i128 - problem.cost(i, state.choices[i]) as i128;
                let rate = if dc > 0 {
                    d / dc as f64
                } else {
                    f64::NEG_INFINITY
                };
                if best.is_none_or(|(_, _, br)| rate < br) {
                    best = Some((i, m, rate));
                }
            }
        }
        match best {
            Some((i, m, _)) => state.apply(i, m),
            None => break,
        }
    }
    state.choices
}

/// The deterministic greedy budget-filling construction as a [`Candidate`]
/// — the ladder's floor and the warm start every heuristic begins from.
pub(super) fn greedy_candidate(problem: &IqpProblem) -> Candidate {
    State::new(problem, greedy_assignment(problem)).candidate(MethodUsed::Greedy)
}

/// Multi-start local search under the anytime controls in `ctl`; the stop
/// check runs once per restart, so restarts are atomic.
pub(super) fn run(problem: &IqpProblem, config: &SolverConfig, ctl: &Anytime) -> LocalRun {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let greedy_choices = greedy_assignment(problem);
    let greedy = State::new(problem, greedy_choices.clone()).candidate(MethodUsed::Greedy);
    let mut best_state = State::new(problem, greedy_choices);
    best_state.descend();
    let mut best = (
        best_state.choices.clone(),
        best_state.objective,
        best_state.cost,
    );

    for _ in 0..config.restarts {
        if let Some(stop) = ctl.check_now() {
            return LocalRun::Aborted { stop, greedy };
        }
        // Perturb the incumbent: re-randomize a handful of groups, repair
        // feasibility by downgrading to cheapest where needed, then descend.
        let mut choices = best.0.clone();
        let kicks = (problem.num_groups() / 4).max(2);
        for _ in 0..kicks {
            let i = rng.gen_range(0..problem.num_groups());
            choices[i] = rng.gen_range(0..problem.group_size(i));
        }
        // Repair: while infeasible, downgrade the most expensive group.
        let mut state = State::new(problem, choices);
        while state.cost > problem.budget() {
            let (i, m) = (0..problem.num_groups())
                .flat_map(|i| (0..problem.group_size(i)).map(move |m| (i, m)))
                .filter(|&(i, m)| problem.cost(i, m) < problem.cost(i, state.choices[i]))
                .min_by_key(|&(i, m)| state.switched_cost(i, m))
                .expect("problem is feasible, so a downgrade exists");
            state.apply(i, m);
        }
        state.descend();
        if state.objective < best.1 - 1e-15 {
            best = (state.choices.clone(), state.objective, state.cost);
        }
    }

    LocalRun::Done(Candidate {
        choices: best.0,
        objective: best.1,
        cost: best.2,
        method: MethodUsed::LocalSearch,
        proved: false,
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests::cross_term_instance;
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn unconstrained() -> Anytime {
        Anytime::resolve(None, None, Arc::new(AtomicBool::new(false)))
    }

    #[test]
    fn greedy_start_is_feasible() {
        let p = cross_term_instance();
        let g = greedy_assignment(&p);
        assert!(p.is_feasible(&g));
        let cand = greedy_candidate(&p);
        assert_eq!(cand.choices, g);
        assert!((cand.objective - p.assignment_objective(&g)).abs() < 1e-12);
    }

    #[test]
    fn local_search_finds_the_planted_optimum() {
        let p = cross_term_instance();
        let sol = match run(&p, &SolverConfig::default(), &unconstrained()) {
            LocalRun::Done(c) => c,
            other => panic!("unconstrained run must complete: {other:?}"),
        };
        assert!(p.is_feasible(&sol.choices));
        // Known optimum: groups 0 and 2 cheap together (negative coupling).
        assert!((sol.objective - p.assignment_objective(&sol.choices)).abs() < 1e-12);
    }

    #[test]
    fn preset_cancel_aborts_with_the_greedy_milestone() {
        let p = cross_term_instance();
        let cancel = Arc::new(AtomicBool::new(true));
        let ctl = Anytime::resolve(None, None, cancel);
        match run(&p, &SolverConfig::default(), &ctl) {
            LocalRun::Aborted { stop, greedy } => {
                assert_eq!(stop, Stop::Cancelled);
                assert_eq!(greedy.choices, greedy_candidate(&p).choices);
                assert!(p.is_feasible(&greedy.choices));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn incremental_state_matches_direct_evaluation() {
        let p = cross_term_instance();
        let mut st = State::new(&p, vec![0, 0, 0]);
        assert!((st.objective - p.assignment_objective(&[0, 0, 0])).abs() < 1e-12);
        st.apply(1, 1);
        assert!((st.objective - p.assignment_objective(&[0, 1, 0])).abs() < 1e-12);
        assert_eq!(st.cost, p.assignment_cost(&[0, 1, 0]));
        st.apply(0, 1);
        assert!((st.objective - p.assignment_objective(&[1, 1, 0])).abs() < 1e-12);
    }
}
