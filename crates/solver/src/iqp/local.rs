//! Multi-start local search: greedy construction plus coordinate descent.

use super::{IqpError, IqpProblem, Solution, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Incremental objective/cost state for a full assignment.
struct State<'p> {
    problem: &'p IqpProblem,
    choices: Vec<usize>,
    /// `t[v] = Σ_{u ∈ selected} g[v][u]` for every variable `v`.
    t: Vec<f64>,
    objective: f64,
    cost: u64,
}

impl<'p> State<'p> {
    fn new(problem: &'p IqpProblem, choices: Vec<usize>) -> Self {
        let n = problem.matrix().dim();
        let vars: Vec<usize> = choices
            .iter()
            .enumerate()
            .map(|(i, &m)| problem.var(i, m))
            .collect();
        let mut t = vec![0.0f64; n];
        for (v, tv) in t.iter_mut().enumerate() {
            *tv = vars.iter().map(|&u| problem.matrix().get(v, u)).sum();
        }
        let objective = vars.iter().map(|&u| t[u]).sum();
        let cost = problem.assignment_cost(&choices);
        Self {
            problem,
            choices,
            t,
            objective,
            cost,
        }
    }

    /// Objective change if group `i` switches to candidate `m`.
    fn delta(&self, i: usize, m: usize) -> f64 {
        let a = self.problem.var(i, self.choices[i]);
        let b = self.problem.var(i, m);
        if a == b {
            return 0.0;
        }
        let g = self.problem.matrix();
        2.0 * self.t[b] - 2.0 * g.get(b, a) + g.get(b, b) - 2.0 * self.t[a] + g.get(a, a)
    }

    /// Cost change if group `i` switches to candidate `m`.
    fn cost_delta(&self, i: usize, m: usize) -> i64 {
        self.problem.cost(i, m) as i64 - self.problem.cost(i, self.choices[i]) as i64
    }

    /// Applies the switch of group `i` to candidate `m`.
    fn apply(&mut self, i: usize, m: usize) {
        let a = self.problem.var(i, self.choices[i]);
        let b = self.problem.var(i, m);
        if a == b {
            return;
        }
        self.objective += self.delta(i, m);
        self.cost = (self.cost as i64 + self.cost_delta(i, m)) as u64;
        let g = self.problem.matrix();
        for v in 0..self.t.len() {
            self.t[v] += g.get(v, b) - g.get(v, a);
        }
        self.choices[i] = m;
    }

    /// One pass of steepest coordinate descent; returns `true` if improved.
    fn descend_once(&mut self) -> bool {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.problem.num_groups() {
            for m in 0..self.problem.group_size(i) {
                if m == self.choices[i] {
                    continue;
                }
                let dc = self.cost_delta(i, m);
                if self.cost as i64 + dc > self.problem.budget() as i64 {
                    continue;
                }
                let d = self.delta(i, m);
                if d < -1e-15 && best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, m, d));
                }
            }
        }
        if let Some((i, m, _)) = best {
            self.apply(i, m);
            true
        } else {
            false
        }
    }

    /// Runs coordinate descent to a local minimum.
    fn descend(&mut self) {
        // Each accepted move strictly decreases the objective, so this
        // terminates; cap defensively anyway.
        let cap = 64 * self.choices.len().max(1) * 8;
        for _ in 0..cap {
            if !self.descend_once() {
                break;
            }
        }
    }
}

/// Cheapest-choice starting assignment (always feasible for problems that
/// passed construction).
fn cheapest_assignment(problem: &IqpProblem) -> Vec<usize> {
    (0..problem.num_groups())
        .map(|i| {
            (0..problem.group_size(i))
                .min_by_key(|&m| problem.cost(i, m))
                .expect("groups are non-empty")
        })
        .collect()
}

/// Greedy budget-filling start: begin at the cheapest assignment, then take
/// the best objective-per-cost upgrades while the budget allows.
fn greedy_assignment(problem: &IqpProblem) -> Vec<usize> {
    let mut state = State::new(problem, cheapest_assignment(problem));
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..problem.num_groups() {
            for m in 0..problem.group_size(i) {
                if m == state.choices[i] {
                    continue;
                }
                let dc = state.cost_delta(i, m);
                if state.cost as i64 + dc > problem.budget() as i64 {
                    continue;
                }
                let d = state.delta(i, m);
                if d >= 0.0 {
                    continue;
                }
                // Rate: objective gain per extra bit (upgrades cost more).
                let rate = if dc > 0 {
                    d / dc as f64
                } else {
                    f64::NEG_INFINITY
                };
                if best.is_none_or(|(_, _, br)| rate < br) {
                    best = Some((i, m, rate));
                }
            }
        }
        match best {
            Some((i, m, _)) => state.apply(i, m),
            None => break,
        }
    }
    state.choices
}

/// Multi-start local search.
pub(super) fn solve(problem: &IqpProblem, config: &SolverConfig) -> Result<Solution, IqpError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best_state = State::new(problem, greedy_assignment(problem));
    best_state.descend();
    let mut best = (
        best_state.choices.clone(),
        best_state.objective,
        best_state.cost,
    );

    for _ in 0..config.restarts {
        // Perturb the incumbent: re-randomize a handful of groups, repair
        // feasibility by downgrading to cheapest where needed, then descend.
        let mut choices = best.0.clone();
        let kicks = (problem.num_groups() / 4).max(2);
        for _ in 0..kicks {
            let i = rng.gen_range(0..problem.num_groups());
            choices[i] = rng.gen_range(0..problem.group_size(i));
        }
        // Repair: while infeasible, downgrade the most expensive group.
        let mut state = State::new(problem, choices);
        while state.cost > problem.budget() {
            let (i, m) = (0..problem.num_groups())
                .flat_map(|i| (0..problem.group_size(i)).map(move |m| (i, m)))
                .filter(|&(i, m)| state.cost_delta(i, m) < 0)
                .min_by_key(|&(i, m)| state.cost as i64 + state.cost_delta(i, m))
                .expect("problem is feasible, so a downgrade exists");
            state.apply(i, m);
        }
        state.descend();
        if state.objective < best.1 - 1e-15 {
            best = (state.choices.clone(), state.objective, state.cost);
        }
    }

    Ok(Solution {
        choices: best.0,
        objective: best.1,
        cost: best.2,
        proved_optimal: false,
        nodes_explored: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests::cross_term_instance;
    use super::*;

    #[test]
    fn greedy_start_is_feasible() {
        let p = cross_term_instance();
        let g = greedy_assignment(&p);
        assert!(p.is_feasible(&g));
    }

    #[test]
    fn local_search_finds_the_planted_optimum() {
        let p = cross_term_instance();
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        assert!(p.is_feasible(&sol.choices));
        // Known optimum: groups 0 and 2 cheap together (negative coupling).
        assert!((sol.objective - p.assignment_objective(&sol.choices)).abs() < 1e-12);
    }

    #[test]
    fn incremental_state_matches_direct_evaluation() {
        let p = cross_term_instance();
        let mut st = State::new(&p, vec![0, 0, 0]);
        assert!((st.objective - p.assignment_objective(&[0, 0, 0])).abs() < 1e-12);
        st.apply(1, 1);
        assert!((st.objective - p.assignment_objective(&[0, 1, 0])).abs() < 1e-12);
        assert_eq!(st.cost, p.assignment_cost(&[0, 1, 0]));
        st.apply(0, 1);
        assert!((st.objective - p.assignment_objective(&[1, 1, 0])).abs() < 1e-12);
    }
}
