//! Property-based tests for the quantization kernels.

use clado_quant::{
    calibrate_affine, calibrate_symmetric, fake_quant_affine, fake_quant_symmetric, mse,
    quant_error, quantize_weights, BitWidth, QuantScheme,
};
use clado_tensor::Tensor;
use proptest::prelude::*;

fn weights_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-4.0f32..4.0, 4..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Inside the clip range, symmetric quantization error is ≤ s/2.
    #[test]
    fn symmetric_error_bounded_by_half_step(w in weights_strategy(), bits in 2u8..=8) {
        let b = BitWidth::of(bits);
        let params = calibrate_symmetric(&w, b);
        if params.scale == 0.0 { return Ok(()); }
        let (qmin, qmax) = b.signed_levels();
        let dq = fake_quant_symmetric(&w, b, params);
        for (&x, &y) in w.iter().zip(&dq) {
            let clipped_lo = qmin as f32 * params.scale;
            let clipped_hi = qmax as f32 * params.scale;
            if x >= clipped_lo && x <= clipped_hi {
                prop_assert!((x - y).abs() <= params.scale / 2.0 + 1e-5,
                    "in-range error exceeds s/2: {x} -> {y} (s={})", params.scale);
            }
        }
    }

    /// Fake quantization is idempotent: Q(Q(w)) == Q(w).
    #[test]
    fn symmetric_quantization_is_idempotent(w in weights_strategy(), bits in 2u8..=8) {
        let b = BitWidth::of(bits);
        let params = calibrate_symmetric(&w, b);
        let once = fake_quant_symmetric(&w, b, params);
        let twice = fake_quant_symmetric(&once, b, params);
        for (&x, &y) in once.iter().zip(&twice) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// MSE calibration never does worse than the naive max-range scale
    /// (which is always on its search grid). Note that monotonicity *in
    /// bits* is NOT a true property of grid calibration: on adversarial
    /// few-point inputs a coarser bit-width's grid can reach a
    /// better-aligned scale (its grid extends to absmax/qmax, which grows
    /// as bits shrink) — `calibrate_symmetric`'s docs call this out, and
    /// dense "natural" weight vectors are covered by the unit tests.
    #[test]
    fn calibration_never_loses_to_max_range(w in weights_strategy(), bits in 2u8..=8) {
        let b = BitWidth::of(bits);
        let absmax = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if absmax == 0.0 { return Ok(()); }
        let (_, qmax) = b.signed_levels();
        let naive = clado_quant::SymmetricParams { scale: absmax / qmax as f32 };
        let cal = calibrate_symmetric(&w, b);
        let err_cal = mse(&w, &fake_quant_symmetric(&w, b, cal));
        let err_naive = mse(&w, &fake_quant_symmetric(&w, b, naive));
        prop_assert!(err_cal <= err_naive * (1.0 + 1e-5) + 1e-12,
            "calibrated {err_cal} worse than naive {err_naive} at {bits} bits");
    }

    /// Same guarantee for affine calibration against the full-range affine
    /// quantizer.
    #[test]
    fn affine_calibration_never_loses_to_full_range(w in weights_strategy(), bits in 2u8..=8) {
        let b = BitWidth::of(bits);
        let lo = w.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = w.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if hi <= lo { return Ok(()); }
        let (qmin, qmax) = b.unsigned_levels();
        let scale = (hi - lo) / (qmax - qmin) as f32;
        let zero_point = (-(lo / scale)).round() as i32;
        let naive = clado_quant::AffineParams { scale, zero_point };
        let cal = calibrate_affine(&w, b);
        let err_cal = mse(&w, &fake_quant_affine(&w, b, cal));
        let err_naive = mse(&w, &fake_quant_affine(&w, b, naive));
        // The grid's ratio-1.0 candidate is computed in f64 about the range
        // midpoint, so it differs from this hand-built naive quantizer by
        // one rounding boundary; allow proportional slack.
        prop_assert!(
            err_cal <= err_naive * 1.1 + 1e-9,
            "calibrated {err_cal} much worse than naive {err_naive} at {bits} bits"
        );
    }

    /// quant_error really is Q(w) − w under both schemes.
    #[test]
    fn quant_error_definition(w in weights_strategy(), bits in 2u8..=8) {
        let rows = 2usize;
        let n = (w.len() / rows) * rows;
        if n == 0 { return Ok(()); }
        let t = Tensor::from_vec([rows, n / rows], w[..n].to_vec()).expect("sized");
        for scheme in [QuantScheme::PerTensorSymmetric, QuantScheme::PerChannelAffine] {
            let q = quantize_weights(&t, BitWidth::of(bits), scheme);
            let e = quant_error(&t, BitWidth::of(bits), scheme);
            for i in 0..n {
                prop_assert!((e.data()[i] - (q.data()[i] - t.data()[i])).abs() < 1e-6);
            }
        }
    }

    /// Quantized values land on the integer grid implied by (scale, zp).
    #[test]
    fn quantized_values_are_on_grid(w in weights_strategy(), bits in 2u8..=6) {
        let b = BitWidth::of(bits);
        let params = calibrate_symmetric(&w, b);
        if params.scale == 0.0 { return Ok(()); }
        let dq = fake_quant_symmetric(&w, b, params);
        for &y in &dq {
            let level = y / params.scale;
            prop_assert!((level - level.round()).abs() < 1e-3,
                "value {y} is not a multiple of scale {}", params.scale);
        }
    }
}
