//! Model-size accounting for mixed-precision assignments.
//!
//! The MPQ knapsack constraint is `Σᵢ |w⁽ⁱ⁾| · b⁽ⁱ⁾ ≤ C_target` (bits).
//! This module provides the bookkeeping: per-layer parameter counts, sizes
//! in bits/bytes/MB, and budget construction from "x-bit UPQ" references.

use crate::BitWidth;

/// Bits per megabyte, used for paper-style size reporting.
const BITS_PER_MB: f64 = 8.0 * 1024.0 * 1024.0;

/// Parameter counts of the quantizable layers of a model, in layer order.
///
/// # Examples
///
/// ```
/// use clado_quant::{BitWidth, LayerSizes};
///
/// let sizes = LayerSizes::new(vec![100, 250, 50]);
/// assert_eq!(sizes.num_layers(), 3);
/// assert_eq!(sizes.total_params(), 400);
/// assert_eq!(sizes.uniform_bits(BitWidth::of(8)), 3200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSizes {
    params: Vec<usize>,
}

impl LayerSizes {
    /// Creates the accounting table from per-layer parameter counts.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty or contains a zero count.
    pub fn new(params: Vec<usize>) -> Self {
        assert!(!params.is_empty(), "a model must have at least one layer");
        assert!(
            params.iter().all(|&p| p > 0),
            "layer parameter counts must be positive"
        );
        Self { params }
    }

    /// Number of quantizable layers `I`.
    pub fn num_layers(&self) -> usize {
        self.params.len()
    }

    /// Parameter count `|w⁽ⁱ⁾|` of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn params(&self, i: usize) -> usize {
        self.params[i]
    }

    /// Per-layer parameter counts as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.params
    }

    /// Total parameter count.
    pub fn total_params(&self) -> usize {
        self.params.iter().sum()
    }

    /// Weight storage, in bits, of a uniform-precision model.
    pub fn uniform_bits(&self, bits: BitWidth) -> u64 {
        self.total_params() as u64 * bits.bits() as u64
    }

    /// Weight storage, in bits, of a mixed-precision assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` length differs from the layer count.
    pub fn assignment_bits(&self, assignment: &[BitWidth]) -> u64 {
        assert_eq!(
            assignment.len(),
            self.params.len(),
            "assignment covers {} layers but the model has {}",
            assignment.len(),
            self.params.len()
        );
        self.params
            .iter()
            .zip(assignment)
            .map(|(&p, &b)| p as u64 * b.bits() as u64)
            .sum()
    }

    /// A budget equal to `frac · (uniform `bits` size)`. `frac = 1.0`
    /// reproduces the "x-bit UPQ" reference budgets from the paper's
    /// figures.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is non-positive or non-finite.
    pub fn budget_from_uniform(&self, bits: BitWidth, frac: f64) -> u64 {
        assert!(
            frac > 0.0 && frac.is_finite(),
            "budget fraction must be positive"
        );
        (self.uniform_bits(bits) as f64 * frac).round() as u64
    }

    /// A budget from a target model size in megabytes (paper-style
    /// constraints like "10.13 MB").
    ///
    /// # Panics
    ///
    /// Panics if `mb` is non-positive or non-finite.
    pub fn budget_from_mb(&self, mb: f64) -> u64 {
        assert!(mb > 0.0 && mb.is_finite(), "size budget must be positive");
        (mb * BITS_PER_MB).round() as u64
    }

    /// A budget corresponding to an *average* of `avg_bits` bits per weight
    /// (may be fractional, e.g. 3.0 for the "3-bit UPQ equivalent" sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `avg_bits` is non-positive or non-finite.
    pub fn budget_from_avg_bits(&self, avg_bits: f64) -> u64 {
        assert!(
            avg_bits > 0.0 && avg_bits.is_finite(),
            "avg_bits must be positive"
        );
        (self.total_params() as f64 * avg_bits).round() as u64
    }
}

/// Converts a size in bits to megabytes (paper-style reporting).
pub fn bits_to_mb(bits: u64) -> f64 {
    bits as f64 / BITS_PER_MB
}

/// Average bits per weight implied by a bit budget.
pub fn avg_bits(total_bits: u64, total_params: usize) -> f64 {
    total_bits as f64 / total_params as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> LayerSizes {
        LayerSizes::new(vec![100, 200, 700])
    }

    #[test]
    fn uniform_and_assignment_accounting() {
        let s = sizes();
        assert_eq!(s.total_params(), 1000);
        assert_eq!(s.uniform_bits(BitWidth::of(4)), 4000);
        let assign = vec![BitWidth::of(8), BitWidth::of(4), BitWidth::of(2)];
        assert_eq!(s.assignment_bits(&assign), 800 + 800 + 1400);
    }

    #[test]
    fn budgets() {
        let s = sizes();
        assert_eq!(s.budget_from_uniform(BitWidth::of(4), 1.0), 4000);
        assert_eq!(s.budget_from_uniform(BitWidth::of(4), 0.75), 3000);
        assert_eq!(s.budget_from_avg_bits(3.0), 3000);
        assert_eq!(s.budget_from_avg_bits(2.5), 2500);
    }

    #[test]
    fn mb_conversion() {
        // 8 Mi bits = 1 MB
        assert!((bits_to_mb(8 * 1024 * 1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mb_budget_roundtrips() {
        let s = sizes();
        let b = s.budget_from_mb(0.25);
        assert!((bits_to_mb(b) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mb_budget_panics() {
        sizes().budget_from_mb(0.0);
    }

    #[test]
    fn avg_bits_roundtrip() {
        let s = sizes();
        let b = s.budget_from_avg_bits(3.5);
        assert!((avg_bits(b, s.total_params()) - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "assignment covers")]
    fn wrong_assignment_length_panics() {
        sizes().assignment_bits(&[BitWidth::of(8)]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_layer_sizes_panics() {
        LayerSizes::new(vec![]);
    }
}
