//! Bit-width newtype and candidate sets.

use std::fmt;

/// Error returned when constructing an invalid [`BitWidth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitWidthError(u8);

impl fmt::Display for ParseBitWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit-width must be between 1 and 16, got {}", self.0)
    }
}

impl std::error::Error for ParseBitWidthError {}

/// A validated quantization bit-width in `1..=16`.
///
/// # Examples
///
/// ```
/// use clado_quant::BitWidth;
///
/// let b = BitWidth::new(4)?;
/// assert_eq!(b.bits(), 4);
/// assert_eq!(b.signed_levels(), (-8, 7));
/// # Ok::<(), clado_quant::ParseBitWidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitWidth(u8);

impl BitWidth {
    /// Creates a bit-width.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitWidthError`] unless `1 <= bits <= 16`.
    pub fn new(bits: u8) -> Result<Self, ParseBitWidthError> {
        if (1..=16).contains(&bits) {
            Ok(Self(bits))
        } else {
            Err(ParseBitWidthError(bits))
        }
    }

    /// Creates a bit-width, panicking on invalid input. Convenient for
    /// constants in experiments.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn of(bits: u8) -> Self {
        Self::new(bits).expect("valid bit-width")
    }

    /// The raw number of bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `(min, max)` representable signed integer levels: `[-2^{b-1}, 2^{b-1}-1]`.
    pub fn signed_levels(self) -> (i32, i32) {
        let half = 1i32 << (self.0 - 1);
        (-half, half - 1)
    }

    /// `(min, max)` representable unsigned integer levels: `[0, 2^b - 1]`.
    pub fn unsigned_levels(self) -> (i32, i32) {
        (0, (1i32 << self.0) - 1)
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl From<BitWidth> for u8 {
    fn from(b: BitWidth) -> u8 {
        b.0
    }
}

/// An ordered set of candidate bit-widths 𝔹 for mixed-precision search.
///
/// The paper uses 𝔹 = {2, 4, 8} for most models and {4, 6, 8} for
/// MobileNetV3.
///
/// # Examples
///
/// ```
/// use clado_quant::BitWidthSet;
///
/// let b = BitWidthSet::standard(); // {2, 4, 8}
/// assert_eq!(b.len(), 3);
/// assert_eq!(b.get(1).bits(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitWidthSet {
    widths: Vec<BitWidth>,
}

impl BitWidthSet {
    /// Creates a candidate set from raw bit counts, sorted ascending and
    /// deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or contains an invalid width.
    pub fn new(bits: &[u8]) -> Self {
        assert!(!bits.is_empty(), "bit-width set must not be empty");
        let mut widths: Vec<BitWidth> = bits.iter().map(|&b| BitWidth::of(b)).collect();
        widths.sort();
        widths.dedup();
        Self { widths }
    }

    /// The paper's default candidate set 𝔹 = {2, 4, 8}.
    pub fn standard() -> Self {
        Self::new(&[2, 4, 8])
    }

    /// The conservative candidate set used for MobileNetV3: 𝔹 = {4, 6, 8}.
    pub fn conservative() -> Self {
        Self::new(&[4, 6, 8])
    }

    /// Number of candidates |𝔹|.
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// `true` if the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }

    /// Candidate at index `m` (ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.len()`.
    pub fn get(&self, m: usize) -> BitWidth {
        self.widths[m]
    }

    /// The largest candidate (used for "UPQ at max precision" references).
    pub fn max(&self) -> BitWidth {
        *self.widths.last().expect("non-empty by construction")
    }

    /// The smallest candidate.
    pub fn min(&self) -> BitWidth {
        self.widths[0]
    }

    /// Iterates over the candidates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = BitWidth> + '_ {
        self.widths.iter().copied()
    }

    /// Index of `b` in the set, if present.
    pub fn index_of(&self, b: BitWidth) -> Option<usize> {
        self.widths.iter().position(|&x| x == b)
    }
}

impl fmt::Display for BitWidthSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.widths.iter().map(|b| b.bits().to_string()).collect();
        write!(f, "{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_levels() {
        assert_eq!(BitWidth::of(2).signed_levels(), (-2, 1));
        assert_eq!(BitWidth::of(8).signed_levels(), (-128, 127));
        assert_eq!(BitWidth::of(4).unsigned_levels(), (0, 15));
    }

    #[test]
    fn bitwidth_validation() {
        assert!(BitWidth::new(0).is_err());
        assert!(BitWidth::new(17).is_err());
        assert!(BitWidth::new(1).is_ok());
        assert!(BitWidth::new(16).is_ok());
        let err = BitWidth::new(0).unwrap_err();
        assert!(err.to_string().contains("between 1 and 16"));
    }

    #[test]
    fn set_sorts_and_dedups() {
        let s = BitWidthSet::new(&[8, 2, 4, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0).bits(), 2);
        assert_eq!(s.max().bits(), 8);
        assert_eq!(s.min().bits(), 2);
        assert_eq!(s.index_of(BitWidth::of(4)), Some(1));
        assert_eq!(s.index_of(BitWidth::of(6)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", BitWidth::of(4)), "4b");
        assert_eq!(format!("{}", BitWidthSet::standard()), "{2,4,8}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_set_panics() {
        BitWidthSet::new(&[]);
    }
}
