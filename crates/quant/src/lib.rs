//! # clado-quant
//!
//! Uniform weight quantization for the CLADO mixed-precision-quantization
//! reproduction: per-tensor symmetric and per-channel affine fake
//! quantization, MSE-minimizing scale calibration (the MPQCO/MQBench recipe
//! the paper adopts), bit-width candidate sets, and model-size accounting
//! for the MPQ knapsack constraint.
//!
//! ## Example
//!
//! ```
//! use clado_quant::{quant_error, BitWidth, BitWidthSet, QuantScheme};
//! use clado_tensor::Tensor;
//!
//! let w = Tensor::from_vec([8], (0..8).map(|i| i as f32 * 0.1 - 0.35).collect())?;
//! // Δw = Q(w, 2) − w is what CLADO perturbs the network with.
//! let dw = quant_error(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric);
//! assert!(dw.norm() > 0.0);
//! assert_eq!(BitWidthSet::standard().len(), 3);
//! # Ok::<(), clado_tensor::ShapeMismatchError>(())
//! ```

#![warn(missing_docs)]

mod bitwidth;
mod cost;
mod quantize;
mod scheme;

pub use bitwidth::{BitWidth, BitWidthSet, ParseBitWidthError};
pub use cost::{avg_bits, bits_to_mb, LayerSizes};
pub use quantize::{
    calibrate_affine, calibrate_symmetric, fake_quant_affine, fake_quant_affine_into,
    fake_quant_affine_mse, fake_quant_symmetric, fake_quant_symmetric_into,
    fake_quant_symmetric_mse, mse, AffineParams, SymmetricParams,
};
pub use scheme::{quant_error, quant_error_into, quantize_weights, QuantScheme};
