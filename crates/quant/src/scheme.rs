//! High-level tensor quantizers: scheme dispatch and per-channel handling.

use crate::quantize::{
    calibrate_affine, calibrate_symmetric, fake_quant_affine, fake_quant_symmetric,
};

use crate::BitWidth;
use clado_tensor::Tensor;
use std::fmt;

/// Weight quantization scheme.
///
/// The paper uses per-tensor symmetric quantization by default and
/// per-channel affine for MobileNetV3-Large and ViT-base (marked `+` in
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantScheme {
    /// One symmetric scale for the whole tensor.
    #[default]
    PerTensorSymmetric,
    /// One symmetric scale per output channel (dimension 0) — common in
    /// deployment stacks that support per-channel weights but not zero
    /// points.
    PerChannelSymmetric,
    /// One affine `(scale, zero_point)` pair per output channel
    /// (dimension 0 of the weight tensor).
    PerChannelAffine,
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PerTensorSymmetric => write!(f, "per-tensor symmetric"),
            Self::PerChannelSymmetric => write!(f, "per-channel symmetric"),
            Self::PerChannelAffine => write!(f, "per-channel affine"),
        }
    }
}

/// Quantizes a weight tensor to `bits` under `scheme`, returning the
/// dequantized ("fake-quantized") tensor.
///
/// Scales (and zero points) are calibrated by MSE minimization, following
/// the MPQCO/MQBench recipe the paper adopts.
///
/// For [`QuantScheme::PerChannelAffine`], dimension 0 is treated as the
/// channel axis; each channel slice gets its own parameters.
///
/// # Examples
///
/// ```
/// use clado_quant::{quantize_weights, BitWidth, QuantScheme};
/// use clado_tensor::Tensor;
///
/// let w = Tensor::from_vec([2, 2], vec![0.1, -0.4, 0.25, 0.8])?;
/// let q8 = quantize_weights(&w, BitWidth::of(8), QuantScheme::PerTensorSymmetric);
/// // 8-bit quantization is nearly lossless:
/// assert!((&q8 - &w).abs_max() < 0.01);
/// # Ok::<(), clado_tensor::ShapeMismatchError>(())
/// ```
pub fn quantize_weights(w: &Tensor, bits: BitWidth, scheme: QuantScheme) -> Tensor {
    match scheme {
        QuantScheme::PerTensorSymmetric => {
            let params = calibrate_symmetric(w.data(), bits);
            let dq = fake_quant_symmetric(w.data(), bits, params);
            Tensor::from_vec(w.shape(), dq).expect("length preserved")
        }
        QuantScheme::PerChannelSymmetric => {
            let channels = w.shape().dim(0);
            let per = w.numel() / channels;
            let mut out = vec![0.0f32; w.numel()];
            for c in 0..channels {
                let slice = &w.data()[c * per..(c + 1) * per];
                let params = calibrate_symmetric(slice, bits);
                let dq = fake_quant_symmetric(slice, bits, params);
                out[c * per..(c + 1) * per].copy_from_slice(&dq);
            }
            Tensor::from_vec(w.shape(), out).expect("length preserved")
        }
        QuantScheme::PerChannelAffine => {
            let channels = w.shape().dim(0);
            let per = w.numel() / channels;
            let mut out = vec![0.0f32; w.numel()];
            for c in 0..channels {
                let slice = &w.data()[c * per..(c + 1) * per];
                let params = calibrate_affine(slice, bits);
                let dq = fake_quant_affine(slice, bits, params);
                out[c * per..(c + 1) * per].copy_from_slice(&dq);
            }
            Tensor::from_vec(w.shape(), out).expect("length preserved")
        }
    }
}

/// Computes the quantization error `Δw = Q(w, b) − w` used throughout the
/// CLADO sensitivity machinery.
pub fn quant_error(w: &Tensor, bits: BitWidth, scheme: QuantScheme) -> Tensor {
    let mut out = vec![0.0f32; w.numel()];
    quant_error_into(w, bits, scheme, &mut out);
    Tensor::from_vec(w.shape(), out).expect("length preserved")
}

/// Fused `Δw = Q(w, b) − w` into a caller buffer: identical values to
/// [`quant_error`] without materializing the intermediate quantized tensor
/// (one fewer full-tensor allocation per (layer, bit-width) probe).
///
/// # Panics
///
/// Panics if `out.len() != w.numel()`.
pub fn quant_error_into(w: &Tensor, bits: BitWidth, scheme: QuantScheme, out: &mut [f32]) {
    assert_eq!(out.len(), w.numel(), "output buffer length mismatch");
    use crate::quantize::{fake_quant_affine_into, fake_quant_symmetric_into};
    match scheme {
        QuantScheme::PerTensorSymmetric => {
            let params = calibrate_symmetric(w.data(), bits);
            fake_quant_symmetric_into(w.data(), bits, params, out);
        }
        QuantScheme::PerChannelSymmetric => {
            let channels = w.shape().dim(0);
            let per = w.numel() / channels;
            for c in 0..channels {
                let slice = &w.data()[c * per..(c + 1) * per];
                let params = calibrate_symmetric(slice, bits);
                fake_quant_symmetric_into(slice, bits, params, &mut out[c * per..(c + 1) * per]);
            }
        }
        QuantScheme::PerChannelAffine => {
            let channels = w.shape().dim(0);
            let per = w.numel() / channels;
            for c in 0..channels {
                let slice = &w.data()[c * per..(c + 1) * per];
                let params = calibrate_affine(slice, bits);
                fake_quant_affine_into(slice, bits, params, &mut out[c * per..(c + 1) * per]);
            }
        }
    }
    for (o, &x) in out.iter_mut().zip(w.data()) {
        *o -= x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tensor_error_shrinks_with_bits() {
        let w =
            Tensor::from_vec([4, 4], (0..16).map(|i| (i as f32 - 8.0) / 10.0).collect()).unwrap();
        let e2 = quant_error(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric).norm_sq();
        let e4 = quant_error(&w, BitWidth::of(4), QuantScheme::PerTensorSymmetric).norm_sq();
        let e8 = quant_error(&w, BitWidth::of(8), QuantScheme::PerTensorSymmetric).norm_sq();
        assert!(e2 > e4 && e4 > e8, "{e2} {e4} {e8}");
    }

    #[test]
    fn per_channel_beats_per_tensor_on_mismatched_channels() {
        // Channel 0 tiny weights, channel 1 huge: a single scale wastes
        // resolution on channel 0.
        let mut data = vec![0.0f32; 32];
        for i in 0..16 {
            data[i] = (i as f32 - 8.0) * 0.001;
            data[16 + i] = (i as f32 - 8.0) * 1.0;
        }
        let w = Tensor::from_vec([2, 16], data).unwrap();
        let e_pt = quant_error(&w, BitWidth::of(4), QuantScheme::PerTensorSymmetric).norm_sq();
        let e_pc = quant_error(&w, BitWidth::of(4), QuantScheme::PerChannelAffine).norm_sq();
        assert!(e_pc < e_pt * 0.5, "per-channel {e_pc} vs per-tensor {e_pt}");
    }

    #[test]
    fn scheme_display() {
        assert_eq!(
            QuantScheme::PerTensorSymmetric.to_string(),
            "per-tensor symmetric"
        );
        assert_eq!(
            QuantScheme::PerChannelAffine.to_string(),
            "per-channel affine"
        );
        assert_eq!(QuantScheme::default(), QuantScheme::PerTensorSymmetric);
    }

    #[test]
    fn per_channel_symmetric_sits_between_the_other_schemes() {
        // Mismatched channel magnitudes: per-channel symmetric must beat
        // per-tensor symmetric (which wastes its whole grid on channel 1 and
        // rounds channel 0 to zero); per-channel affine must match or beat it.
        let mut data = vec![0.0f32; 32];
        for i in 0..16 {
            data[i] = (i as f32 - 8.0) * 0.05;
            data[16 + i] = (i as f32 - 8.0) * 1.0;
        }
        let w = Tensor::from_vec([2, 16], data).unwrap();
        let b = BitWidth::of(4);
        let e_pt = quant_error(&w, b, QuantScheme::PerTensorSymmetric).norm_sq();
        let e_pcs = quant_error(&w, b, QuantScheme::PerChannelSymmetric).norm_sq();
        let e_pca = quant_error(&w, b, QuantScheme::PerChannelAffine).norm_sq();
        assert!(
            e_pcs < e_pt * 0.5,
            "per-channel sym {e_pcs} vs per-tensor {e_pt}"
        );
        assert!(e_pca <= e_pcs * 1.05, "affine {e_pca} vs symmetric {e_pcs}");
    }

    #[test]
    fn quant_error_is_q_minus_w() {
        let w = Tensor::from_vec([4], vec![0.11, -0.7, 0.2, 0.5]).unwrap();
        let q = quantize_weights(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric);
        let e = quant_error(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric);
        for i in 0..4 {
            assert!((e.data()[i] - (q.data()[i] - w.data()[i])).abs() < 1e-7);
        }
    }
}
