//! Uniform quantization kernels and MSE scale calibration.
//!
//! Two schemes, matching the paper's experimental setup:
//!
//! * **Per-tensor symmetric** (default): `Q(w) = clip(round(w/s), −2^{b−1},
//!   2^{b−1}−1) · s`, one scale per tensor.
//! * **Per-channel affine** (used for MobileNetV3 and ViT, marked `+` in
//!   Table 1): `Q(w) = (clip(round(w/s) + z, 0, 2^b−1) − z) · s`, one
//!   `(s, z)` pair per output channel.
//!
//! Following MPQCO/MQBench, scale factors (and zero points) are chosen by
//! minimizing the mean squared error between the FP32 weights and their
//! quantized counterparts.

use crate::BitWidth;

/// Number of candidate clipping ratios scanned during MSE calibration.
const CALIBRATION_GRID: usize = 80;
/// Smallest clipping ratio scanned (as a fraction of the max-range scale).
const CALIBRATION_MIN_RATIO: f64 = 0.2;

/// Parameters of a symmetric per-tensor quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricParams {
    /// Scale factor `s` (> 0, or 0 for an all-zero tensor).
    pub scale: f32,
}

/// Parameters of an affine quantizer (one per channel in per-channel mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineParams {
    /// Scale factor `s` (> 0, or 0 for a constant tensor).
    pub scale: f32,
    /// Integer zero point `z` within the unsigned level range.
    pub zero_point: i32,
}

/// Quantizes `w` symmetrically with the given scale, returning dequantized
/// values (fake quantization).
pub fn fake_quant_symmetric(w: &[f32], bits: BitWidth, params: SymmetricParams) -> Vec<f32> {
    let mut out = vec![0.0f32; w.len()];
    fake_quant_symmetric_into(w, bits, params, &mut out);
    out
}

/// Fused quantize→dequantize into a caller-provided buffer: identical
/// values to [`fake_quant_symmetric`] without the allocation.
///
/// # Panics
///
/// Panics if `out.len() != w.len()`.
pub fn fake_quant_symmetric_into(
    w: &[f32],
    bits: BitWidth,
    params: SymmetricParams,
    out: &mut [f32],
) {
    assert_eq!(out.len(), w.len(), "output buffer length mismatch");
    let (qmin, qmax) = bits.signed_levels();
    let s = params.scale;
    if s == 0.0 {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / s;
    for (o, &x) in out.iter_mut().zip(w) {
        let q = (x * inv).round().clamp(qmin as f32, qmax as f32);
        *o = q * s;
    }
}

/// Fused quantize→dequantize→MSE: bitwise-identical to
/// `mse(w, &fake_quant_symmetric(w, bits, params))` without materializing
/// the dequantized vector. This is the calibration-grid hot path.
pub fn fake_quant_symmetric_mse(w: &[f32], bits: BitWidth, params: SymmetricParams) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    let (qmin, qmax) = bits.signed_levels();
    let s = params.scale;
    let mut sum = 0.0f64;
    if s == 0.0 {
        for &x in w {
            let d = x as f64;
            sum += d * d;
        }
        return sum / w.len() as f64;
    }
    let inv = 1.0 / s;
    for &x in w {
        let q = (x * inv).round().clamp(qmin as f32, qmax as f32);
        let d = (x - q * s) as f64;
        sum += d * d;
    }
    sum / w.len() as f64
}

/// Quantizes `w` with an affine quantizer, returning dequantized values.
pub fn fake_quant_affine(w: &[f32], bits: BitWidth, params: AffineParams) -> Vec<f32> {
    let mut out = vec![0.0f32; w.len()];
    fake_quant_affine_into(w, bits, params, &mut out);
    out
}

/// Fused affine quantize→dequantize into a caller-provided buffer:
/// identical values to [`fake_quant_affine`] without the allocation.
///
/// # Panics
///
/// Panics if `out.len() != w.len()`.
pub fn fake_quant_affine_into(w: &[f32], bits: BitWidth, params: AffineParams, out: &mut [f32]) {
    assert_eq!(out.len(), w.len(), "output buffer length mismatch");
    let (qmin, qmax) = bits.unsigned_levels();
    let s = params.scale;
    if s == 0.0 {
        // Constant tensor: affine quantization represents it exactly via the
        // zero point; dequantized error is zero.
        out.copy_from_slice(w);
        return;
    }
    let inv = 1.0 / s;
    let z = params.zero_point as f32;
    for (o, &x) in out.iter_mut().zip(w) {
        let q = ((x * inv).round() + z).clamp(qmin as f32, qmax as f32);
        *o = (q - z) * s;
    }
}

/// Fused affine quantize→dequantize→MSE: bitwise-identical to
/// `mse(w, &fake_quant_affine(w, bits, params))` without materializing the
/// dequantized vector.
pub fn fake_quant_affine_mse(w: &[f32], bits: BitWidth, params: AffineParams) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    let (qmin, qmax) = bits.unsigned_levels();
    let s = params.scale;
    if s == 0.0 {
        return 0.0;
    }
    let inv = 1.0 / s;
    let z = params.zero_point as f32;
    let mut sum = 0.0f64;
    for &x in w {
        let q = ((x * inv).round() + z).clamp(qmin as f32, qmax as f32);
        let d = (x - (q - z) * s) as f64;
        sum += d * d;
    }
    sum / w.len() as f64
}

/// Mean squared error between two slices (f64 accumulation).
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse inputs must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Chooses a symmetric scale minimizing quantization MSE over a grid of
/// clipping ratios.
///
/// The max-range scale `absmax / qmax` is always a candidate; tighter clips
/// trade saturation error for finer resolution, which matters at 2 bits.
///
/// Note: because each bit-width searches its own grid `[0.2, 1.0]·absmax/qmax`,
/// the calibrated MSE is guaranteed to be no worse than the max-range scale,
/// but it is *not* guaranteed monotone across bit-widths on adversarial
/// few-point inputs (a coarser width's grid reaches larger scales that may
/// align better with isolated values).
pub fn calibrate_symmetric(w: &[f32], bits: BitWidth) -> SymmetricParams {
    let absmax = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if absmax == 0.0 {
        return SymmetricParams { scale: 0.0 };
    }
    let (_, qmax) = bits.signed_levels();
    let full = absmax as f64 / qmax as f64;
    let mut best = SymmetricParams { scale: full as f32 };
    let mut best_err = f64::INFINITY;
    for k in 0..=CALIBRATION_GRID {
        let ratio = CALIBRATION_MIN_RATIO
            + (1.0 - CALIBRATION_MIN_RATIO) * (k as f64 / CALIBRATION_GRID as f64);
        let s = (full * ratio) as f32;
        let params = SymmetricParams { scale: s };
        let err = fake_quant_symmetric_mse(w, bits, params);
        if err < best_err {
            best_err = err;
            best = params;
        }
    }
    best
}

/// Chooses affine parameters minimizing quantization MSE over a grid of
/// range-shrink ratios around `[min(w), max(w)]`.
pub fn calibrate_affine(w: &[f32], bits: BitWidth) -> AffineParams {
    let lo = w.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = w.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return AffineParams {
            scale: 0.0,
            zero_point: 0,
        };
    }
    let (qmin, qmax) = bits.unsigned_levels();
    let levels = (qmax - qmin) as f64;
    let mut best = AffineParams {
        scale: 0.0,
        zero_point: 0,
    };
    let mut best_err = f64::INFINITY;
    let mid = (lo as f64 + hi as f64) / 2.0;
    for k in 0..=CALIBRATION_GRID {
        let ratio = CALIBRATION_MIN_RATIO
            + (1.0 - CALIBRATION_MIN_RATIO) * (k as f64 / CALIBRATION_GRID as f64);
        // Shrink the clip range about its midpoint so asymmetric ranges
        // (e.g. strictly positive weights) stay centred on the data.
        let rlo = mid + (lo as f64 - mid) * ratio;
        let rhi = mid + (hi as f64 - mid) * ratio;
        let scale = ((rhi - rlo) / levels) as f32;
        if scale <= 0.0 {
            continue;
        }
        // The zero point may lie outside the level range when the data range
        // excludes zero; only the quantized level q is clamped to [qmin, qmax].
        let zero_point = (-(rlo / scale as f64)).round() as i32;
        let params = AffineParams { scale, zero_point };
        let err = fake_quant_affine_mse(w, bits, params);
        if err < best_err {
            best_err = err;
            best = params;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_error_bounded_by_half_scale() {
        let w: Vec<f32> = (-20..=20).map(|i| i as f32 * 0.05).collect();
        let bits = BitWidth::of(4);
        let params = SymmetricParams { scale: 0.15 };
        let dq = fake_quant_symmetric(&w, bits, params);
        for (&x, &y) in w.iter().zip(&dq) {
            // Inside the clip range the error is at most s/2.
            if x.abs() <= 0.15 * 7.0 {
                assert!((x - y).abs() <= 0.075 + 1e-6, "{x} -> {y}");
            }
        }
    }

    #[test]
    fn symmetric_clips_outliers() {
        let bits = BitWidth::of(2); // levels -2..=1
        let params = SymmetricParams { scale: 1.0 };
        let dq = fake_quant_symmetric(&[100.0, -100.0], bits, params);
        assert_eq!(dq, vec![1.0, -2.0]);
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let params = calibrate_symmetric(&[0.0; 8], BitWidth::of(4));
        assert_eq!(params.scale, 0.0);
        assert_eq!(
            fake_quant_symmetric(&[0.0; 3], BitWidth::of(4), params),
            vec![0.0; 3]
        );
    }

    /// Deterministic pseudo-Gaussian samples (sum of 12 LCG uniforms − 6).
    fn pseudo_gaussian(n: usize) -> Vec<f32> {
        let mut s = 12345u64;
        let mut uni = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| ((0..12).map(|_| uni()).sum::<f64>() - 6.0) as f32)
            .collect()
    }

    #[test]
    fn calibration_beats_naive_maxrange_on_gaussian_at_low_bits() {
        // For Gaussian-like weights at 2 bits, the MSE-optimal clip is well
        // inside the max range (the classic motivation for MSE calibration).
        let w = pseudo_gaussian(512);
        let bits = BitWidth::of(2);
        let cal = calibrate_symmetric(&w, bits);
        let absmax = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let naive = SymmetricParams {
            scale: absmax / 1.0,
        }; // qmax = 1 at 2 bits
        let err_cal = mse(&w, &fake_quant_symmetric(&w, bits, cal));
        let err_naive = mse(&w, &fake_quant_symmetric(&w, bits, naive));
        assert!(err_cal < err_naive * 0.9, "{err_cal} !< {err_naive}");
        assert!(cal.scale < naive.scale, "calibrated scale should clip");
    }

    #[test]
    fn more_bits_never_hurt_after_calibration() {
        let w: Vec<f32> = (0..512)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f32 / 997.0 - 0.5)
            .collect();
        let mut prev = f64::INFINITY;
        for bits in [2u8, 4, 8] {
            let b = BitWidth::of(bits);
            let p = calibrate_symmetric(&w, b);
            let err = mse(&w, &fake_quant_symmetric(&w, b, p));
            assert!(
                err <= prev + 1e-12,
                "{bits}-bit error {err} exceeds previous {prev}"
            );
            prev = err;
        }
    }

    #[test]
    fn affine_handles_asymmetric_ranges_better_than_symmetric() {
        // Strictly positive weights: affine should quantize markedly better.
        let w: Vec<f32> = (0..256).map(|i| 1.0 + (i as f32) / 256.0).collect();
        let bits = BitWidth::of(4);
        let pa = calibrate_affine(&w, bits);
        let ps = calibrate_symmetric(&w, bits);
        let err_a = mse(&w, &fake_quant_affine(&w, bits, pa));
        let err_s = mse(&w, &fake_quant_symmetric(&w, bits, ps));
        assert!(err_a < err_s * 0.5, "affine {err_a} vs symmetric {err_s}");
    }

    #[test]
    fn affine_constant_tensor_is_exact() {
        let w = vec![3.25; 16];
        let p = calibrate_affine(&w, BitWidth::of(4));
        let dq = fake_quant_affine(&w, BitWidth::of(4), p);
        for (&x, &y) in w.iter().zip(&dq) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn eight_bit_calibrated_error_is_tiny() {
        let w: Vec<f32> = (0..100).map(|i| (i as f32 / 100.0) - 0.5).collect();
        let b = BitWidth::of(8);
        let p = calibrate_symmetric(&w, b);
        let err = mse(&w, &fake_quant_symmetric(&w, b, p));
        assert!(err < 1e-5, "{err}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
