//! Mini MobileNetV3 analogue: inverted residual blocks with depthwise
//! convolutions and squeeze-excite, hard-swish activations.
//!
//! Layer names follow the paper's Appendix A MobileNetV3 listing
//! (`features.{i}.block.{j}...`), with the stem (`features.0.0`) and final
//! 1×1 conv (`features.N.0`) quantizable, as in the paper.

use clado_nn::{
    ActKind, Activation, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Network, ResidualBlock,
    Sequential, SqueezeExcite,
};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::CHANNELS;

/// One inverted-residual block row: `(expansion, out_channels, stride, se)`.
#[derive(Debug, Clone, Copy)]
pub struct InvertedResidualSpec {
    /// Channel expansion factor (1 skips the expand conv).
    pub expand: usize,
    /// Output channels.
    pub out: usize,
    /// Depthwise stride.
    pub stride: usize,
    /// Include a squeeze-excite module.
    pub se: bool,
}

/// Mini MobileNet configuration.
#[derive(Debug, Clone)]
pub struct MobileNetConfig {
    /// Stem output channels.
    pub stem: usize,
    /// The inverted-residual rows.
    pub rows: Vec<InvertedResidualSpec>,
    /// Final 1×1 conv output channels.
    pub head: usize,
    /// Number of classes.
    pub classes: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Quantize activations to this many bits after the stem and head
    /// convolutions (`None` keeps FP32 activations).
    pub act_bits: Option<u8>,
}

impl MobileNetConfig {
    /// The MobileNetV3-Large analogue used in the experiments.
    pub fn mobilenet_mini(classes: usize, seed: u64) -> Self {
        Self {
            stem: 8,
            rows: vec![
                InvertedResidualSpec {
                    expand: 1,
                    out: 8,
                    stride: 1,
                    se: false,
                },
                InvertedResidualSpec {
                    expand: 3,
                    out: 12,
                    stride: 2,
                    se: false,
                },
                InvertedResidualSpec {
                    expand: 3,
                    out: 12,
                    stride: 1,
                    se: true,
                },
                InvertedResidualSpec {
                    expand: 4,
                    out: 16,
                    stride: 2,
                    se: true,
                },
                InvertedResidualSpec {
                    expand: 4,
                    out: 24,
                    stride: 2,
                    se: false,
                },
            ],
            head: 32,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// Returns the config with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u8) -> Self {
        self.act_bits = Some(bits);
        self
    }
}

fn inverted_residual(cin: usize, spec: InvertedResidualSpec, rng: &mut StdRng) -> ResidualBlock {
    let hidden = cin * spec.expand;
    let mut main = Sequential::new();
    let mut j = 0usize;
    if spec.expand != 1 {
        main = main
            .push(
                format!("block.{j}.0"),
                Conv2d::new(Conv2dSpec::new(cin, hidden, 1, 1, 0), false, rng),
            )
            .push(format!("block.{j}.1"), BatchNorm2d::new(hidden))
            .push(
                format!("block.{j}.act"),
                Activation::new(ActKind::HardSwish),
            );
        j += 1;
    }
    // Depthwise conv.
    main = main
        .push(
            format!("block.{j}.0"),
            Conv2d::new(
                Conv2dSpec::new(hidden, hidden, 3, spec.stride, 1).with_groups(hidden),
                false,
                rng,
            ),
        )
        .push(format!("block.{j}.1"), BatchNorm2d::new(hidden))
        .push(
            format!("block.{j}.act"),
            Activation::new(ActKind::HardSwish),
        );
    j += 1;
    if spec.se {
        main = main.push(format!("block.{j}"), SqueezeExcite::new(hidden, 4, rng));
        j += 1;
    }
    // Linear projection.
    main = main
        .push(
            format!("block.{j}.0"),
            Conv2d::new(Conv2dSpec::new(hidden, spec.out, 1, 1, 0), false, rng),
        )
        .push(format!("block.{j}.1"), BatchNorm2d::new(spec.out));
    let identity = spec.stride == 1 && cin == spec.out;
    let shortcut = if identity {
        None
    } else {
        Some(
            Sequential::new()
                .push(
                    "0",
                    Conv2d::new(
                        Conv2dSpec::new(cin, spec.out, 1, spec.stride, 0),
                        false,
                        rng,
                    )
                    .unquantized(),
                )
                .push("1", BatchNorm2d::new(spec.out)),
        )
    };
    // MobileNet inverted residuals are linear at the block output.
    ResidualBlock::new(main, shortcut, None)
}

/// Builds the mini MobileNet.
pub fn build_mobilenet(config: &MobileNetConfig) -> Network {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stem = Sequential::new()
        .push(
            "0",
            Conv2d::new(
                Conv2dSpec::new(CHANNELS, config.stem, 3, 1, 1),
                false,
                &mut rng,
            ),
        )
        .push("1", BatchNorm2d::new(config.stem))
        .push("act", Activation::new(ActKind::HardSwish));
    if let Some(ab) = config.act_bits {
        stem = stem.push("aq", clado_nn::ActQuant::new(ab));
    }
    let mut features = Sequential::new().push("0", stem);
    let mut cin = config.stem;
    for (i, &row) in config.rows.iter().enumerate() {
        features = features.push((i + 1).to_string(), inverted_residual(cin, row, &mut rng));
        cin = row.out;
    }
    let head_idx = config.rows.len() + 1;
    features = features.push(
        head_idx.to_string(),
        Sequential::new()
            .push(
                "0",
                Conv2d::new(Conv2dSpec::new(cin, config.head, 1, 1, 0), false, &mut rng),
            )
            .push("1", BatchNorm2d::new(config.head))
            .push("act", Activation::new(ActKind::HardSwish)),
    );
    let root = Sequential::new()
        .push("features", features)
        .push("avgpool", GlobalAvgPool::new())
        .push_boxed(
            "classifier",
            Box::new(Linear::new(config.head, config.classes, &mut rng).unquantized()),
        );
    Network::new(root, config.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::Tensor;

    #[test]
    fn layer_inventory_matches_structure() {
        let net = build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 0));
        let names: Vec<&str> = net
            .quantizable_layers()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        // Stem + head are quantizable; classifier and shortcut projections
        // are not.
        assert!(names.contains(&"features.0.0"));
        assert!(names.iter().any(|n| n.contains("block.0.0")));
        assert!(names.iter().any(|n| n.contains("fc1")));
        assert!(!names.contains(&"classifier"));
        // Row layer counts: r1: dw+proj=2, r2: 3, r3: 3+2(SE)=5,
        // r4: 5, r5: 3; plus stem and head = 20.
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn forward_shape_and_downsampling() {
        let mut net = build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 1));
        let y = net.forward(Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn backward_runs() {
        let mut net = build_mobilenet(&MobileNetConfig::mobilenet_mini(4, 2));
        let y = net.forward(Tensor::zeros([2, 3, 16, 16]), true);
        let (_, grad) = clado_nn::cross_entropy(&y, &[0, 3]);
        net.backward(grad);
    }

    #[test]
    fn identity_blocks_have_no_downsample_layers() {
        let net = build_mobilenet(&MobileNetConfig::mobilenet_mini(10, 0));
        // Row 3 (features.3) is stride-1 same-width: no "downsample" in its
        // quantizable names.
        assert!(!net
            .quantizable_layers()
            .iter()
            .any(|l| l.name.starts_with("features.3") && l.name.contains("downsample")));
    }
}
