//! Mini Vision Transformer analogue: patch embedding, pre-norm encoder
//! blocks, token mean pooling, linear classifier.
//!
//! Block parameter names match the paper's ViT listing
//! (`layer.{i}.attention.attention.query` etc., Appendix A). The class
//! token is replaced with mean pooling over tokens (a standard simplification
//! that preserves the quantizable-layer taxonomy).

use clado_nn::{Layer, Linear, Network, PatchEmbed, Sequential, TokenMeanPool, TransformerBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::CHANNELS;

/// Mini ViT configuration.
#[derive(Debug, Clone)]
pub struct ViTConfig {
    /// Input image side length.
    pub img: usize,
    /// Patch side length (must divide `img`).
    pub patch: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden width.
    pub mlp: usize,
    /// Encoder depth.
    pub depth: usize,
    /// Number of classes.
    pub classes: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Quantize activations to this many bits between encoder blocks
    /// (`None` keeps FP32 activations).
    pub act_bits: Option<u8>,
}

impl ViTConfig {
    /// The ViT-base analogue used in the experiments.
    pub fn vit_mini(classes: usize, seed: u64) -> Self {
        Self {
            img: 16,
            patch: 4,
            dim: 24,
            heads: 4,
            mlp: 48,
            depth: 3,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// Returns the config with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u8) -> Self {
        self.act_bits = Some(bits);
        self
    }
}

/// Builds the mini ViT.
pub fn build_vit(config: &ViTConfig) -> Network {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut embed_holder = Sequential::new();
    {
        let mut pe = PatchEmbed::new(CHANNELS, config.img, config.patch, config.dim, &mut rng);
        // The patch projection is excluded from quantization, matching the
        // paper's ViT layer list (attention + MLP layers only).
        pe.visit_params("", &mut |_, p| p.quantizable = false);
        embed_holder = embed_holder.push("embeddings", pe);
    }
    let mut blocks = Sequential::new();
    for i in 0..config.depth {
        blocks = blocks.push(
            i.to_string(),
            TransformerBlock::new(config.dim, config.heads, config.mlp, &mut rng),
        );
        if let Some(ab) = config.act_bits {
            blocks = blocks.push(format!("aq{i}"), clado_nn::ActQuant::new(ab));
        }
    }
    let root = embed_holder
        .push("layer", blocks)
        .push("pooler", TokenMeanPool::new())
        .push_boxed(
            "classifier",
            Box::new(Linear::new(config.dim, config.classes, &mut rng).unquantized()),
        );
    Network::new(root, config.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::Tensor;

    #[test]
    fn layer_inventory_matches_paper_taxonomy() {
        let net = build_vit(&ViTConfig::vit_mini(10, 0));
        let names: Vec<&str> = net
            .quantizable_layers()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        // 6 quantizable layers per block × depth 3.
        assert_eq!(names.len(), 18);
        assert!(names.contains(&"layer.0.attention.attention.query"));
        assert!(names.contains(&"layer.2.output.dense"));
        assert!(!names.iter().any(|n| n.contains("embeddings")));
        assert!(!names.contains(&"classifier"));
    }

    #[test]
    fn forward_and_backward() {
        let mut net = build_vit(&ViTConfig::vit_mini(10, 1));
        let y = net.forward(Tensor::zeros([2, 3, 16, 16]), true);
        assert_eq!(y.shape().dims(), &[2, 10]);
        let (_, grad) = clado_nn::cross_entropy(&y, &[0, 9]);
        net.backward(grad);
    }

    #[test]
    fn blocks_are_grouped_per_encoder_layer() {
        let net = build_vit(&ViTConfig::vit_mini(10, 0));
        let layers = net.quantizable_layers();
        // All six layers of encoder block 0 share a block id.
        let b0 = layers[0].block;
        assert!(layers.iter().take(6).all(|l| l.block == b0));
        assert!(layers[6].block != b0);
    }
}
