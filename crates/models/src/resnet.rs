//! Mini ResNet family: basic-block (ResNet-20/34 analogues) and
//! bottleneck (ResNet-50 analogue) variants.
//!
//! Layer names follow the paper's Appendix A convention
//! (`layer{s}.{b}.conv{k}`, `layer{s}.{b}.downsample.0`), so sensitivity
//! matrices and bit maps are directly comparable in structure. Following
//! the paper's layer lists, the stem convolution is excluded from
//! quantization for the ResNet-34/50 analogues; the ResNet-20 analogue
//! additionally quantizes its classifier (`fc`), matching Table 2.

use clado_nn::{
    ActKind, Activation, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Network, ResidualBlock,
    Sequential,
};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::CHANNELS;

/// Stage widths and block counts of a mini ResNet.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Channel width of each stage.
    pub widths: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks: Vec<usize>,
    /// Bottleneck blocks (3 convs + expansion) instead of basic (2 convs).
    pub bottleneck: bool,
    /// Bottleneck expansion factor (ignored for basic blocks).
    pub expansion: usize,
    /// Whether the classifier weight is quantizable (true for the
    /// ResNet-20 analogue, matching the paper's Table 2 layer list).
    pub quantize_fc: bool,
    /// Number of output classes.
    pub classes: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Quantize activations to this many bits at stage boundaries (the
    /// paper's setup quantizes activations to 8 bits). `None` keeps FP32
    /// activations.
    pub act_bits: Option<u8>,
}

impl ResNetConfig {
    /// The ResNet-34 analogue: basic blocks, four stages.
    pub fn resnet34_mini(classes: usize, seed: u64) -> Self {
        Self {
            widths: vec![6, 8, 12, 16],
            blocks: vec![2, 2, 2, 2],
            bottleneck: false,
            expansion: 1,
            quantize_fc: false,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// The ResNet-50 analogue: bottleneck blocks, four stages.
    pub fn resnet50_mini(classes: usize, seed: u64) -> Self {
        Self {
            widths: vec![6, 8, 12, 16],
            blocks: vec![1, 2, 2, 1],
            bottleneck: true,
            expansion: 2,
            quantize_fc: false,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// The ResNet-20 analogue (Table 2): basic blocks, three stages,
    /// quantizable classifier.
    pub fn resnet20_mini(classes: usize, seed: u64) -> Self {
        Self {
            widths: vec![4, 8, 12],
            blocks: vec![2, 2, 2],
            bottleneck: false,
            expansion: 1,
            quantize_fc: true,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// Returns the config with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u8) -> Self {
        self.act_bits = Some(bits);
        self
    }
}

fn basic_block(cin: usize, cout: usize, stride: usize, rng: &mut StdRng) -> ResidualBlock {
    let main = Sequential::new()
        .push(
            "conv1",
            Conv2d::new(Conv2dSpec::new(cin, cout, 3, stride, 1), false, rng),
        )
        .push("bn1", BatchNorm2d::new(cout))
        .push("relu1", Activation::new(ActKind::Relu))
        .push(
            "conv2",
            Conv2d::new(Conv2dSpec::new(cout, cout, 3, 1, 1), false, rng),
        )
        .push("bn2", BatchNorm2d::new(cout));
    let shortcut = (stride != 1 || cin != cout).then(|| {
        Sequential::new()
            .push(
                "0",
                Conv2d::new(Conv2dSpec::new(cin, cout, 1, stride, 0), false, rng),
            )
            .push("1", BatchNorm2d::new(cout))
    });
    ResidualBlock::new(main, shortcut, Some(ActKind::Relu))
}

fn bottleneck_block(
    cin: usize,
    width: usize,
    expansion: usize,
    stride: usize,
    rng: &mut StdRng,
) -> ResidualBlock {
    let cout = width * expansion;
    let main = Sequential::new()
        .push(
            "conv1",
            Conv2d::new(Conv2dSpec::new(cin, width, 1, 1, 0), false, rng),
        )
        .push("bn1", BatchNorm2d::new(width))
        .push("relu1", Activation::new(ActKind::Relu))
        .push(
            "conv2",
            Conv2d::new(Conv2dSpec::new(width, width, 3, stride, 1), false, rng),
        )
        .push("bn2", BatchNorm2d::new(width))
        .push("relu2", Activation::new(ActKind::Relu))
        .push(
            "conv3",
            Conv2d::new(Conv2dSpec::new(width, cout, 1, 1, 0), false, rng),
        )
        .push("bn3", BatchNorm2d::new(cout));
    let shortcut = (stride != 1 || cin != cout).then(|| {
        Sequential::new()
            .push(
                "0",
                Conv2d::new(Conv2dSpec::new(cin, cout, 1, stride, 0), false, rng),
            )
            .push("1", BatchNorm2d::new(cout))
    });
    ResidualBlock::new(main, shortcut, Some(ActKind::Relu))
}

/// Builds a mini ResNet for `img`-sized inputs.
///
/// # Panics
///
/// Panics if `widths` and `blocks` lengths disagree or are empty.
pub fn build_resnet(config: &ResNetConfig) -> Network {
    assert_eq!(
        config.widths.len(),
        config.blocks.len(),
        "stage configuration mismatch"
    );
    assert!(!config.widths.is_empty(), "at least one stage required");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stem_width = config.widths[0];
    let mut root = Sequential::new().push_boxed(
        "conv1",
        Box::new(
            Conv2d::new(
                Conv2dSpec::new(CHANNELS, stem_width, 3, 1, 1),
                false,
                &mut rng,
            )
            .unquantized(),
        ),
    );
    root = root
        .push("bn1", BatchNorm2d::new(stem_width))
        .push("relu", Activation::new(ActKind::Relu));
    if let Some(ab) = config.act_bits {
        root = root.push("aq_stem", clado_nn::ActQuant::new(ab));
    }

    let mut cin = stem_width;
    for (s, (&w, &n_blocks)) in config.widths.iter().zip(&config.blocks).enumerate() {
        let mut stage = Sequential::new();
        for b in 0..n_blocks {
            let stride = if b == 0 && s > 0 { 2 } else { 1 };
            let block: ResidualBlock = if config.bottleneck {
                let blk = bottleneck_block(cin, w, config.expansion, stride, &mut rng);
                cin = w * config.expansion;
                blk
            } else {
                let blk = basic_block(cin, w, stride, &mut rng);
                cin = w;
                blk
            };
            stage = stage.push(b.to_string(), block);
        }
        root = root.push(format!("layer{}", s + 1), stage);
        if let Some(ab) = config.act_bits {
            root = root.push(format!("aq{}", s + 1), clado_nn::ActQuant::new(ab));
        }
    }
    root = root.push("avgpool", GlobalAvgPool::new());
    let fc = Linear::new(cin, config.classes, &mut rng);
    let fc = if config.quantize_fc {
        fc
    } else {
        fc.unquantized()
    };
    root = root.push("fc", fc);
    Network::new(root, config.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::Tensor;

    #[test]
    fn resnet34_mini_layer_inventory() {
        let net = build_resnet(&ResNetConfig::resnet34_mini(10, 0));
        let names: Vec<&str> = net
            .quantizable_layers()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        // 8 basic blocks × 2 convs + 3 downsamples = 19; stem and fc excluded.
        assert_eq!(names.len(), 19);
        assert!(names.contains(&"layer1.0.conv1"));
        assert!(names.contains(&"layer2.0.downsample.0"));
        assert!(!names.contains(&"conv1"));
        assert!(!names.contains(&"fc"));
    }

    #[test]
    fn resnet50_mini_layer_inventory() {
        let net = build_resnet(&ResNetConfig::resnet50_mini(10, 0));
        let n = net.quantizable_layers().len();
        // 6 bottlenecks × 3 convs + 4 downsamples (every stage starts with a
        // channel change) = 22.
        assert_eq!(n, 22);
    }

    #[test]
    fn resnet20_mini_includes_fc() {
        let net = build_resnet(&ResNetConfig::resnet20_mini(10, 0));
        let names: Vec<&str> = net
            .quantizable_layers()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert!(names.contains(&"fc"));
        // 6 basic blocks × 2 + 2 downsamples + fc = 15.
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn forward_shapes() {
        for cfg in [
            ResNetConfig::resnet34_mini(10, 1),
            ResNetConfig::resnet50_mini(10, 1),
            ResNetConfig::resnet20_mini(10, 1),
        ] {
            let mut net = build_resnet(&cfg);
            let y = net.forward(Tensor::zeros([2, 3, 16, 16]), false);
            assert_eq!(y.shape().dims(), &[2, 10]);
        }
    }

    #[test]
    fn training_forward_backward_roundtrip() {
        let mut net = build_resnet(&ResNetConfig::resnet20_mini(4, 2));
        let x = Tensor::zeros([2, 3, 16, 16]);
        let y = net.forward(x, true);
        let (_, grad) = clado_nn::cross_entropy(&y, &[0, 1]);
        net.backward(grad);
        // Gradients reach the first quantizable conv.
        let mut any_nonzero = false;
        net.visit_params(&mut |name, p| {
            if name == "layer1.0.conv1.weight" {
                any_nonzero = p.grad.norm() >= 0.0;
            }
        });
        assert!(any_nonzero);
    }

    #[test]
    fn blocks_group_layers() {
        let net = build_resnet(&ResNetConfig::resnet34_mini(10, 0));
        let layers = net.quantizable_layers();
        let b0: Vec<_> = layers
            .iter()
            .filter(|l| l.block == layers[0].block)
            .collect();
        // layer1.0.conv1 and layer1.0.conv2 share a block.
        assert_eq!(b0.len(), 2);
    }
}
