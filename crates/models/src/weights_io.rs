//! Minimal binary weight serialization.
//!
//! A tiny self-contained little-endian codec (magic + named f32 tensors);
//! used to cache trained models under `target/clado-cache/` so experiments
//! don't retrain across processes. No serde format crate is in this
//! workspace's sanctioned dependency set, hence the hand-rolled format.

use clado_nn::Network;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CLDW";
const VERSION: u32 = 1;

/// Errors produced by weight (de)serialization.
#[derive(Debug)]
pub enum WeightsIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a CLDW weight file or has an unsupported version.
    BadFormat(String),
    /// The file's parameters do not match the network (name or length).
    Mismatch(String),
}

impl fmt::Display for WeightsIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadFormat(m) => write!(f, "bad weight file: {m}"),
            Self::Mismatch(m) => write!(f, "weight/network mismatch: {m}"),
        }
    }
}

impl std::error::Error for WeightsIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WeightsIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serializes every parameter (including buffers) of `network` to `path`.
///
/// # Errors
///
/// Returns [`WeightsIoError::Io`] on filesystem failures.
pub fn save_weights(network: &mut Network, path: &Path) -> Result<(), WeightsIoError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut entries: Vec<(String, Vec<f32>)> = Vec::new();
    network.visit_params(&mut |name, p| {
        entries.push((name.to_string(), p.value.data().to_vec()));
    });
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, data) in &entries {
        let nb = name.as_bytes();
        buf.extend_from_slice(&(nb.len() as u32).to_le_bytes());
        buf.extend_from_slice(nb);
        buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        for v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)?.write_all(&buf)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads parameters saved by [`save_weights`] into `network`.
///
/// # Errors
///
/// Returns an error if the file is malformed or its parameter names/sizes
/// disagree with the network's (visit order is deterministic, so names are
/// compared positionally).
pub fn load_weights(network: &mut Network, path: &Path) -> Result<(), WeightsIoError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut cur = 0usize;
    let take = |cur: &mut usize, n: usize| -> Result<&[u8], WeightsIoError> {
        if *cur + n > bytes.len() {
            return Err(WeightsIoError::BadFormat("truncated file".into()));
        }
        let s = &bytes[*cur..*cur + n];
        *cur += n;
        Ok(s)
    };
    if take(&mut cur, 4)? != MAGIC {
        return Err(WeightsIoError::BadFormat("missing CLDW magic".into()));
    }
    let version = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(WeightsIoError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let count = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes")) as usize;
    let mut entries: Vec<(String, Vec<f32>)> = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes")) as usize;
        let name = String::from_utf8(take(&mut cur, name_len)?.to_vec())
            .map_err(|_| WeightsIoError::BadFormat("non-utf8 parameter name".into()))?;
        let len = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes")) as usize;
        let raw = take(&mut cur, len * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        entries.push((name, data));
    }
    let mut idx = 0usize;
    let mut err: Option<WeightsIoError> = None;
    network.visit_params(&mut |name, p| {
        if err.is_some() {
            return;
        }
        let Some((fname, data)) = entries.get(idx) else {
            err = Some(WeightsIoError::Mismatch(format!(
                "file has too few entries at {name}"
            )));
            return;
        };
        if fname != name {
            err = Some(WeightsIoError::Mismatch(format!(
                "expected {name}, file has {fname}"
            )));
            return;
        }
        if data.len() != p.value.numel() {
            err = Some(WeightsIoError::Mismatch(format!(
                "{name}: {} values in file, {} in network",
                data.len(),
                p.value.numel()
            )));
            return;
        }
        p.value.data_mut().copy_from_slice(data);
        idx += 1;
    });
    if let Some(e) = err {
        return Err(e);
    }
    if idx != entries.len() {
        return Err(WeightsIoError::Mismatch(format!(
            "file has {} extra entries",
            entries.len() - idx
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{build_resnet, ResNetConfig};
    use clado_tensor::Tensor;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clado-test-{}-{name}.cldw", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let cfg = ResNetConfig::resnet20_mini(4, 9);
        let mut a = build_resnet(&cfg);
        // Perturb a weight and a BN buffer so defaults don't mask bugs.
        let w = a.weight(0).map(|v| v + 0.25);
        a.set_weight(0, &w);
        let path = temp_path("roundtrip");
        save_weights(&mut a, &path).unwrap();

        let mut b = build_resnet(&ResNetConfig::resnet20_mini(4, 1234)); // different init
        load_weights(&mut b, &path).unwrap();
        let x = Tensor::full([1, 3, 16, 16], 0.3);
        let ya = a.forward(x.clone(), false);
        let yb = b.forward(x, false);
        assert_eq!(ya.data(), yb.data());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let mut a = build_resnet(&ResNetConfig::resnet20_mini(4, 0));
        let path = temp_path("mismatch");
        save_weights(&mut a, &path).unwrap();
        let mut c = build_resnet(&ResNetConfig::resnet34_mini(4, 0));
        let err = load_weights(&mut c, &path).unwrap_err();
        assert!(matches!(err, WeightsIoError::Mismatch(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a weight file").unwrap();
        let mut net = build_resnet(&ResNetConfig::resnet20_mini(4, 0));
        let err = load_weights(&mut net, &path).unwrap_err();
        assert!(matches!(err, WeightsIoError::BadFormat(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut net = build_resnet(&ResNetConfig::resnet20_mini(4, 0));
        let err = load_weights(&mut net, Path::new("/nonexistent/clado.cldw")).unwrap_err();
        assert!(matches!(err, WeightsIoError::Io(_)));
    }
}
