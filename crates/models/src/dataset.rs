//! `SynthVision`: a seeded, procedurally generated image-classification
//! dataset.
//!
//! This stands in for ImageNet (see DESIGN.md §2). Each class is defined by
//! a smooth multi-sinusoid template; samples are cyclically shifted, gain-
//! jittered, noisy renderings of their class template. The task is easy
//! enough for tiny CNNs/ViTs to learn to high accuracy yet rich enough that
//! low-bit quantization causes the graded accuracy loss the paper studies.

use clado_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`SynthVision`] dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthVisionConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image side length (images are `3 × img × img`).
    pub img: usize,
    /// Training-set size.
    pub train: usize,
    /// Validation-set size.
    pub val: usize,
    /// Master seed; fixes templates and both splits.
    pub seed: u64,
    /// Additive noise standard deviation.
    pub noise: f32,
    /// Fraction of training/validation labels replaced by a uniformly
    /// random class. Keeps converged models off the zero-loss plateau so
    /// the second-order Taylor machinery operates in a realistic regime
    /// (mirrors ImageNet's irreducible error).
    pub label_noise: f32,
}

impl Default for SynthVisionConfig {
    fn default() -> Self {
        Self {
            classes: 10,
            img: 16,
            train: 1536,
            val: 512,
            seed: 0xC1AD0,
            noise: 0.45,
            label_noise: 0.08,
        }
    }
}

/// Number of image channels (RGB-like).
pub const CHANNELS: usize = 3;
/// Sinusoids per channel in each class template.
const WAVES: usize = 3;
/// Maximum cyclic shift applied to a sample, in pixels.
const MAX_SHIFT: i32 = 1;

/// A labelled split of images stored contiguously in NCHW order.
#[derive(Debug, Clone)]
pub struct DataSplit {
    images: Vec<f32>,
    labels: Vec<usize>,
    img: usize,
}

impl DataSplit {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image side length.
    pub fn img(&self) -> usize {
        self.img
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns samples `[start, start+len)` as a batch tensor plus labels.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor, Vec<usize>) {
        assert!(start + len <= self.len(), "batch range out of bounds");
        let stride = CHANNELS * self.img * self.img;
        let images = self.images[start * stride..(start + len) * stride].to_vec();
        let t = Tensor::from_vec([len, CHANNELS, self.img, self.img], images)
            .expect("stride arithmetic");
        (t, self.labels[start..start + len].to_vec())
    }

    /// The whole split as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        self.batch(0, self.len())
    }

    /// A new split containing the given sample indices (sensitivity sets).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> DataSplit {
        let stride = CHANNELS * self.img * self.img;
        let mut images = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "subset index {i} out of bounds");
            images.extend_from_slice(&self.images[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        DataSplit {
            images,
            labels,
            img: self.img,
        }
    }

    /// A random subset of `size` samples drawn without replacement — the
    /// paper's *sensitivity set* construction.
    ///
    /// # Panics
    ///
    /// Panics if `size > self.len()`.
    pub fn sample_subset(&self, size: usize, seed: u64) -> DataSplit {
        assert!(
            size <= self.len(),
            "subset size {size} exceeds split size {}",
            self.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher-Yates.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..size {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        self.subset(&idx[..size])
    }

    /// Iterates over `(batch, labels)` chunks of at most `batch_size`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let n = self.len();
        (0..n.div_ceil(batch_size)).map(move |b| {
            let start = b * batch_size;
            let len = batch_size.min(n - start);
            self.batch(start, len)
        })
    }
}

/// The full dataset: train and validation splits plus the class templates.
#[derive(Debug, Clone)]
pub struct SynthVision {
    /// Training split.
    pub train: DataSplit,
    /// Validation split.
    pub val: DataSplit,
    config: SynthVisionConfig,
}

impl SynthVision {
    /// Generates the dataset deterministically from `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `classes` or `img` is zero.
    pub fn generate(config: SynthVisionConfig) -> Self {
        assert!(
            config.classes > 0 && config.img > 0,
            "degenerate dataset config"
        );
        let templates = class_templates(&config);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let train = render_split(&templates, &config, config.train, &mut rng);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let val = render_split(&templates, &config, config.val, &mut rng);
        Self { train, val, config }
    }

    /// The generating configuration.
    pub fn config(&self) -> &SynthVisionConfig {
        &self.config
    }
}

/// One smooth template per class: a sum of `WAVES` sinusoids per channel.
fn class_templates(config: &SynthVisionConfig) -> Vec<Vec<f32>> {
    let s = config.img;
    (0..config.classes)
        .map(|k| {
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (0x9E3779B9u64.wrapping_mul(k as u64 + 1)));
            let mut t = vec![0.0f32; CHANNELS * s * s];
            for c in 0..CHANNELS {
                for _ in 0..WAVES {
                    let fx: f32 = rng.gen_range(0.5..1.5);
                    let fy: f32 = rng.gen_range(0.5..1.5);
                    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                    let amp: f32 = rng.gen_range(0.3..0.7);
                    for y in 0..s {
                        for x in 0..s {
                            let arg = std::f32::consts::TAU * (fx * x as f32 + fy * y as f32)
                                / s as f32
                                + phase;
                            t[(c * s + y) * s + x] += amp * arg.sin();
                        }
                    }
                }
            }
            t
        })
        .collect()
}

fn render_split(
    templates: &[Vec<f32>],
    config: &SynthVisionConfig,
    count: usize,
    rng: &mut StdRng,
) -> DataSplit {
    let s = config.img;
    let stride = CHANNELS * s * s;
    let mut images = Vec::with_capacity(count * stride);
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        let k = rng.gen_range(0..config.classes);
        let dx = rng.gen_range(-MAX_SHIFT..=MAX_SHIFT);
        let dy = rng.gen_range(-MAX_SHIFT..=MAX_SHIFT);
        let gain: f32 = rng.gen_range(0.8..1.2);
        let t = &templates[k];
        for c in 0..CHANNELS {
            for y in 0..s {
                for x in 0..s {
                    let sy = (y as i32 + dy).rem_euclid(s as i32) as usize;
                    let sx = (x as i32 + dx).rem_euclid(s as i32) as usize;
                    let noise: f32 = {
                        // Box–Muller on two uniforms.
                        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
                    };
                    images.push(gain * t[(c * s + sy) * s + sx] + config.noise * noise);
                }
            }
        }
        // Label noise: replace with a uniformly random class.
        if config.label_noise > 0.0 && rng.gen_range(0.0..1.0f32) < config.label_noise {
            labels.push(rng.gen_range(0..config.classes));
        } else {
            labels.push(k);
        }
    }
    DataSplit {
        images,
        labels,
        img: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SynthVisionConfig {
        SynthVisionConfig {
            classes: 4,
            img: 16,
            train: 64,
            val: 32,
            seed: 7,
            noise: 0.2,
            label_noise: 0.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthVision::generate(tiny_config());
        let b = SynthVision::generate(tiny_config());
        assert_eq!(a.train.labels(), b.train.labels());
        let (ia, _) = a.train.batch(0, 4);
        let (ib, _) = b.train.batch(0, 4);
        assert_eq!(ia.data(), ib.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthVision::generate(tiny_config());
        let b = SynthVision::generate(SynthVisionConfig {
            seed: 8,
            ..tiny_config()
        });
        let (ia, _) = a.train.batch(0, 4);
        let (ib, _) = b.train.batch(0, 4);
        assert_ne!(ia.data(), ib.data());
    }

    #[test]
    fn splits_have_requested_sizes_and_valid_labels() {
        let d = SynthVision::generate(tiny_config());
        assert_eq!(d.train.len(), 64);
        assert_eq!(d.val.len(), 32);
        assert!(d.train.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn batch_shapes() {
        let d = SynthVision::generate(tiny_config());
        let (t, l) = d.train.batch(0, 8);
        assert_eq!(t.shape().dims(), &[8, 3, 16, 16]);
        assert_eq!(l.len(), 8);
        let (full, _) = d.val.full_batch();
        assert_eq!(full.shape().dims(), &[32, 3, 16, 16]);
    }

    #[test]
    fn subset_and_sample_subset() {
        let d = SynthVision::generate(tiny_config());
        let sub = d.train.subset(&[0, 5, 9]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels()[1], d.train.labels()[5]);
        let s1 = d.train.sample_subset(16, 42);
        let s2 = d.train.sample_subset(16, 42);
        assert_eq!(s1.labels(), s2.labels());
        let s3 = d.train.sample_subset(16, 43);
        assert_ne!(s1.labels(), s3.labels()); // overwhelmingly likely
    }

    #[test]
    fn batches_cover_everything() {
        let d = SynthVision::generate(tiny_config());
        let mut total = 0;
        for (t, l) in d.train.batches(10) {
            assert_eq!(t.shape().dim(0), l.len());
            total += l.len();
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn classes_are_separable_by_template_distance() {
        // A nearest-template classifier should beat chance by a wide margin,
        // confirming the labels carry signal.
        let cfg = tiny_config();
        let d = SynthVision::generate(cfg);
        let templates = class_templates(&cfg);
        let (images, labels) = d.val.full_batch();
        let stride = CHANNELS * cfg.img * cfg.img;
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            let img = &images.data()[i * stride..(i + 1) * stride];
            let best = (0..cfg.classes)
                .min_by(|&a, &b| {
                    let da: f32 = img
                        .iter()
                        .zip(&templates[a])
                        .map(|(x, t)| (x - t).powi(2))
                        .sum();
                    let db: f32 = img
                        .iter()
                        .zip(&templates[b])
                        .map(|(x, t)| (x - t).powi(2))
                        .sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("classes > 0");
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / labels.len() as f64;
        assert!(acc > 0.5, "nearest-template accuracy only {acc}");
    }
}
