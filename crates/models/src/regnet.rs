//! Mini RegNet analogue: stages of grouped-bottleneck residual blocks
//! (the RegNet-X design space with a fixed group width).

use clado_nn::{
    ActKind, Activation, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Network, ResidualBlock,
    Sequential,
};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::CHANNELS;

/// Mini RegNet configuration.
#[derive(Debug, Clone)]
pub struct RegNetConfig {
    /// Stage widths (must be multiples of `group_width`).
    pub widths: Vec<usize>,
    /// Blocks per stage.
    pub blocks: Vec<usize>,
    /// Channels per group in the 3×3 convs.
    pub group_width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Quantize activations to this many bits at stage boundaries
    /// (`None` keeps FP32 activations).
    pub act_bits: Option<u8>,
}

impl RegNetConfig {
    /// The RegNet-3.2GF analogue used in the experiments.
    pub fn regnet_mini(classes: usize, seed: u64) -> Self {
        Self {
            widths: vec![8, 16, 24],
            blocks: vec![2, 2, 2],
            group_width: 4,
            classes,
            seed,
            act_bits: None,
        }
    }

    /// Returns the config with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u8) -> Self {
        self.act_bits = Some(bits);
        self
    }
}

fn x_block(
    cin: usize,
    width: usize,
    group_width: usize,
    stride: usize,
    rng: &mut StdRng,
) -> ResidualBlock {
    let groups = width / group_width;
    let main = Sequential::new()
        .push(
            "conv1",
            Conv2d::new(Conv2dSpec::new(cin, width, 1, 1, 0), false, rng),
        )
        .push("bn1", BatchNorm2d::new(width))
        .push("relu1", Activation::new(ActKind::Relu))
        .push(
            "conv2",
            Conv2d::new(
                Conv2dSpec::new(width, width, 3, stride, 1).with_groups(groups),
                false,
                rng,
            ),
        )
        .push("bn2", BatchNorm2d::new(width))
        .push("relu2", Activation::new(ActKind::Relu))
        .push(
            "conv3",
            Conv2d::new(Conv2dSpec::new(width, width, 1, 1, 0), false, rng),
        )
        .push("bn3", BatchNorm2d::new(width));
    let shortcut = (stride != 1 || cin != width).then(|| {
        Sequential::new()
            .push(
                "0",
                Conv2d::new(Conv2dSpec::new(cin, width, 1, stride, 0), false, rng),
            )
            .push("1", BatchNorm2d::new(width))
    });
    ResidualBlock::new(main, shortcut, Some(ActKind::Relu))
}

/// Builds the mini RegNet.
///
/// # Panics
///
/// Panics if a stage width is not a multiple of `group_width`.
pub fn build_regnet(config: &RegNetConfig) -> Network {
    assert_eq!(
        config.widths.len(),
        config.blocks.len(),
        "stage configuration mismatch"
    );
    for &w in &config.widths {
        assert_eq!(
            w % config.group_width,
            0,
            "width {w} not a multiple of group width"
        );
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stem = config.widths[0];
    let mut root = Sequential::new()
        .push_boxed(
            "stem",
            Box::new(
                Conv2d::new(Conv2dSpec::new(CHANNELS, stem, 3, 1, 1), false, &mut rng)
                    .unquantized(),
            ),
        )
        .push("stem_bn", BatchNorm2d::new(stem))
        .push("stem_relu", Activation::new(ActKind::Relu));
    let mut cin = stem;
    for (s, (&w, &n)) in config.widths.iter().zip(&config.blocks).enumerate() {
        let mut stage = Sequential::new();
        for b in 0..n {
            let stride = if b == 0 && s > 0 { 2 } else { 1 };
            stage = stage.push(
                b.to_string(),
                x_block(cin, w, config.group_width, stride, &mut rng),
            );
            cin = w;
        }
        root = root.push(format!("layer{}", s + 1), stage);
        if let Some(ab) = config.act_bits {
            root = root.push(format!("aq{}", s + 1), clado_nn::ActQuant::new(ab));
        }
    }
    root = root.push("avgpool", GlobalAvgPool::new()).push_boxed(
        "fc",
        Box::new(Linear::new(cin, config.classes, &mut rng).unquantized()),
    );
    Network::new(root, config.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::Tensor;

    #[test]
    fn layer_inventory() {
        let net = build_regnet(&RegNetConfig::regnet_mini(10, 0));
        // 6 blocks × 3 convs + 2 downsamples (stages 2 and 3) = 20.
        assert_eq!(net.quantizable_layers().len(), 20);
    }

    #[test]
    fn forward_and_backward() {
        let mut net = build_regnet(&RegNetConfig::regnet_mini(10, 1));
        let y = net.forward(Tensor::zeros([2, 3, 16, 16]), true);
        assert_eq!(y.shape().dims(), &[2, 10]);
        let (_, grad) = clado_nn::cross_entropy(&y, &[1, 2]);
        net.backward(grad);
    }

    #[test]
    #[should_panic(expected = "group width")]
    fn invalid_group_width_panics() {
        build_regnet(&RegNetConfig {
            widths: vec![6],
            blocks: vec![1],
            group_width: 4,
            classes: 2,
            seed: 0,
            act_bits: None,
        });
    }
}
