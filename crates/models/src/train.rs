//! Deterministic training loop used to produce the "pretrained" models.

use crate::dataset::DataSplit;
use clado_nn::{cross_entropy, top1_accuracy, Network, Sgd};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (decayed by 10× at 60% and 85% of training).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 14,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainReport {
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
    /// Validation top-1 accuracy after training.
    pub val_accuracy: f64,
}

/// Trains `network` on `train` and evaluates on `val`.
///
/// Deterministic: batches are visited in a fixed rotation (no shuffling
/// RNG; the dataset is already generated in random order).
pub fn train(
    network: &mut Network,
    train: &DataSplit,
    val: &DataSplit,
    config: &TrainConfig,
) -> TrainReport {
    let mut sgd = Sgd::new(config.lr, config.momentum, config.weight_decay);
    let mut final_loss = f64::NAN;
    for epoch in 0..config.epochs {
        // Step-decay schedule.
        let progress = epoch as f32 / config.epochs.max(1) as f32;
        sgd.lr = if progress < 0.6 {
            config.lr
        } else if progress < 0.85 {
            config.lr * 0.1
        } else {
            config.lr * 0.01
        };
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (x, labels) in train.batches(config.batch_size) {
            let logits = network.forward(x, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            network.backward(grad);
            sgd.step(network);
            loss_sum += loss;
            batches += 1;
        }
        final_loss = loss_sum / batches.max(1) as f64;
    }
    TrainReport {
        final_loss,
        val_accuracy: evaluate(network, val),
    }
}

/// Top-1 accuracy of `network` on a split (evaluation mode), in `[0, 1]`.
pub fn evaluate(network: &mut Network, split: &DataSplit) -> f64 {
    evaluate_batched(network, split, 64)
}

/// Top-1 accuracy with an explicit evaluation batch size.
pub fn evaluate_batched(network: &mut Network, split: &DataSplit, batch_size: usize) -> f64 {
    let mut correct_weighted = 0.0f64;
    for (x, labels) in split.batches(batch_size) {
        let n = labels.len() as f64;
        let logits = network.forward(x, false);
        correct_weighted += top1_accuracy(&logits, &labels) * n;
    }
    correct_weighted / split.len() as f64
}

/// Mean cross-entropy loss of `network` on a split (evaluation mode).
///
/// This is the `L(·)` that Algorithm 1 measures on the sensitivity set.
pub fn mean_loss(network: &mut Network, split: &DataSplit, batch_size: usize) -> f64 {
    let mut loss_weighted = 0.0f64;
    for (x, labels) in split.batches(batch_size) {
        let n = labels.len() as f64;
        let logits = network.forward(x, false);
        loss_weighted += clado_nn::cross_entropy_loss(&logits, &labels) * n;
    }
    loss_weighted / split.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(classes: usize) -> Network {
        let mut rng = StdRng::seed_from_u64(5);
        Network::new(
            Sequential::new()
                .push(
                    "conv",
                    Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(8, classes, &mut rng)),
            classes,
        )
    }

    #[test]
    fn training_improves_over_chance() {
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 256,
            val: 128,
            seed: 11,
            noise: 0.15,
            label_noise: 0.0,
        });
        let mut net = tiny_net(4);
        let before = evaluate(&mut net, &data.val);
        let report = train(
            &mut net,
            &data.train,
            &data.val,
            &TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
        );
        assert!(
            report.val_accuracy > before.max(0.4),
            "val acc {} (before {before})",
            report.val_accuracy
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn mean_loss_matches_manual_computation() {
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 3,
            img: 8,
            train: 16,
            val: 16,
            seed: 3,
            noise: 0.2,
            label_noise: 0.0,
        });
        let mut net = tiny_net(3);
        let l_batched = mean_loss(&mut net, &data.val, 4);
        let (x, labels) = data.val.full_batch();
        let logits = net.forward(x, false);
        let l_full = clado_nn::cross_entropy_loss(&logits, &labels);
        assert!((l_batched - l_full).abs() < 1e-9, "{l_batched} vs {l_full}");
    }
}
