//! # clado-models
//!
//! The model-and-data substrate of the CLADO reproduction: the seeded
//! `SynthVision` dataset (the ImageNet stand-in), a mini model zoo mirroring
//! the paper's five evaluation families (ResNet-34/50, MobileNetV3,
//! RegNet, ViT) plus the ResNet-20 of Table 2, a deterministic SGD trainer,
//! and an on-disk weight cache so "pretrained" models are trained once per
//! machine.
//!
//! ## Example
//!
//! ```no_run
//! use clado_models::{pretrained, ModelKind};
//!
//! let mut p = pretrained(ModelKind::ResNet20);
//! println!("FP32 val accuracy: {:.2}%", p.val_accuracy * 100.0);
//! println!("quantizable layers: {}", p.network.quantizable_layers().len());
//! ```

#![warn(missing_docs)]

mod dataset;
mod mobilenet;
mod pretrained;
mod regnet;
mod resnet;
mod train;
mod vit;
mod weights_io;

pub use dataset::{DataSplit, SynthVision, SynthVisionConfig, CHANNELS};
pub use mobilenet::{build_mobilenet, InvertedResidualSpec, MobileNetConfig};
pub use pretrained::{cache_dir, pretrained, pretrained_with, ModelKind, Pretrained};
pub use regnet::{build_regnet, RegNetConfig};
pub use resnet::{build_resnet, ResNetConfig};
pub use train::{evaluate, evaluate_batched, mean_loss, train, TrainConfig, TrainReport};
pub use vit::{build_vit, ViTConfig};
pub use weights_io::{load_weights, save_weights, WeightsIoError};
