//! Deterministic "pretrained" models with an on-disk weight cache.
//!
//! `pretrained(kind)` builds the model, trains it to convergence on the
//! standard [`SynthVision`] dataset (or loads cached weights from
//! `target/clado-cache/`), and returns it together with the dataset — the
//! analogue of downloading a TorchVision checkpoint plus ImageNet.

use crate::dataset::{SynthVision, SynthVisionConfig};
use crate::mobilenet::{build_mobilenet, MobileNetConfig};
use crate::regnet::{build_regnet, RegNetConfig};
use crate::resnet::{build_resnet, ResNetConfig};
use crate::train::{evaluate, train, TrainConfig};
use crate::vit::{build_vit, ViTConfig};
use crate::weights_io::{load_weights, save_weights};
use clado_nn::Network;
use std::fmt;
use std::path::PathBuf;

/// The mini model zoo, one entry per model family in the paper's Table 1
/// plus the ResNet-20 analogue of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ResNet-20 analogue (Table 2).
    ResNet20,
    /// ResNet-34 analogue (basic blocks).
    ResNet34,
    /// ResNet-50 analogue (bottleneck blocks).
    ResNet50,
    /// MobileNetV3-Large analogue (depthwise + squeeze-excite).
    MobileNet,
    /// RegNet-3.2GF analogue (grouped bottlenecks).
    RegNet,
    /// ViT-base analogue (transformer encoder).
    ViT,
}

impl ModelKind {
    /// All Table 1 models (excludes the Table-2-only ResNet-20).
    pub fn table1_models() -> [ModelKind; 5] {
        [
            Self::ResNet34,
            Self::ResNet50,
            Self::MobileNet,
            Self::RegNet,
            Self::ViT,
        ]
    }

    /// Stable identifier used in cache filenames and reports.
    pub fn id(self) -> &'static str {
        match self {
            Self::ResNet20 => "resnet20",
            Self::ResNet34 => "resnet34",
            Self::ResNet50 => "resnet50",
            Self::MobileNet => "mobilenetv3",
            Self::RegNet => "regnet",
            Self::ViT => "vit",
        }
    }

    /// Human-readable name echoing the paper's Table 1 headers.
    pub fn display_name(self) -> &'static str {
        match self {
            Self::ResNet20 => "ResNet-20 (mini)",
            Self::ResNet34 => "ResNet-34 (mini)",
            Self::ResNet50 => "ResNet-50 (mini)",
            Self::MobileNet => "MobileNetV3-Large (mini)",
            Self::RegNet => "RegNet-3.2GF (mini)",
            Self::ViT => "ViT-base (mini)",
        }
    }

    /// Builds the untrained network.
    pub fn build(self, classes: usize, seed: u64) -> Network {
        match self {
            Self::ResNet20 => build_resnet(&ResNetConfig::resnet20_mini(classes, seed)),
            Self::ResNet34 => build_resnet(&ResNetConfig::resnet34_mini(classes, seed)),
            Self::ResNet50 => build_resnet(&ResNetConfig::resnet50_mini(classes, seed)),
            Self::MobileNet => build_mobilenet(&MobileNetConfig::mobilenet_mini(classes, seed)),
            Self::RegNet => build_regnet(&RegNetConfig::regnet_mini(classes, seed)),
            Self::ViT => build_vit(&ViTConfig::vit_mini(classes, seed)),
        }
    }

    /// Per-family training hyper-parameters.
    pub fn train_config(self) -> TrainConfig {
        match self {
            Self::ViT => TrainConfig {
                epochs: 18,
                lr: 0.02,
                ..TrainConfig::default()
            },
            Self::MobileNet => TrainConfig {
                epochs: 16,
                lr: 0.05,
                ..TrainConfig::default()
            },
            _ => TrainConfig::default(),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// A trained model plus the dataset it was trained on.
pub struct Pretrained {
    /// The trained network (evaluation-ready).
    pub network: Network,
    /// The dataset (train/val splits).
    pub data: SynthVision,
    /// Validation top-1 accuracy (the "FP32 accuracy" of Table 1).
    pub val_accuracy: f64,
}

/// Cache directory: `$CLADO_CACHE_DIR`, else `<workspace>/target/clado-cache`.
pub fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CLADO_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    // crates/models → workspace root → target/clado-cache.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("clado-cache")
}

/// Returns the trained model for `kind` on the default dataset, training
/// and caching it on first use.
pub fn pretrained(kind: ModelKind) -> Pretrained {
    pretrained_with(kind, SynthVisionConfig::default(), 0xCAFE)
}

/// [`pretrained`] with explicit dataset configuration and weight seed.
pub fn pretrained_with(kind: ModelKind, data_cfg: SynthVisionConfig, seed: u64) -> Pretrained {
    let data = SynthVision::generate(data_cfg);
    let mut network = kind.build(data_cfg.classes, seed);
    let cache = cache_dir().join(format!(
        "{}-s{}-d{}-n{}-i{}-c{}-x{}-l{}.cldw",
        kind.id(),
        seed,
        data_cfg.seed,
        data_cfg.train,
        data_cfg.img,
        data_cfg.classes,
        (data_cfg.noise * 1000.0) as u32,
        (data_cfg.label_noise * 1000.0) as u32
    ));
    if cache.exists() && load_weights(&mut network, &cache).is_ok() {
        let val_accuracy = evaluate(&mut network, &data.val);
        return Pretrained {
            network,
            data,
            val_accuracy,
        };
    }
    let report = train(&mut network, &data.train, &data.val, &kind.train_config());
    if let Err(e) = save_weights(&mut network, &cache) {
        eprintln!(
            "warning: could not cache weights to {}: {e}",
            cache.display()
        );
    }
    Pretrained {
        network,
        data,
        val_accuracy: report.val_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let all = [
            ModelKind::ResNet20,
            ModelKind::ResNet34,
            ModelKind::ResNet50,
            ModelKind::MobileNet,
            ModelKind::RegNet,
            ModelKind::ViT,
        ];
        let mut ids: Vec<&str> = all.iter().map(|k| k.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn builders_produce_quantizable_layers() {
        for kind in [
            ModelKind::ResNet20,
            ModelKind::ResNet34,
            ModelKind::ResNet50,
            ModelKind::MobileNet,
            ModelKind::RegNet,
            ModelKind::ViT,
        ] {
            let net = kind.build(10, 0);
            assert!(
                net.quantizable_layers().len() >= 10,
                "{kind}: only {} quantizable layers",
                net.quantizable_layers().len()
            );
        }
    }

    /// Full pretrained flow on a deliberately tiny dataset: train, cache,
    /// reload, verify determinism of the cached path.
    #[test]
    fn pretrained_cache_roundtrip() {
        let cfg = SynthVisionConfig {
            classes: 3,
            img: 8,
            train: 96,
            val: 48,
            seed: 77,
            noise: 0.2,
            label_noise: 0.0,
        };
        // Use a scratch cache dir to avoid clobbering the real cache.
        let dir = std::env::temp_dir().join(format!("clado-cache-test-{}", std::process::id()));
        std::env::set_var("CLADO_CACHE_DIR", &dir);
        let a = pretrained_with(ModelKind::ResNet20, cfg, 5);
        let b = pretrained_with(ModelKind::ResNet20, cfg, 5); // cached load
        assert!((a.val_accuracy - b.val_accuracy).abs() < 1e-12);
        assert!(
            a.val_accuracy > 1.0 / 3.0,
            "trained model at chance: {}",
            a.val_accuracy
        );
        std::env::remove_var("CLADO_CACHE_DIR");
        std::fs::remove_dir_all(dir).ok();
    }
}
