//! # clado-tensor
//!
//! Dense `f32` tensors and the numeric kernels that power the CLADO
//! mixed-precision-quantization reproduction: GEMM, im2col convolutions,
//! pooling, activations, softmax, and seeded initializers.
//!
//! The crate is deliberately small and dependency-light: everything is safe
//! Rust over contiguous `Vec<f32>` buffers in row-major (NCHW) layout.
//!
//! ## Example
//!
//! ```
//! use clado_tensor::{matmul, Tensor};
//!
//! let weights = Tensor::from_vec([2, 2], vec![1.0, -1.0, 0.5, 2.0])?;
//! let x = Tensor::from_vec([2, 1], vec![3.0, 4.0])?;
//! let y = matmul(&weights, &x);
//! assert_eq!(y.data(), &[-1.0, 9.5]);
//! # Ok::<(), clado_tensor::ShapeMismatchError>(())
//! ```

#![warn(missing_docs)]

mod conv;
mod gemm;
pub mod igemm;
pub mod init;
pub mod kernel;
pub mod ops;
mod pool;
mod shape;
mod tensor;

pub use conv::{conv2d_backward, conv2d_forward, im2col, im2col_ld, Conv2dGrads, Conv2dSpec};
pub use gemm::{matmul, matmul_a_bt, matmul_at_b, transpose};
pub use kernel::{active_backend, cpu_features, force_backend, kernel_name, Backend};
pub use pool::{
    avg_pool2d_backward, avg_pool2d_forward, global_avg_pool_backward, global_avg_pool_forward,
    max_pool2d_backward, max_pool2d_forward, MaxPoolOutput,
};
pub use shape::{Shape, MAX_DIMS};
pub use tensor::{ShapeMismatchError, Tensor};
