//! Spatial pooling kernels (forward and backward).

use crate::Tensor;

fn nchw(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        4,
        "expected NCHW tensor, got {}",
        t.shape()
    );
    let sh = t.shape();
    let d = sh.dims();
    (d[0], d[1], d[2], d[3])
}

/// Output of [`max_pool2d_forward`]: pooled values plus argmax indices
/// (flat offsets into the input) needed by the backward pass.
#[derive(Debug)]
pub struct MaxPoolOutput {
    /// Pooled activations, `[N, C, Ho, Wo]`.
    pub output: Tensor,
    /// For each output element, the flat index of the winning input element.
    pub argmax: Vec<usize>,
}

/// Max pooling with a square window and stride (no padding).
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn max_pool2d_forward(input: &Tensor, window: usize, stride: usize) -> MaxPoolOutput {
    let (n, c, h, w) = nchw(input);
    assert!(
        window <= h && window <= w,
        "pool window {window} exceeds input {h}×{w}"
    );
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let mut output = Tensor::zeros([n, c, ho, wo]);
    let mut argmax = vec![0usize; n * c * ho * wo];
    let src = input.data();
    let dst = output.data_mut();
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..window {
                        for kx in 0..window {
                            let idx = plane + (oy * stride + ky) * w + (ox * stride + kx);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((s * c + ch) * ho + oy) * wo + ox;
                    dst[o] = best;
                    argmax[o] = best_idx;
                }
            }
        }
    }
    MaxPoolOutput { output, argmax }
}

/// Backward pass of max pooling: routes each output gradient to its argmax.
pub fn max_pool2d_backward(d_out: &Tensor, argmax: &[usize], input_shape: crate::Shape) -> Tensor {
    assert_eq!(d_out.numel(), argmax.len(), "argmax length mismatch");
    let mut d_in = Tensor::zeros(input_shape);
    let dd = d_in.data_mut();
    for (g, &idx) in d_out.data().iter().zip(argmax) {
        dd[idx] += g;
    }
    d_in
}

/// Average pooling with a square window and stride (no padding).
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn avg_pool2d_forward(input: &Tensor, window: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = nchw(input);
    assert!(
        window <= h && window <= w,
        "pool window {window} exceeds input {h}×{w}"
    );
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let inv = 1.0 / (window * window) as f32;
    let mut output = Tensor::zeros([n, c, ho, wo]);
    let src = input.data();
    let dst = output.data_mut();
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += src[plane + (oy * stride + ky) * w + (ox * stride + kx)];
                        }
                    }
                    dst[((s * c + ch) * ho + oy) * wo + ox] = acc * inv;
                }
            }
        }
    }
    output
}

/// Backward pass of average pooling.
pub fn avg_pool2d_backward(
    d_out: &Tensor,
    window: usize,
    stride: usize,
    input_shape: crate::Shape,
) -> Tensor {
    let d = input_shape.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (_, _, ho, wo) = nchw(d_out);
    let inv = 1.0 / (window * window) as f32;
    let mut d_in = Tensor::zeros(input_shape);
    let dd = d_in.data_mut();
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = d_out.data()[((s * c + ch) * ho + oy) * wo + ox] * inv;
                    for ky in 0..window {
                        for kx in 0..window {
                            dd[plane + (oy * stride + ky) * w + (ox * stride + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    d_in
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    let (n, c, h, w) = nchw(input);
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros([n, c]);
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            let sum: f32 = input.data()[plane..plane + h * w].iter().sum();
            out.data_mut()[s * c + ch] = sum * inv;
        }
    }
    out
}

/// Backward pass of global average pooling.
pub fn global_avg_pool_backward(d_out: &Tensor, input_shape: crate::Shape) -> Tensor {
    let d = input_shape.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    assert_eq!(d_out.shape().dims(), &[n, c], "d_out shape mismatch");
    let inv = 1.0 / (h * w) as f32;
    let mut d_in = Tensor::zeros(input_shape);
    for s in 0..n {
        for ch in 0..c {
            let g = d_out.data()[s * c + ch] * inv;
            let plane = (s * c + ch) * h * w;
            d_in.data_mut()[plane..plane + h * w].fill(g);
        }
    }
    d_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_basic() {
        let input = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        )
        .unwrap();
        let MaxPoolOutput { output, argmax } = max_pool2d_forward(&input, 2, 2);
        assert_eq!(output.data(), &[6., 8., 14., 16.]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_gradient() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 4.]).unwrap();
        let fwd = max_pool2d_forward(&input, 2, 1);
        let d_out = Tensor::full([1, 1, 1, 1], 2.5);
        let d_in = max_pool2d_backward(&d_out, &fwd.argmax, input.shape());
        assert_eq!(d_in.data(), &[0., 2.5, 0., 0.]);
    }

    #[test]
    fn avg_pool_roundtrip() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 3., 5., 7.]).unwrap();
        let out = avg_pool2d_forward(&input, 2, 2);
        assert_eq!(out.data(), &[4.0]);
        let d_in = avg_pool2d_backward(&Tensor::full([1, 1, 1, 1], 4.0), 2, 2, input.shape());
        assert_eq!(d_in.data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::from_vec([1, 2, 1, 2], vec![2., 4., 10., 30.]).unwrap();
        let out = global_avg_pool_forward(&input);
        assert_eq!(out.data(), &[3., 20.]);
        let d_in = global_avg_pool_backward(
            &Tensor::from_vec([1, 2], vec![2., 4.]).unwrap(),
            input.shape(),
        );
        assert_eq!(d_in.data(), &[1., 1., 2., 2.]);
    }

    #[test]
    fn avg_pool_gradient_matches_finite_difference() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let input = init::normal([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let out = avg_pool2d_forward(&input, 2, 2);
        let seed = init::normal(out.shape(), 0.0, 1.0, &mut rng);
        let d_in = avg_pool2d_backward(&seed, 2, 2, input.shape());
        let eps = 1e-3f32;
        for idx in [0usize, 5, 21, 31] {
            let mut p = input.clone();
            p.data_mut()[idx] += eps;
            let mut m = input.clone();
            m.data_mut()[idx] -= eps;
            let lp = avg_pool2d_forward(&p, 2, 2).dot(&seed);
            let lm = avg_pool2d_forward(&m, 2, 2).dot(&seed);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((fd - d_in.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn oversized_window_panics() {
        max_pool2d_forward(&Tensor::zeros([1, 1, 2, 2]), 3, 1);
    }
}
