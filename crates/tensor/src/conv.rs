//! 2-D convolution kernels (forward and backward) via im2col.
//!
//! Supports strides, symmetric zero padding, and grouped/depthwise
//! convolution — everything the mini model zoo needs.

use crate::Tensor;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
    /// Number of groups (`1` = dense, `in_channels` = depthwise).
    pub groups: usize,
}

impl Conv2dSpec {
    /// Creates a dense (single-group) convolution spec.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Returns the spec with `groups` set, validating divisibility.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts.
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert!(
            self.in_channels.is_multiple_of(groups) && self.out_channels.is_multiple_of(groups),
            "groups={groups} must divide in_channels={} and out_channels={}",
            self.in_channels,
            self.out_channels
        );
        self.groups = groups;
        self
    }

    /// Spatial output size for a given input size.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} does not fit input {input} with padding {}",
            self.kernel,
            self.padding
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// Shape of the weight tensor: `[out_channels, in_channels/groups, k, k]`.
    pub fn weight_shape(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels / self.groups,
            self.kernel,
            self.kernel,
        ]
    }

    /// Number of weight elements.
    pub fn weight_numel(&self) -> usize {
        self.weight_shape().iter().product()
    }
}

/// Unfolds one sample's group-slice into a `[cg·k·k, ho·wo]` column matrix.
#[allow(clippy::too_many_arguments)]
fn im2col(
    input: &[f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ho: usize,
    wo: usize,
    col: &mut [f32],
) {
    let k = spec.kernel;
    debug_assert_eq!(col.len(), cg * k * k * ho * wo);
    let mut row = 0usize;
    for c in 0..cg {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * ho * wo;
                row += 1;
                for oy in 0..ho {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        col[base + oy * wo..base + (oy + 1) * wo].fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..wo {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        col[base + oy * wo + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            input[c * h * w + iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into a spatial gradient (adjoint of
/// [`im2col`]).
#[allow(clippy::too_many_arguments)]
fn col2im(
    col: &[f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ho: usize,
    wo: usize,
    out: &mut [f32],
) {
    let k = spec.kernel;
    let mut row = 0usize;
    for c in 0..cg {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * ho * wo;
                row += 1;
                for oy in 0..ho {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..wo {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[c * h * w + iy * w + ix as usize] += col[base + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// Convolution forward pass.
///
/// `input` is `[N, Cin, H, W]`, `weight` is `[Cout, Cin/g, k, k]`, `bias` is
/// `[Cout]` (optional). Returns `[N, Cout, Ho, Wo]`.
///
/// # Panics
///
/// Panics on any shape inconsistency with `spec`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Tensor {
    let (n, cin, h, w) = nchw(input);
    assert_eq!(
        cin, spec.in_channels,
        "input channels {cin} != spec {}",
        spec.in_channels
    );
    assert_eq!(
        weight.shape().dims(),
        &spec.weight_shape(),
        "weight shape mismatch for {spec:?}"
    );
    if let Some(b) = bias {
        assert_eq!(b.numel(), spec.out_channels, "bias length mismatch");
    }
    let (ho, wo) = (spec.out_size(h), spec.out_size(w));
    let g = spec.groups;
    let (cg_in, cg_out) = (cin / g, spec.out_channels / g);
    let k = spec.kernel;
    let col_rows = cg_in * k * k;
    let mut col = vec![0.0f32; col_rows * ho * wo];
    let mut out = Tensor::zeros([n, spec.out_channels, ho, wo]);
    let wdat = weight.data();
    for s in 0..n {
        let in_s = &input.data()[s * cin * h * w..(s + 1) * cin * h * w];
        for gi in 0..g {
            im2col(
                &in_s[gi * cg_in * h * w..],
                cg_in,
                h,
                w,
                spec,
                ho,
                wo,
                &mut col,
            );
            let w_g = &wdat[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
            let out_base = s * spec.out_channels * ho * wo + gi * cg_out * ho * wo;
            let out_g = &mut out.data_mut()[out_base..out_base + cg_out * ho * wo];
            // out_g[oc][p] = Σ_r w_g[oc][r] * col[r][p]
            for oc in 0..cg_out {
                let w_row = &w_g[oc * col_rows..(oc + 1) * col_rows];
                let o_row = &mut out_g[oc * ho * wo..(oc + 1) * ho * wo];
                for (r, &wv) in w_row.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let c_row = &col[r * ho * wo..(r + 1) * ho * wo];
                    for (o, &cv) in o_row.iter_mut().zip(c_row) {
                        *o += wv * cv;
                    }
                }
            }
        }
    }
    if let Some(b) = bias {
        let bd = b.data();
        let od = out.data_mut();
        for s in 0..n {
            for (oc, &bv) in bd.iter().enumerate() {
                let base = (s * spec.out_channels + oc) * ho * wo;
                for o in &mut od[base..base + ho * wo] {
                    *o += bv;
                }
            }
        }
    }
    out
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, Cin, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the weight, `[Cout, Cin/g, k, k]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[Cout]`.
    pub bias: Tensor,
}

/// Convolution backward pass: given `d_out = ∂L/∂output`, returns gradients
/// w.r.t. input, weight, and bias.
///
/// # Panics
///
/// Panics on any shape inconsistency with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    let (n, cin, h, w) = nchw(input);
    let (no, cout, ho, wo) = nchw(d_out);
    assert_eq!(n, no, "batch mismatch between input and d_out");
    assert_eq!(cout, spec.out_channels, "d_out channels mismatch");
    assert_eq!(
        (spec.out_size(h), spec.out_size(w)),
        (ho, wo),
        "d_out spatial mismatch"
    );
    let g = spec.groups;
    let (cg_in, cg_out) = (cin / g, cout / g);
    let k = spec.kernel;
    let col_rows = cg_in * k * k;
    let mut col = vec![0.0f32; col_rows * ho * wo];
    let mut dcol = vec![0.0f32; col_rows * ho * wo];
    let mut d_input = Tensor::zeros(input.shape());
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros([cout]);
    let wdat = weight.data();

    for s in 0..n {
        let in_s = &input.data()[s * cin * h * w..(s + 1) * cin * h * w];
        for gi in 0..g {
            im2col(
                &in_s[gi * cg_in * h * w..],
                cg_in,
                h,
                w,
                spec,
                ho,
                wo,
                &mut col,
            );
            let d_out_base = s * cout * ho * wo + gi * cg_out * ho * wo;
            let d_out_g = &d_out.data()[d_out_base..d_out_base + cg_out * ho * wo];
            let w_g = &wdat[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
            let dw_g =
                &mut d_weight.data_mut()[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
            // dW[oc][r] += Σ_p d_out[oc][p] * col[r][p]
            for oc in 0..cg_out {
                let dout_row = &d_out_g[oc * ho * wo..(oc + 1) * ho * wo];
                let dw_row = &mut dw_g[oc * col_rows..(oc + 1) * col_rows];
                for (r, dw) in dw_row.iter_mut().enumerate() {
                    let c_row = &col[r * ho * wo..(r + 1) * ho * wo];
                    let mut acc = 0.0f32;
                    for (&d, &c) in dout_row.iter().zip(c_row) {
                        acc += d * c;
                    }
                    *dw += acc;
                }
            }
            // dcol[r][p] = Σ_oc w[oc][r] * d_out[oc][p]
            dcol.fill(0.0);
            for oc in 0..cg_out {
                let w_row = &w_g[oc * col_rows..(oc + 1) * col_rows];
                let dout_row = &d_out_g[oc * ho * wo..(oc + 1) * ho * wo];
                for (r, &wv) in w_row.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let dc_row = &mut dcol[r * ho * wo..(r + 1) * ho * wo];
                    for (dc, &d) in dc_row.iter_mut().zip(dout_row) {
                        *dc += wv * d;
                    }
                }
            }
            let din_base = s * cin * h * w + gi * cg_in * h * w;
            col2im(
                &dcol,
                cg_in,
                h,
                w,
                spec,
                ho,
                wo,
                &mut d_input.data_mut()[din_base..],
            );
        }
        // Bias gradient: sum over spatial positions.
        for oc in 0..cout {
            let base = (s * cout + oc) * ho * wo;
            let sum: f32 = d_out.data()[base..base + ho * wo].iter().sum();
            d_bias.data_mut()[oc] += sum;
        }
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight,
        bias: d_bias,
    }
}

fn nchw(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        4,
        "expected NCHW tensor, got {}",
        t.shape()
    );
    let sh = t.shape();
    let d = sh.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive direct convolution used as a reference implementation.
    fn conv_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let sh = input.shape();
        let d = sh.dims();
        let (n, _cin, h, w) = (d[0], d[1], d[2], d[3]);
        let (ho, wo) = (spec.out_size(h), spec.out_size(w));
        let g = spec.groups;
        let (cg_in, cg_out) = (spec.in_channels / g, spec.out_channels / g);
        let k = spec.kernel;
        let mut out = Tensor::zeros([n, spec.out_channels, ho, wo]);
        for s in 0..n {
            for gi in 0..g {
                for oc in 0..cg_out {
                    let oc_abs = gi * cg_out + oc;
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = bias.map_or(0.0, |b| b.data()[oc_abs]);
                            for ic in 0..cg_in {
                                let ic_abs = gi * cg_in + ic;
                                for ky in 0..k {
                                    for kx in 0..k {
                                        let iy = (oy * spec.stride + ky) as isize
                                            - spec.padding as isize;
                                        let ix = (ox * spec.stride + kx) as isize
                                            - spec.padding as isize;
                                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize
                                        {
                                            continue;
                                        }
                                        let iv = input.data()[((s * spec.in_channels + ic_abs)
                                            * h
                                            + iy as usize)
                                            * w
                                            + ix as usize];
                                        let wv = weight.data()
                                            [((oc_abs * cg_in + ic) * k + ky) * k + kx];
                                        acc += iv * wv;
                                    }
                                }
                            }
                            out.data_mut()
                                [((s * spec.out_channels + oc_abs) * ho + oy) * wo + ox] = acc;
                        }
                    }
                }
            }
        }
        out
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn forward_matches_naive_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let input = init::normal([2, 3, 5, 5], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        let bias = init::normal([4], 0.0, 0.1, &mut rng);
        close(
            &conv2d_forward(&input, &weight, Some(&bias), &spec),
            &conv_naive(&input, &weight, Some(&bias), &spec),
            1e-4,
        );
    }

    #[test]
    fn forward_matches_naive_strided_grouped() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = Conv2dSpec::new(4, 6, 3, 2, 1).with_groups(2);
        let input = init::normal([1, 4, 7, 7], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        close(
            &conv2d_forward(&input, &weight, None, &spec),
            &conv_naive(&input, &weight, None, &spec),
            1e-4,
        );
    }

    #[test]
    fn forward_matches_naive_depthwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = Conv2dSpec::new(4, 4, 3, 1, 1).with_groups(4);
        let input = init::normal([2, 4, 6, 6], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        close(
            &conv2d_forward(&input, &weight, None, &spec),
            &conv_naive(&input, &weight, None, &spec),
            1e-4,
        );
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = Conv2dSpec::new(2, 3, 3, 2, 1);
        let input = init::normal([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        // Loss = sum(output * seed) for a fixed random seed tensor.
        let out = conv2d_forward(&input, &weight, None, &spec);
        let seed = init::normal(out.shape(), 0.0, 1.0, &mut rng);
        let grads = conv2d_backward(&input, &weight, &seed, &spec);

        let eps = 1e-3f32;
        // Check a sample of weight coordinates.
        for idx in [0usize, 5, 11, 17] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&input, &wp, None, &spec).dot(&seed);
            let lm = conv2d_forward(&input, &wm, None, &spec).dot(&seed);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grads.weight.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2,
                "weight[{idx}]: fd={fd} analytic={an}"
            );
        }
        // Check a sample of input coordinates.
        for idx in [0usize, 7, 23, 49] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&ip, &weight, None, &spec).dot(&seed);
            let lm = conv2d_forward(&im, &weight, None, &spec).dot(&seed);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grads.input.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2,
                "input[{idx}]: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_spatial_positions() {
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::full([1, 1, 2, 2], 1.0);
        let weight = Tensor::full(spec.weight_shape(), 1.0);
        let d_out = Tensor::full([1, 1, 2, 2], 0.5);
        let grads = conv2d_backward(&input, &weight, &d_out, &spec);
        assert_eq!(grads.bias.data(), &[2.0]);
    }

    #[test]
    fn out_size_arithmetic() {
        let spec = Conv2dSpec::new(1, 1, 3, 2, 1);
        assert_eq!(spec.out_size(7), 4);
        assert_eq!(spec.out_size(8), 4);
        let s1 = Conv2dSpec::new(1, 1, 1, 1, 0);
        assert_eq!(s1.out_size(16), 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_groups_panics() {
        let _ = Conv2dSpec::new(3, 4, 3, 1, 1).with_groups(2);
    }
}
