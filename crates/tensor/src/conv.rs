//! 2-D convolution kernels (forward and backward) via im2col.
//!
//! Supports strides, symmetric zero padding, and grouped/depthwise
//! convolution — everything the mini model zoo needs.

use crate::kernel;
use crate::Tensor;
use std::cell::RefCell;

thread_local! {
    /// Forward-pass scratch (column matrix + GEMM output) reused across
    /// calls: the suffix-forward hot path runs thousands of convolutions
    /// per second, and allocating + zeroing a fresh multi-hundred-KB
    /// column matrix each call costs more than the GEMM for the small
    /// shapes in the mini model zoo. Both buffers are fully overwritten
    /// before being read, so reuse never leaks data between calls.
    static FWD_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Grows `buf` if needed and hands back exactly `len` elements. Contents
/// are unspecified — callers must fully overwrite before reading.
fn scratch_slice(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}

/// Widest padded input row the stride-1 im2col fast path stages on the
/// stack; wider inputs fall back to the general segmented loop.
const PADDED_ROW_MAX: usize = 256;

/// Rounds the shared column-matrix row stride up to an odd number of
/// 64-byte cache lines. A batch-of-16 stride like `16·16·16` floats is
/// 16 KiB — a power-of-two stride maps every GEMM B-panel row onto the
/// same L1 set-group, so the strip the skinny kernel wants resident
/// thrashes on conflict misses. An odd line stride cycles the rows
/// through all sets. Padding columns are never read back (the scatter
/// only copies each sample's real `ho·wo` segment), and the GEMM just
/// computes a few throwaway columns over whatever finite values the
/// scratch held.
fn pad_stride(len: usize) -> usize {
    let lines = len.div_ceil(16);
    (lines | 1) * 16
}

/// Copy of `len` f32s that turns the common small widths into straight
/// register moves instead of a runtime-length `memcpy` call — the im2col
/// inner loop issues four such copies per staged row, so the dispatch
/// overhead of the libc call dominates at `wo ∈ {4, 8, 16}`.
///
/// # Safety
///
/// `src` and `dst` must be valid for `len` reads/writes and disjoint.
#[inline(always)]
unsafe fn copy_floats(src: *const f32, dst: *mut f32, len: usize) {
    match len {
        4 => dst
            .cast::<[f32; 4]>()
            .write_unaligned(src.cast::<[f32; 4]>().read_unaligned()),
        8 => dst
            .cast::<[f32; 8]>()
            .write_unaligned(src.cast::<[f32; 8]>().read_unaligned()),
        16 => dst
            .cast::<[f32; 16]>()
            .write_unaligned(src.cast::<[f32; 16]>().read_unaligned()),
        32 => dst
            .cast::<[f32; 32]>()
            .write_unaligned(src.cast::<[f32; 32]>().read_unaligned()),
        _ => std::ptr::copy_nonoverlapping(src, dst, len),
    }
}

/// Zero-fill counterpart of [`copy_floats`].
///
/// # Safety
///
/// `dst` must be valid for `len` writes.
#[inline(always)]
unsafe fn zero_floats(dst: *mut f32, len: usize) {
    match len {
        4 => dst.cast::<[f32; 4]>().write_unaligned([0.0; 4]),
        8 => dst.cast::<[f32; 8]>().write_unaligned([0.0; 8]),
        16 => dst.cast::<[f32; 16]>().write_unaligned([0.0; 16]),
        32 => dst.cast::<[f32; 32]>().write_unaligned([0.0; 32]),
        _ => std::ptr::write_bytes(dst, 0, len),
    }
}

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
    /// Number of groups (`1` = dense, `in_channels` = depthwise).
    pub groups: usize,
}

impl Conv2dSpec {
    /// Creates a dense (single-group) convolution spec.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Returns the spec with `groups` set, validating divisibility.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts.
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert!(
            self.in_channels.is_multiple_of(groups) && self.out_channels.is_multiple_of(groups),
            "groups={groups} must divide in_channels={} and out_channels={}",
            self.in_channels,
            self.out_channels
        );
        self.groups = groups;
        self
    }

    /// Spatial output size for a given input size.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} does not fit input {input} with padding {}",
            self.kernel,
            self.padding
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// Shape of the weight tensor: `[out_channels, in_channels/groups, k, k]`.
    pub fn weight_shape(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels / self.groups,
            self.kernel,
            self.kernel,
        ]
    }

    /// Number of weight elements.
    pub fn weight_numel(&self) -> usize {
        self.weight_shape().iter().product()
    }
}

/// Unfolds one sample's group-slice into a `[cg·k·k, ho·wo]` column matrix.
///
/// Public so higher crates can build their own GEMM-form convolutions
/// (the integer execution path quantizes this matrix and runs int8 GEMM).
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ho: usize,
    wo: usize,
    col: &mut [f32],
) {
    debug_assert_eq!(col.len(), cg * spec.kernel * spec.kernel * ho * wo);
    im2col_ld(input, cg, h, w, spec, ho, wo, col, ho * wo);
}

/// [`im2col`] into a wider matrix: writes the `[cg·k·k, ho·wo]` columns of
/// one sample starting at `col[0]` with row stride `ld`, so a batch of
/// samples can share one `[cg·k·k, n·ho·wo]` matrix (sample `s` passes
/// `&mut wide[s*ho*wo..]`) and the convolution becomes a single wide GEMM
/// per group instead of one skinny GEMM per sample.
#[allow(clippy::too_many_arguments)]
pub fn im2col_ld(
    input: &[f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ho: usize,
    wo: usize,
    col: &mut [f32],
    ld: usize,
) {
    let k = spec.kernel;
    let stride = spec.stride;
    let pad = spec.padding;
    debug_assert!(ld >= ho * wo, "row stride shorter than one sample");
    debug_assert!(col.len() >= (cg * k * k - 1) * ld + ho * wo);
    // Stride-1 fast path: stage each input row once into a zero-padded
    // buffer, then every kx-row of the column matrix is one full-width
    // copy (`dst[ox] = prow[ox + kx]`) — no per-segment edge fills. Pure
    // copies, so output is bitwise identical to the general path.
    if stride == 1 && w + 2 * pad <= PADDED_ROW_MAX {
        assert!(input.len() >= cg * h * w, "input slice too short");
        assert!(
            col.len() >= (cg * k * k - 1) * ld + ho * wo,
            "column slice too short"
        );
        let mut prow = [0.0f32; PADDED_ROW_MAX];
        // SAFETY: every pointer offset below is within the bounds the two
        // asserts establish: source rows are `iy < h`, destination rows
        // are `row0 + kx < cg·k·k` at column `oy·wo + wo <= ld`, and
        // `kx + wo <= w + 2·pad` inside the staging buffer.
        unsafe {
            let cp = col.as_mut_ptr();
            for c in 0..cg {
                let src_c = input.as_ptr().add(c * h * w);
                for ky in 0..k {
                    let row0 = (c * k + ky) * k;
                    for oy in 0..ho {
                        let iy = (oy + ky) as isize - pad as isize;
                        let dbase = cp.add(row0 * ld + oy * wo);
                        if iy < 0 || iy >= h as isize {
                            for kx in 0..k {
                                zero_floats(dbase.add(kx * ld), wo);
                            }
                            continue;
                        }
                        copy_floats(src_c.add(iy as usize * w), prow.as_mut_ptr().add(pad), w);
                        for kx in 0..k {
                            copy_floats(prow.as_ptr().add(kx), dbase.add(kx * ld), wo);
                        }
                    }
                }
            }
        }
        return;
    }
    let mut row = 0usize;
    for c in 0..cg {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * ld;
                row += 1;
                // `ix = ox·stride + off`; the in-bounds ox range
                // [lo, hi) is computed once so the inner loop is
                // branch-free (and a straight memcpy when stride = 1).
                let off = kx as isize - spec.padding as isize;
                let lo = if off >= 0 {
                    0
                } else {
                    ((-off) as usize).div_ceil(stride).min(wo)
                };
                let hi = if (w as isize) <= off {
                    lo
                } else {
                    ((w as isize - off) as usize).div_ceil(stride).clamp(lo, wo)
                };
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - spec.padding as isize;
                    let dst = &mut col[base + oy * wo..base + oy * wo + wo];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src = &input[c * h * w + iy as usize * w..][..w];
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    if stride == 1 {
                        let s0 = (lo as isize + off) as usize;
                        dst[lo..hi].copy_from_slice(&src[s0..s0 + (hi - lo)]);
                    } else {
                        for ox in lo..hi {
                            dst[ox] = src[((ox * stride) as isize + off) as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into a spatial gradient (adjoint of
/// [`im2col`]).
#[allow(clippy::too_many_arguments)]
fn col2im(
    col: &[f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ho: usize,
    wo: usize,
    out: &mut [f32],
) {
    let k = spec.kernel;
    let mut row = 0usize;
    for c in 0..cg {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * ho * wo;
                row += 1;
                for oy in 0..ho {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..wo {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[c * h * w + iy * w + ix as usize] += col[base + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// Fused implicit-im2col convolution for the AVX2 backend: stages each
/// sample's group-slice into a small zero-padded image and runs the GEMM
/// microkernel straight out of it through a precomputed offsets table —
/// the 9×-inflated column matrix is never materialized. Stride-1 only;
/// each output element accumulates its `cg·k·k` terms in ascending order
/// (the same order as the scalar reference, with FMA rounding).
#[cfg(target_arch = "x86_64")]
mod fused {
    use super::{copy_floats, Conv2dSpec, Tensor};
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    thread_local! {
        /// Padded-image staging + offsets table, reused across calls.
        static STAGE: RefCell<(Vec<f32>, Vec<usize>)> =
            const { RefCell::new((Vec::new(), Vec::new())) };
    }

    /// Whether [`run`] supports this geometry (caller has already checked
    /// that the AVX2 backend is active).
    pub(super) fn supported(spec: &Conv2dSpec, wo: usize, ho: usize) -> bool {
        spec.stride == 1 && matches!(wo, 4 | 8 | 16) && (wo == 16 || ho.is_multiple_of(2))
    }

    /// Runs the fused convolution. Output tensor must be zero-filled;
    /// every output element is written exactly once.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn run(
        input: &Tensor,
        weight: &Tensor,
        out: &mut Tensor,
        spec: &Conv2dSpec,
        n: usize,
        cin: usize,
        h: usize,
        w: usize,
        ho: usize,
        wo: usize,
    ) {
        let pad = spec.padding;
        let k = spec.kernel;
        let g = spec.groups;
        let (cg, cg_out) = (cin / g, spec.out_channels / g);
        let (hp, wp) = (h + 2 * pad, w + 2 * pad);
        let kk = cg * k * k;
        let howo = ho * wo;
        STAGE.with(|stage| {
            let mut stage = stage.borrow_mut();
            let (padded, off) = &mut *stage;
            padded.clear();
            padded.resize(cg * hp * wp, 0.0);
            off.clear();
            off.reserve(kk);
            for c in 0..cg {
                for ky in 0..k {
                    for kx in 0..k {
                        off.push(c * hp * wp + ky * wp + kx);
                    }
                }
            }
            let wdat = weight.data();
            let indat = input.data();
            let od = out.data_mut();
            for s in 0..n {
                for gi in 0..g {
                    // Stage the group-slice; borders stay zero because
                    // only interior rows are ever written.
                    let src = &indat[(s * cin + gi * cg) * h * w..];
                    for c in 0..cg {
                        for iy in 0..h {
                            // SAFETY: destination row `(iy+pad)` at column
                            // `pad` leaves `pad` zeros on each side.
                            unsafe {
                                copy_floats(
                                    src.as_ptr().add((c * h + iy) * w),
                                    padded.as_mut_ptr().add(c * hp * wp + (iy + pad) * wp + pad),
                                    w,
                                );
                            }
                        }
                    }
                    let out_base = (s * spec.out_channels + gi * cg_out) * howo;
                    let mut oc = 0;
                    // SAFETY: AVX2+FMA availability is the caller's
                    // dispatch condition; offsets stay within the staged
                    // image (max term `off[kk-1] + (ho-1)·wp + wo` equals
                    // the buffer length for stride 1).
                    unsafe {
                        while oc + 4 <= cg_out {
                            let wrow = wdat.as_ptr().add((gi * cg_out + oc) * kk);
                            let dst = od.as_mut_ptr().add(out_base + oc * howo);
                            rows4(wrow, kk, padded, off, wp, ho, wo, dst, howo);
                            oc += 4;
                        }
                        while oc < cg_out {
                            let wrow = wdat.as_ptr().add((gi * cg_out + oc) * kk);
                            let dst = od.as_mut_ptr().add(out_base + oc * howo);
                            rows1(wrow, kk, padded, off, wp, ho, wo, dst);
                            oc += 1;
                        }
                    }
                }
            }
        });
    }

    /// Four output channels at once over the staged image.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `w` valid for 4 rows of `kk`, `dst` for 4 rows
    /// of `ho·wo` at stride `dstride`; offsets in bounds per [`run`].
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows4(
        w: *const f32,
        kk: usize,
        padded: &[f32],
        off: &[usize],
        wp: usize,
        ho: usize,
        wo: usize,
        dst: *mut f32,
        dstride: usize,
    ) {
        let pd = padded.as_ptr();
        let z = _mm256_setzero_ps();
        let zx = _mm_setzero_ps();
        match wo {
            16 => {
                for oy in 0..ho {
                    let oyw = oy * wp;
                    let mut acc = [z; 8];
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let bp = pd.add(o + oyw);
                        let b0 = _mm256_loadu_ps(bp);
                        let b1 = _mm256_loadu_ps(bp.add(8));
                        for r in 0..4 {
                            let av = _mm256_broadcast_ss(&*w.add(r * kk + p));
                            acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                            acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                        }
                    }
                    for r in 0..4 {
                        let d = dst.add(r * dstride + oy * wo);
                        _mm256_storeu_ps(d, acc[2 * r]);
                        _mm256_storeu_ps(d.add(8), acc[2 * r + 1]);
                    }
                }
            }
            8 => {
                let mut oy = 0;
                while oy < ho {
                    let oyw = oy * wp;
                    let mut acc = [z; 8];
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let bp = pd.add(o + oyw);
                        let b0 = _mm256_loadu_ps(bp);
                        let b1 = _mm256_loadu_ps(bp.add(wp));
                        for r in 0..4 {
                            let av = _mm256_broadcast_ss(&*w.add(r * kk + p));
                            acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                            acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                        }
                    }
                    for r in 0..4 {
                        let d = dst.add(r * dstride + oy * wo);
                        _mm256_storeu_ps(d, acc[2 * r]);
                        _mm256_storeu_ps(d.add(wo), acc[2 * r + 1]);
                    }
                    oy += 2;
                }
            }
            _ => {
                let mut oy = 0;
                while oy < ho {
                    let oyw = oy * wp;
                    let mut acc = [zx; 8];
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let bp = pd.add(o + oyw);
                        let b0 = _mm_loadu_ps(bp);
                        let b1 = _mm_loadu_ps(bp.add(wp));
                        for r in 0..4 {
                            let av = _mm_set1_ps(*w.add(r * kk + p));
                            acc[2 * r] = _mm_add_ps(acc[2 * r], _mm_mul_ps(av, b0));
                            acc[2 * r + 1] = _mm_add_ps(acc[2 * r + 1], _mm_mul_ps(av, b1));
                        }
                    }
                    for r in 0..4 {
                        let d = dst.add(r * dstride + oy * wo);
                        _mm_storeu_ps(d, acc[2 * r]);
                        _mm_storeu_ps(d.add(wo), acc[2 * r + 1]);
                    }
                    oy += 2;
                }
            }
        }
    }

    /// Single-channel remainder of [`rows4`].
    ///
    /// # Safety
    ///
    /// Same contract as [`rows4`] with one weight/output row.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows1(
        w: *const f32,
        kk: usize,
        padded: &[f32],
        off: &[usize],
        wp: usize,
        ho: usize,
        wo: usize,
        dst: *mut f32,
    ) {
        let pd = padded.as_ptr();
        for oy in 0..ho {
            let oyw = oy * wp;
            match wo {
                16 => {
                    let mut a0 = _mm256_setzero_ps();
                    let mut a1 = _mm256_setzero_ps();
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let bp = pd.add(o + oyw);
                        let av = _mm256_broadcast_ss(&*w.add(p));
                        a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), a0);
                        a1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), a1);
                    }
                    let d = dst.add(oy * wo);
                    _mm256_storeu_ps(d, a0);
                    _mm256_storeu_ps(d.add(8), a1);
                }
                8 => {
                    let mut a0 = _mm256_setzero_ps();
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let av = _mm256_broadcast_ss(&*w.add(p));
                        a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pd.add(o + oyw)), a0);
                    }
                    _mm256_storeu_ps(dst.add(oy * wo), a0);
                }
                _ => {
                    let mut a0 = _mm_setzero_ps();
                    for (p, &o) in off.iter().enumerate().take(kk) {
                        let av = _mm_set1_ps(*w.add(p));
                        a0 = _mm_add_ps(a0, _mm_mul_ps(av, _mm_loadu_ps(pd.add(o + oyw))));
                    }
                    _mm_storeu_ps(dst.add(oy * wo), a0);
                }
            }
        }
    }
}

/// Convolution forward pass.
///
/// `input` is `[N, Cin, H, W]`, `weight` is `[Cout, Cin/g, k, k]`, `bias` is
/// `[Cout]` (optional). Returns `[N, Cout, Ho, Wo]`.
///
/// # Panics
///
/// Panics on any shape inconsistency with `spec`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Tensor {
    let (n, cin, h, w) = nchw(input);
    assert_eq!(
        cin, spec.in_channels,
        "input channels {cin} != spec {}",
        spec.in_channels
    );
    assert_eq!(
        weight.shape().dims(),
        &spec.weight_shape(),
        "weight shape mismatch for {spec:?}"
    );
    if let Some(b) = bias {
        assert_eq!(b.numel(), spec.out_channels, "bias length mismatch");
    }
    let (ho, wo) = (spec.out_size(h), spec.out_size(w));
    let g = spec.groups;
    let (cg_in, cg_out) = (cin / g, spec.out_channels / g);
    let k = spec.kernel;
    let col_rows = cg_in * k * k;
    let howo = ho * wo;
    // All samples share one wide column matrix (`ld = n·ho·wo`), so each
    // group runs a single wide GEMM instead of one skinny GEMM per sample.
    // Every output element's reduction order over `col_rows` is unchanged,
    // so results are bitwise identical to the per-sample formulation on
    // the scalar path.
    #[cfg(target_arch = "x86_64")]
    if matches!(kernel::active_backend(), crate::Backend::Avx2Fma) && fused::supported(spec, wo, ho)
    {
        let mut out = Tensor::zeros([n, spec.out_channels, ho, wo]);
        fused::run(input, weight, &mut out, spec, n, cin, h, w, ho, wo);
        add_bias(&mut out, bias, spec, n, ho * wo);
        return out;
    }
    // Samples are processed in chunks sized so the shared column matrix
    // stays L2-resident (≈96 KiB): im2col writes it and the GEMM reads it
    // straight back while hot. One wide GEMM per (group, chunk) instead
    // of one skinny GEMM per sample.
    let chunk = (96 * 1024 / (col_rows * howo * 4)).clamp(1, n.max(1));
    let ld = pad_stride(chunk * howo);
    let mut out = Tensor::zeros([n, spec.out_channels, ho, wo]);
    let wdat = weight.data();
    FWD_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (col_buf, gemm_buf) = &mut *scratch;
        let col = scratch_slice(col_buf, col_rows * ld);
        let gemm_out = scratch_slice(gemm_buf, cg_out * ld);
        let mut s0 = 0usize;
        while s0 < n {
            let sc = chunk.min(n - s0);
            for gi in 0..g {
                for si in 0..sc {
                    let s = s0 + si;
                    let in_s = &input.data()[s * cin * h * w..(s + 1) * cin * h * w];
                    im2col_ld(
                        &in_s[gi * cg_in * h * w..],
                        cg_in,
                        h,
                        w,
                        spec,
                        ho,
                        wo,
                        &mut col[si * howo..],
                        ld,
                    );
                }
                let w_g = &wdat[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
                // gemm_out[oc][si·howo + p] = Σ_r w_g[oc][r] * col[r][si·howo + p]
                kernel::sgemm_overwrite(w_g, col, gemm_out, cg_out, col_rows, ld, false, false);
                let od = out.data_mut();
                for si in 0..sc {
                    for oc in 0..cg_out {
                        let dst = ((s0 + si) * spec.out_channels + gi * cg_out + oc) * howo;
                        let src = oc * ld + si * howo;
                        od[dst..dst + howo].copy_from_slice(&gemm_out[src..src + howo]);
                    }
                }
            }
            s0 += sc;
        }
    });
    add_bias(&mut out, bias, spec, n, ho * wo);
    out
}

/// Adds the per-channel bias over all spatial positions.
fn add_bias(out: &mut Tensor, bias: Option<&Tensor>, spec: &Conv2dSpec, n: usize, howo: usize) {
    if let Some(b) = bias {
        let bd = b.data();
        let od = out.data_mut();
        for s in 0..n {
            for (oc, &bv) in bd.iter().enumerate() {
                let base = (s * spec.out_channels + oc) * howo;
                for o in &mut od[base..base + howo] {
                    *o += bv;
                }
            }
        }
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, Cin, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the weight, `[Cout, Cin/g, k, k]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[Cout]`.
    pub bias: Tensor,
}

/// Convolution backward pass: given `d_out = ∂L/∂output`, returns gradients
/// w.r.t. input, weight, and bias.
///
/// # Panics
///
/// Panics on any shape inconsistency with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    let (n, cin, h, w) = nchw(input);
    let (no, cout, ho, wo) = nchw(d_out);
    assert_eq!(n, no, "batch mismatch between input and d_out");
    assert_eq!(cout, spec.out_channels, "d_out channels mismatch");
    assert_eq!(
        (spec.out_size(h), spec.out_size(w)),
        (ho, wo),
        "d_out spatial mismatch"
    );
    let g = spec.groups;
    let (cg_in, cg_out) = (cin / g, cout / g);
    let k = spec.kernel;
    let col_rows = cg_in * k * k;
    let mut col = vec![0.0f32; col_rows * ho * wo];
    let mut dcol = vec![0.0f32; col_rows * ho * wo];
    let mut d_input = Tensor::zeros(input.shape());
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros([cout]);
    let wdat = weight.data();

    for s in 0..n {
        let in_s = &input.data()[s * cin * h * w..(s + 1) * cin * h * w];
        for gi in 0..g {
            im2col(
                &in_s[gi * cg_in * h * w..],
                cg_in,
                h,
                w,
                spec,
                ho,
                wo,
                &mut col,
            );
            let d_out_base = s * cout * ho * wo + gi * cg_out * ho * wo;
            let d_out_g = &d_out.data()[d_out_base..d_out_base + cg_out * ho * wo];
            let w_g = &wdat[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
            let dw_g =
                &mut d_weight.data_mut()[gi * cg_out * col_rows..(gi + 1) * cg_out * col_rows];
            // dW[oc][r] += Σ_p d_out[oc][p] * col[r][p]
            kernel::sgemm(d_out_g, &col, dw_g, cg_out, ho * wo, col_rows, false, true);
            // dcol[r][p] = Σ_oc w[oc][r] * d_out[oc][p]
            dcol.fill(0.0);
            kernel::sgemm(
                w_g,
                d_out_g,
                &mut dcol,
                col_rows,
                cg_out,
                ho * wo,
                true,
                false,
            );
            let din_base = s * cin * h * w + gi * cg_in * h * w;
            col2im(
                &dcol,
                cg_in,
                h,
                w,
                spec,
                ho,
                wo,
                &mut d_input.data_mut()[din_base..],
            );
        }
        // Bias gradient: sum over spatial positions.
        for oc in 0..cout {
            let base = (s * cout + oc) * ho * wo;
            let sum: f32 = d_out.data()[base..base + ho * wo].iter().sum();
            d_bias.data_mut()[oc] += sum;
        }
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight,
        bias: d_bias,
    }
}

fn nchw(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        4,
        "expected NCHW tensor, got {}",
        t.shape()
    );
    let sh = t.shape();
    let d = sh.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive direct convolution used as a reference implementation.
    fn conv_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let sh = input.shape();
        let d = sh.dims();
        let (n, _cin, h, w) = (d[0], d[1], d[2], d[3]);
        let (ho, wo) = (spec.out_size(h), spec.out_size(w));
        let g = spec.groups;
        let (cg_in, cg_out) = (spec.in_channels / g, spec.out_channels / g);
        let k = spec.kernel;
        let mut out = Tensor::zeros([n, spec.out_channels, ho, wo]);
        for s in 0..n {
            for gi in 0..g {
                for oc in 0..cg_out {
                    let oc_abs = gi * cg_out + oc;
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = bias.map_or(0.0, |b| b.data()[oc_abs]);
                            for ic in 0..cg_in {
                                let ic_abs = gi * cg_in + ic;
                                for ky in 0..k {
                                    for kx in 0..k {
                                        let iy = (oy * spec.stride + ky) as isize
                                            - spec.padding as isize;
                                        let ix = (ox * spec.stride + kx) as isize
                                            - spec.padding as isize;
                                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize
                                        {
                                            continue;
                                        }
                                        let iv = input.data()[((s * spec.in_channels + ic_abs)
                                            * h
                                            + iy as usize)
                                            * w
                                            + ix as usize];
                                        let wv = weight.data()
                                            [((oc_abs * cg_in + ic) * k + ky) * k + kx];
                                        acc += iv * wv;
                                    }
                                }
                            }
                            out.data_mut()
                                [((s * spec.out_channels + oc_abs) * ho + oy) * wo + ox] = acc;
                        }
                    }
                }
            }
        }
        out
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn forward_matches_naive_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let input = init::normal([2, 3, 5, 5], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        let bias = init::normal([4], 0.0, 0.1, &mut rng);
        close(
            &conv2d_forward(&input, &weight, Some(&bias), &spec),
            &conv_naive(&input, &weight, Some(&bias), &spec),
            1e-4,
        );
    }

    #[test]
    fn forward_matches_naive_strided_grouped() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = Conv2dSpec::new(4, 6, 3, 2, 1).with_groups(2);
        let input = init::normal([1, 4, 7, 7], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        close(
            &conv2d_forward(&input, &weight, None, &spec),
            &conv_naive(&input, &weight, None, &spec),
            1e-4,
        );
    }

    #[test]
    fn forward_matches_naive_depthwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = Conv2dSpec::new(4, 4, 3, 1, 1).with_groups(4);
        let input = init::normal([2, 4, 6, 6], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        close(
            &conv2d_forward(&input, &weight, None, &spec),
            &conv_naive(&input, &weight, None, &spec),
            1e-4,
        );
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = Conv2dSpec::new(2, 3, 3, 2, 1);
        let input = init::normal([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let weight = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
        // Loss = sum(output * seed) for a fixed random seed tensor.
        let out = conv2d_forward(&input, &weight, None, &spec);
        let seed = init::normal(out.shape(), 0.0, 1.0, &mut rng);
        let grads = conv2d_backward(&input, &weight, &seed, &spec);

        let eps = 1e-3f32;
        // Check a sample of weight coordinates.
        for idx in [0usize, 5, 11, 17] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&input, &wp, None, &spec).dot(&seed);
            let lm = conv2d_forward(&input, &wm, None, &spec).dot(&seed);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grads.weight.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2,
                "weight[{idx}]: fd={fd} analytic={an}"
            );
        }
        // Check a sample of input coordinates.
        for idx in [0usize, 7, 23, 49] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&ip, &weight, None, &spec).dot(&seed);
            let lm = conv2d_forward(&im, &weight, None, &spec).dot(&seed);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grads.input.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2,
                "input[{idx}]: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_spatial_positions() {
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::full([1, 1, 2, 2], 1.0);
        let weight = Tensor::full(spec.weight_shape(), 1.0);
        let d_out = Tensor::full([1, 1, 2, 2], 0.5);
        let grads = conv2d_backward(&input, &weight, &d_out, &spec);
        assert_eq!(grads.bias.data(), &[2.0]);
    }

    #[test]
    fn out_size_arithmetic() {
        let spec = Conv2dSpec::new(1, 1, 3, 2, 1);
        assert_eq!(spec.out_size(7), 4);
        assert_eq!(spec.out_size(8), 4);
        let s1 = Conv2dSpec::new(1, 1, 1, 1, 0);
        assert_eq!(s1.out_size(16), 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_groups_panics() {
        let _ = Conv2dSpec::new(3, 4, 3, 1, 1).with_groups(2);
    }
}
