//! Dense matrix multiplication entry points.
//!
//! A single GEMM backs the linear layers, the im2col convolution path, and
//! attention; it dispatches to the blocked SIMD kernels in
//! [`crate::kernel`] (scalar reference under `CLADO_FORCE_SCALAR=1`).
//! Matrices are the first two dimensions of row-major [`Tensor`]s.

use crate::kernel;
use crate::Tensor;

/// Computes `C = A · B` for row-major 2-D tensors.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use clado_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.])?;
/// let c = matmul(&a, &b);
/// assert_eq!(c.data(), &[58., 64., 139., 154.]);
/// # Ok::<(), clado_tensor::ShapeMismatchError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "lhs");
    let (kb, n) = mat_dims(b, "rhs");
    assert_eq!(k, kb, "matmul inner dimensions disagree: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    gemm_into(a.data(), b.data(), c.data_mut(), m, k, n, false, false);
    c
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// # Panics
///
/// Panics if either input is not 2-D or the shared dimension disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a, "lhs");
    let (kb, n) = mat_dims(b, "rhs");
    assert_eq!(k, kb, "matmul_at_b shared dimension disagrees: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    gemm_into(a.data(), b.data(), c.data_mut(), m, k, n, true, false);
    c
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// # Panics
///
/// Panics if either input is not 2-D or the shared dimension disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "lhs");
    let (n, kb) = mat_dims(b, "rhs");
    assert_eq!(k, kb, "matmul_a_bt shared dimension disagrees: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    gemm_into(a.data(), b.data(), c.data_mut(), m, k, n, false, true);
    c
}

/// Transposes a 2-D tensor.
///
/// # Panics
///
/// Panics if the input is not 2-D.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = mat_dims(a, "input");
    let src = a.data();
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = src[i * n + j];
        }
    }
    Tensor::from_vec([n, m], out).expect("size preserved")
}

fn mat_dims(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        2,
        "{what} of a matrix op must be 2-D, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

/// Raw GEMM on slices: `c[m×n] = op(a) · op(b)` with optional transposes.
/// `a` is `m×k` (or `k×m` when `ta`), `b` is `k×n` (or `n×k` when `tb`).
/// Dispatches to the backend chosen by [`kernel::active_backend`].
#[allow(clippy::too_many_arguments)]
fn gemm_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
) {
    kernel::sgemm(a, b, c, m, k, n, ta, tb);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: [usize; 2], v: &[f32]) -> Tensor {
        Tensor::from_vec(shape, v.to_vec()).unwrap()
    }

    #[test]
    fn basic_matmul() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        assert_eq!(matmul(&a, &b).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t([2, 2], &[1., 2., 3., 4.]);
        let id = t([2, 2], &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).data(), a.data());
        assert_eq!(matmul(&id, &a).data(), a.data());
    }

    #[test]
    fn at_b_matches_reference() {
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(
            [3, 4],
            &[0.5, 1., -1., 2., 3., -0.5, 1., 0., 2., 2., 1., -3.],
        );
        let expect = matmul(&transpose(&a), &b);
        let got = matmul_at_b(&a, &b);
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn a_bt_matches_reference() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([4, 3], &[1., 0., 1., 2., 1., 0., 0., 1., 2., 1., 1., 1.]);
        let reference = matmul(&a, &transpose(&b));
        let got = matmul_a_bt(&a, &b);
        assert_eq!(got.data(), reference.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt.data(), a.data());
        assert_eq!(tt.shape(), a.shape());
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = t([2, 3], &[0.; 6]);
        let b = t([2, 2], &[0.; 4]);
        matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be 2-D")]
    fn non_matrix_input_panics() {
        let a = Tensor::zeros([2, 2, 2]);
        let b = Tensor::zeros([2, 2]);
        matmul(&a, &b);
    }
}
