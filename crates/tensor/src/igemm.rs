//! Real integer GEMM: int8 (and packed int4) matrix multiply with i32
//! accumulation and per-tensor / per-channel requantization.
//!
//! This is the execution half of mixed-precision quantization: the rest of
//! the repo *plans* bit-assignments by probing fake-quantized f32 weights;
//! these kernels actually *run* the quantized network on integer data.
//!
//! # Semantics
//!
//! [`quantize_i8`] applies exactly the same operation sequence as
//! `clado-quant`'s `fake_quant_symmetric` — `round(x / s)` clamped to the
//! signed level range — so `q[i] as f32 * s` is **bit-for-bit equal** to
//! the fake-quantized value. Products are accumulated in `i32`, which is
//! exact (no rounding ever happens inside the GEMM), so the scalar and
//! SIMD integer kernels return identical results on every input. The only
//! approximation relative to a fake-quant float forward is the final
//! requantization multiply and the float GEMM's own accumulation rounding.
//!
//! # Layout
//!
//! All integer GEMMs here are the dot-product (`A · Bᵀ`) form: `a` is
//! `m×k`, `b` is `n×k`, both row-major, so every output element is a dot
//! of two contiguous rows. Dense layers already store weights `[out, in]`
//! (this form directly); the conv integer path transposes the im2col
//! column matrix once per group, which is cheap next to the multiply.

use crate::kernel::{active_backend, Backend};

/// Signed level range of int8 (`BitWidth::of(8).signed_levels()`).
pub const I8_LEVELS: (i32, i32) = (-128, 127);
/// Signed level range of int4 (`BitWidth::of(4).signed_levels()`).
pub const I4_LEVELS: (i32, i32) = (-8, 7);

/// Quantizes `src` to signed integer levels with the same op sequence as
/// symmetric fake quantization: `round(x / scale)` clamped to
/// `[qmin, qmax]`. With `scale == 0.0` (all-zero tensor) every level is 0.
///
/// `q as f32 * scale` reproduces the fake-quantized value bit-for-bit,
/// with one caveat: a value that fake-quantizes to `-0.0` comes back as
/// `+0.0` (the integer domain has a single zero). The two compare equal
/// under every arithmetic operation.
///
/// # Panics
///
/// Panics unless `qmin` and `qmax` fit in `i8`.
pub fn quantize_i8(src: &[f32], scale: f32, qmin: i32, qmax: i32) -> Vec<i8> {
    assert!(
        (i8::MIN as i32..=i8::MAX as i32).contains(&qmin)
            && (i8::MIN as i32..=i8::MAX as i32).contains(&qmax),
        "levels [{qmin}, {qmax}] do not fit in i8"
    );
    if scale == 0.0 {
        return vec![0; src.len()];
    }
    let inv = 1.0 / scale;
    src.iter()
        .map(|&x| (x * inv).round().clamp(qmin as f32, qmax as f32) as i8)
        .collect()
}

/// Packs int4 levels (each in `[-8, 7]`) two to a byte: element `2i` in
/// the low nibble, `2i+1` in the high nibble. Odd lengths pad with 0.
///
/// # Panics
///
/// Panics if any level is outside the int4 range.
pub fn pack_i4(q: &[i8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(q.len().div_ceil(2));
    for pair in q.chunks(2) {
        let lo = pair[0];
        let hi = *pair.get(1).unwrap_or(&0);
        assert!(
            (-8..=7).contains(&lo) && (-8..=7).contains(&hi),
            "int4 level out of range: {lo}/{hi}"
        );
        out.push(((lo as u8) & 0x0F) | (((hi as u8) & 0x0F) << 4));
    }
    out
}

/// Unpacks [`pack_i4`] output back to `len` sign-extended int8 levels.
pub fn unpack_i4(packed: &[u8], len: usize) -> Vec<i8> {
    assert!(packed.len() * 2 >= len, "packed buffer too short for {len}");
    let mut out = Vec::with_capacity(len);
    for (i, &byte) in packed.iter().enumerate() {
        // Shift to the top of the byte, then arithmetic-shift back down to
        // sign-extend the nibble.
        out.push(((byte << 4) as i8) >> 4);
        if 2 * i + 1 < len {
            out.push((byte as i8) >> 4);
        }
        if out.len() >= len {
            break;
        }
    }
    out.truncate(len);
    out
}

/// Weight-scale layout for requantization.
#[derive(Debug, Clone, Copy)]
pub enum Scales<'a> {
    /// One scale for the whole weight tensor.
    PerTensor(f32),
    /// One scale per output channel (length `n` of the GEMM).
    PerChannel(&'a [f32]),
}

impl Scales<'_> {
    fn at(&self, j: usize) -> f32 {
        match self {
            Scales::PerTensor(s) => *s,
            Scales::PerChannel(s) => s[j],
        }
    }
}

/// `C[m×n] = A[m×k] · B[n×k]ᵀ` over int8 with exact i32 accumulation.
///
/// Dispatches to the AVX2 dot kernel when available; scalar and SIMD paths
/// are bit-identical because integer accumulation never rounds.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn igemm_i8_a_bt(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "output length");
    let use_avx2 = matches!(active_backend(), Backend::Avx2Fma);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cij) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *cij = if use_avx2 {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: Avx2Fma backend implies AVX2 is present.
                unsafe {
                    dot_i8_avx2(a_row, b_row)
                }
                #[cfg(not(target_arch = "x86_64"))]
                dot_i8_scalar(a_row, b_row)
            } else {
                dot_i8_scalar(a_row, b_row)
            };
        }
    }
}

/// [`igemm_i8_a_bt`] with `b` stored as packed int4 rows: row `j` occupies
/// `ceil(k/2)` bytes starting at `j * ceil(k/2)`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn igemm_i4_a_bt(a: &[i8], b_packed: &[u8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    let row_bytes = k.div_ceil(2);
    assert_eq!(b_packed.len(), n * row_bytes, "packed rhs length");
    assert_eq!(c.len(), m * n, "output length");
    // Unpack each weight row once and reuse it across all m activation
    // rows: unpacking is O(nk) total instead of O(mnk).
    let mut row = vec![0i8; k];
    let use_avx2 = matches!(active_backend(), Backend::Avx2Fma);
    for j in 0..n {
        let packed_row = &b_packed[j * row_bytes..(j + 1) * row_bytes];
        for (idx, slot) in row.iter_mut().enumerate() {
            let byte = packed_row[idx / 2];
            *slot = if idx % 2 == 0 {
                ((byte << 4) as i8) >> 4
            } else {
                (byte as i8) >> 4
            };
        }
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            c[i * n + j] = if use_avx2 {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: Avx2Fma backend implies AVX2 is present.
                unsafe {
                    dot_i8_avx2(a_row, &row)
                }
                #[cfg(not(target_arch = "x86_64"))]
                dot_i8_scalar(a_row, &row)
            } else {
                dot_i8_scalar(a_row, &row)
            };
        }
    }
}

/// Converts an i32 accumulator matrix back to f32: `out[i][j] = acc[i][j]
/// · a_scale · w_scale(j)`, where column `j` is output channel `j`.
///
/// # Panics
///
/// Panics on length mismatches (including per-channel scale length ≠ `n`).
pub fn requantize(acc: &[i32], n: usize, a_scale: f32, w_scales: Scales<'_>, out: &mut [f32]) {
    assert_eq!(acc.len(), out.len(), "requantize length mismatch");
    assert!(n > 0 && acc.len().is_multiple_of(n), "bad column count");
    if let Scales::PerChannel(s) = w_scales {
        assert_eq!(s.len(), n, "per-channel scale length");
    }
    for (row_acc, row_out) in acc.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
        for j in 0..n {
            row_out[j] = row_acc[j] as f32 * (a_scale * w_scales.at(j));
        }
    }
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Int8 dot product: 16 lanes sign-extended to i16, pair-summed into i32
/// by `madd`. Exact — identical to the scalar path on every input.
///
/// # Safety
///
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let k = a.len().min(b.len());
    let mut acc = _mm256_setzero_si256();
    let mut p = 0;
    while p + 16 <= k {
        let va = _mm_loadu_si128(a.as_ptr().add(p).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(p).cast());
        let wa = _mm256_cvtepi8_epi16(va);
        let wb = _mm256_cvtepi8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        p += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let sum4 = _mm_add_epi32(lo, hi);
    let sum2 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0b01_00_11_10));
    let sum1 = _mm_add_epi32(sum2, _mm_shuffle_epi32(sum2, 0b00_00_00_01));
    let mut total = _mm_cvtsi128_si32(sum1);
    while p < k {
        total += *a.get_unchecked(p) as i32 * *b.get_unchecked(p) as i32;
        p += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn quantize_matches_fake_quant_op_order() {
        let w = fill(257, 9);
        let scale = 0.0123f32;
        let q = quantize_i8(&w, scale, I8_LEVELS.0, I8_LEVELS.1);
        for (&x, &qv) in w.iter().zip(&q) {
            // Reproduce fake_quant_symmetric exactly.
            let inv = 1.0 / scale;
            let expect = (x * inv).round().clamp(-128.0, 127.0);
            assert_eq!(qv as f32, expect);
            // Bit-for-bit, except -0.0 normalizes to +0.0 through i8.
            let dq = qv as f32 * scale;
            let reference = expect * scale;
            if reference == 0.0 {
                assert_eq!(dq, 0.0);
            } else {
                assert_eq!(dq.to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn zero_scale_quantizes_to_zero() {
        assert_eq!(quantize_i8(&[1.0, -2.0], 0.0, -128, 127), vec![0, 0]);
    }

    #[test]
    fn int4_pack_roundtrip() {
        let q: Vec<i8> = (-8..=7).chain([-8, 7, 0]).collect();
        let packed = pack_i4(&q);
        assert_eq!(unpack_i4(&packed, q.len()), q);
        // Odd length.
        let odd = vec![-8i8, 7, 3];
        assert_eq!(unpack_i4(&pack_i4(&odd), 3), odd);
    }

    #[test]
    fn i8_gemm_matches_wide_reference() {
        let (m, k, n) = (5, 67, 9);
        let a = quantize_i8(&fill(m * k, 1), 0.01, -128, 127);
        let b = quantize_i8(&fill(n * k, 2), 0.01, -128, 127);
        let mut c = vec![0i32; m * n];
        igemm_i8_a_bt(&a, &b, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect: i64 = (0..k)
                    .map(|p| a[i * k + p] as i64 * b[j * k + p] as i64)
                    .sum();
                assert_eq!(c[i * n + j] as i64, expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn i4_gemm_matches_unpacked_i8() {
        for k in [1usize, 2, 15, 16, 33] {
            let (m, n) = (3, 4);
            let a = quantize_i8(&fill(m * k, 3), 0.05, -128, 127);
            let q4 = quantize_i8(&fill(n * k, 4), 0.1, I4_LEVELS.0, I4_LEVELS.1);
            let mut packed = Vec::new();
            for row in q4.chunks(k) {
                packed.extend(pack_i4(row));
            }
            let mut c4 = vec![0i32; m * n];
            igemm_i4_a_bt(&a, &packed, &mut c4, m, k, n);
            let mut c8 = vec![0i32; m * n];
            igemm_i8_a_bt(&a, &q4, &mut c8, m, k, n);
            assert_eq!(c4, c8, "k={k}");
        }
    }

    #[test]
    fn requantize_per_tensor_and_per_channel() {
        let acc = vec![10i32, -20, 30, -40];
        let mut out = vec![0.0f32; 4];
        requantize(&acc, 2, 0.5, Scales::PerTensor(0.1), &mut out);
        assert_eq!(out, vec![0.5, -1.0, 1.5, -2.0]);
        requantize(&acc, 2, 0.5, Scales::PerChannel(&[0.1, 0.2]), &mut out);
        assert_eq!(out, vec![0.5, -2.0, 1.5, -4.0]);
    }
}
