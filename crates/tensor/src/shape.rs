//! Tensor shapes.
//!
//! A [`Shape`] describes the extent of a dense, row-major tensor with up to
//! four dimensions. Vision workloads use the NCHW convention: batch,
//! channels, height, width.

use std::fmt;

/// Maximum number of dimensions supported by [`Shape`].
pub const MAX_DIMS: usize = 4;

/// The extents of a dense, row-major tensor (up to four dimensions).
///
/// # Examples
///
/// ```
/// use clado_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4, 4]);
/// assert_eq!(s.ndim(), 4);
/// assert_eq!(s.numel(), 96);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_DIMS],
    ndim: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, has more than [`MAX_DIMS`] entries, or
    /// contains a zero extent.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "shape must have between 1 and {MAX_DIMS} dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape extents must be positive, got {dims:?}"
        );
        let mut out = [1; MAX_DIMS];
        out[..dims.len()].copy_from_slice(dims);
        Self {
            dims: out,
            ndim: dims.len(),
        }
    }

    /// A one-dimensional shape of length `n`.
    pub fn vector(n: usize) -> Self {
        Self::new(&[n])
    }

    /// A two-dimensional `rows × cols` shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols])
    }

    /// A four-dimensional NCHW shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::new(&[n, c, h, w])
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.ndim,
            "dimension index {i} out of range (ndim={})",
            self.ndim
        );
        self.dims[i]
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("×"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Shape::nchw(2, 3, 8, 8);
        assert_eq!(s.ndim(), 4);
        assert_eq!(s.dims(), &[2, 3, 8, 8]);
        assert_eq!(s.numel(), 384);
        assert_eq!(Shape::vector(5).dims(), &[5]);
        assert_eq!(Shape::matrix(2, 7).numel(), 14);
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(format!("{s}"), "[2×3]");
        assert_eq!(format!("{s:?}"), "Shape[2, 3]");
    }

    #[test]
    fn from_array() {
        let s: Shape = [4, 5].into();
        assert_eq!(s.dims(), &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "between 1 and")]
    fn rejects_empty() {
        Shape::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_extent() {
        Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dim_out_of_range_panics() {
        Shape::new(&[2, 3]).dim(2);
    }
}
