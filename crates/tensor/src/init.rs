//! Seeded random tensor initializers.
//!
//! All randomness in the workspace flows through explicit [`rand::rngs::StdRng`]
//! seeds so experiments are bit-for-bit reproducible.

use crate::{Shape, Tensor};
use rand::distributions::Distribution;
use rand::Rng;

/// Samples a tensor with i.i.d. uniform entries in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(
        lo < hi,
        "uniform range must satisfy lo < hi, got [{lo}, {hi})"
    );
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("size computed from shape")
}

/// Samples a tensor with i.i.d. normal entries `N(mean, std²)`.
///
/// # Panics
///
/// Panics if `std` is negative or non-finite.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    assert!(
        std >= 0.0 && std.is_finite(),
        "std must be non-negative and finite"
    );
    let shape = shape.into();
    let dist = StandardNormal;
    let data = (0..shape.numel())
        .map(|_| mean + std * dist.sample(rng))
        .collect();
    Tensor::from_vec(shape, data).expect("size computed from shape")
}

/// Kaiming (He) normal initialization for layers followed by ReLU-like
/// activations: `std = sqrt(2 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    normal(shape, 0.0, (2.0 / fan_in as f32).sqrt(), rng)
}

/// Xavier/Glorot uniform initialization: `U(±sqrt(6 / (fan_in + fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// A standard-normal distribution implemented with the Box–Muller transform,
/// avoiding a dependency on `rand_distr`.
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller: two uniforms → one normal (the second is discarded for
        // simplicity; initializer throughput is irrelevant here).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform([100], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = uniform([100], -0.5, 0.5, &mut rng2);
        assert_eq!(t.data(), t2.data());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = normal([10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| ((x as f64) - mean).powi(2))
            .sum::<f64>()
            / t.numel() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_normal([10_000], 50, &mut rng);
        let std = (t.norm_sq() / t.numel() as f64).sqrt();
        let expected = (2.0f64 / 50.0).sqrt();
        assert!((std - expected).abs() / expected < 0.1);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform([1000], 8, 8, &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(t.abs_max() <= bound);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_bad_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        uniform([2], 1.0, 1.0, &mut rng);
    }
}
