//! The dense tensor type and its elementwise operations.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Error produced when constructing or reshaping a [`Tensor`] with
/// inconsistent sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    expected: usize,
    actual: usize,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element count mismatch: shape requires {} elements but {} were provided",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

/// A dense, row-major `f32` tensor with up to four dimensions.
///
/// This is the numeric workhorse of the CLADO reproduction: network
/// activations, weights, and gradients are all `Tensor`s. Data is stored
/// contiguously; vision tensors use the NCHW layout.
///
/// # Examples
///
/// ```
/// use clado_tensor::Tensor;
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::full([2, 2], 0.5);
/// let c = &a + &b;
/// assert_eq!(c.data(), &[1.5, 2.5, 3.5, 4.5]);
/// # Ok::<(), clado_tensor::ShapeMismatchError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] if `data.len()` differs from the
    /// element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, ShapeMismatchError> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(ShapeMismatchError {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self, ShapeMismatchError> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(ShapeMismatchError {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Self {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other);
        Self {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sum of all elements (f64 accumulation for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.numel() as f64
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for NaN-free empty
    /// input, which [`Shape`] forbids, so in practice a finite value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value of any element.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm (f64 accumulation).
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Dot product with another same-shaped tensor (f64 accumulation).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Self) -> f64 {
        self.assert_same_shape(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum()
    }

    /// `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn assert_same_shape(&self, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "tensor shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        let preview: Vec<f32> = self.data.iter().copied().take(PREVIEW).collect();
        let ellipsis = if self.numel() > PREVIEW { ", …" } else { "" };
        write!(f, "Tensor({} {:?}{})", self.shape, preview, ellipsis)
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.shape().dims(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.data()[4], 5.0);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        let err = Tensor::from_vec([2, 2], vec![1.0]).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([4], vec![1., 2., 3., 4.]).unwrap();
        let r = t.reshape([2, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([3]).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([3], vec![10., 20., 30.]).unwrap();
        assert_eq!((&a + &b).data(), &[11., 22., 33.]);
        assert_eq!((&b - &a).data(), &[9., 18., 27.]);
        assert_eq!((&a * 2.0).data(), &[2., 4., 6.]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.data(), &[11., 22., 33.]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full([2], 1.0);
        let b = Tensor::full([2], 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[7.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[3.5, 3.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![-2., 0., 1., 5.]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.abs_max(), 5.0);
        assert!((t.norm_sq() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([3], vec![4., 5., 6.]).unwrap();
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_add_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        let _ = &a + &b;
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::zeros([2]);
        assert!(t.is_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.is_finite());
    }
}
