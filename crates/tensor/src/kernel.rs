//! The dispatching compute-kernel layer behind every GEMM in the crate.
//!
//! One entry point — [`sgemm`] — backs [`crate::matmul`], the transposed
//! variants, and the im2col convolution products. At process start the
//! layer picks a backend once:
//!
//! * **AVX2+FMA** — cache-blocked (MC/KC/NC) GEMM with an 8×8
//!   register-tiled microkernel over 256-bit lanes.
//! * **SSE2** — the same blocking with the microkernel split into two
//!   128-bit half-lanes (x86-64 baseline, always present).
//! * **Scalar** — the original `ikj`-ordered loops. This path is the
//!   *bitwise reference*: its floating-point operation order is frozen, so
//!   results under `CLADO_FORCE_SCALAR=1` are bit-for-bit identical to the
//!   pre-kernel-layer implementation (and to any older journal/matrix
//!   artifacts produced by it).
//!
//! # Determinism contract
//!
//! Backend selection happens once per process ([`active_backend`]), so a
//! run never mixes accumulation orders. The SIMD paths reassociate the
//! k-loop (8 partial sums per output element) and therefore differ from
//! the scalar path by normal floating-point reassociation error — bounded
//! in practice by a few ULP per accumulated term (the property suite
//! asserts a ULP-scaled tolerance across shapes). Quantization kernels in
//! `clado-quant` stay scalar on purpose, so Δw probes and fake-quant
//! semantics are backend-independent.
//!
//! Tiny products (`m·k·n` below [`SIMD_FLOP_THRESHOLD`]) stay on the
//! scalar path even when SIMD is available: packing two operand panels
//! costs more than the multiply saves.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Row-block size: panel of `op(A)` rows kept hot in L2 while it streams
/// over the packed B panel.
const MC: usize = 64;
/// Depth-block size: the shared dimension is consumed KC at a time so one
/// packed A panel (MC×KC) fits comfortably in L2.
const KC: usize = 256;
/// Column-block size: packed B panel (KC×NC) sized for L3/L2 residency.
const NC: usize = 1024;
/// Microkernel register tile: 8 rows × 8 columns of C.
const MR: usize = 8;
/// Microkernel register tile width (one 256-bit lane of f32).
const NR: usize = 8;
/// Below this many multiply-adds the packed SIMD path loses to the plain
/// scalar loops; measured crossover on the bench host is ~2–4k.
#[doc(hidden)]
pub const SIMD_FLOP_THRESHOLD: usize = 4096;
/// Products with fewer `op(A)` rows than this skip panel packing entirely
/// and stream B through the broadcast skinny-M kernel: with so few rows
/// the packed B panel is used once or twice, so packing costs more than
/// the multiply (im2col convolutions sit squarely in this regime).
#[cfg(target_arch = "x86_64")]
const SKINNY_M_MAX: usize = 16;

/// A compute backend for the f32 GEMM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Reference `ikj` loops; bitwise-frozen operation order.
    Scalar,
    /// 128-bit SSE2 microkernel (x86-64 baseline).
    Sse2,
    /// 256-bit AVX2 microkernel with fused multiply-add.
    Avx2Fma,
}

impl Backend {
    /// Stable kernel identifier recorded in telemetry manifests.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2-8x8",
            Backend::Avx2Fma => "avx2-fma-8x8",
        }
    }
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// Process-wide backend override: 0 = none, otherwise `discriminant + 1`.
/// Benchmarks pin the scalar path through this to time a scalar-float
/// baseline in the same process as the SIMD run.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn detect_backend() -> Backend {
    if std::env::var("CLADO_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Backend::Avx2Fma;
        }
        // SSE2 is part of the x86-64 baseline; detection cannot fail, but
        // keep the check so the dispatch logic reads uniformly.
        if std::arch::is_x86_feature_detected!("sse2") {
            return Backend::Sse2;
        }
    }
    Backend::Scalar
}

/// The backend every dispatched GEMM in this process uses, selected once
/// on first use. `CLADO_FORCE_SCALAR=1` (read at selection time) pins the
/// scalar reference path. A live [`force_backend`] override (bench-only)
/// takes precedence over the cached selection.
pub fn active_backend() -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Sse2,
        3 => Backend::Avx2Fma,
        _ => *BACKEND.get_or_init(detect_backend),
    }
}

/// Overrides the dispatched backend process-wide until called again with
/// `None`. Bench-only: lets one process time both the SIMD and scalar
/// float paths. Callers must not request a backend the host lacks.
#[doc(hidden)]
pub fn force_backend(backend: Option<Backend>) {
    let code = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Sse2) => 2,
        Some(Backend::Avx2Fma) => 3,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

/// The active kernel's stable name (for run manifests and bench configs).
pub fn kernel_name() -> &'static str {
    active_backend().name()
}

/// Comma-separated list of the SIMD features detected on this CPU that
/// the kernel layer cares about (independent of which backend was
/// actually selected, so a forced-scalar run still records the host).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        for (name, present) in [
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                feats.push(name);
            }
        }
        feats.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::from("none")
    }
}

/// `C += op(A) · op(B)` on raw row-major slices, dispatched to the active
/// backend. `op(A)` is `m×k` (`a` stored `k×m` when `ta`), `op(B)` is
/// `k×n` (`b` stored `n×k` when `tb`), `c` is `m×n`.
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers validate shapes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
) {
    let backend = if m * k * n < SIMD_FLOP_THRESHOLD {
        Backend::Scalar
    } else {
        active_backend()
    };
    sgemm_with(backend, a, b, c, m, k, n, ta, tb);
}

/// `C = op(A) · op(B)` (overwrite, no accumulation): zeroes `c` and runs
/// [`sgemm`]. The skinny-M SIMD path skips the zero pass and writes its
/// accumulators directly — bit-identical to zero-then-accumulate, one
/// less sweep over `c`. Public (hidden) so the property suite can pin
/// that equivalence.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn sgemm_overwrite(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "output length");
    if m == 0 || n == 0 || k == 0 {
        c.fill(0.0);
        return;
    }
    let backend = if m * k * n < SIMD_FLOP_THRESHOLD {
        Backend::Scalar
    } else {
        active_backend()
    };
    #[cfg(target_arch = "x86_64")]
    if matches!(backend, Backend::Sse2 | Backend::Avx2Fma) && !ta && !tb && m < SKINNY_M_MAX {
        x86::sgemm_skinny_overwrite(a, b, c, m, k, n, backend);
        return;
    }
    c.fill(0.0);
    sgemm_with(backend, a, b, c, m, k, n, ta, tb);
}

/// [`sgemm`] with an explicit backend — the property suite uses this to
/// compare SIMD output against the scalar reference on the same inputs.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn sgemm_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "output length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match backend {
        Backend::Scalar => sgemm_scalar(a, b, c, m, k, n, ta, tb),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 | Backend::Avx2Fma => {
            // Skinny-M products (im2col convolutions have M = output
            // channels, often < 8) can't amortize panel packing: stream B
            // directly instead of going through the blocked path.
            if !ta && !tb && m < SKINNY_M_MAX {
                x86::sgemm_skinny(a, b, c, m, k, n, backend);
            } else {
                sgemm_blocked(a, b, c, m, k, n, ta, tb, backend);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => sgemm_scalar(a, b, c, m, k, n, ta, tb),
    }
}

/// The frozen scalar reference: identical operation order to the original
/// un-dispatched GEMM (sans the sparsity branches, which only skipped
/// exact-zero multiplicands).
#[allow(clippy::too_many_arguments)]
fn sgemm_scalar(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
) {
    match (ta, tb) {
        (false, false) => {
            // ikj order: streams through rows of B, accumulating into rows of C.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &aip) in a_row.iter().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cij, &bpj) in c_row.iter_mut().zip(b_row) {
                        *cij += aip * bpj;
                    }
                }
            }
        }
        (true, false) => {
            // a is k×m: c[i][j] += a[p][i] * b[p][j]
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &api) in a_row.iter().enumerate() {
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cij, &bpj) in c_row.iter_mut().zip(b_row) {
                        *cij += api * bpj;
                    }
                }
            }
        }
        (false, true) => {
            // b is n×k: c[i][j] = dot(a_row_i, b_row_j)
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, cij) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *cij += acc;
                }
            }
        }
        (true, true) => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i] * b[j * k + p];
                    }
                    c[i * n + j] += acc;
                }
            }
        }
    }
}

/// Reads `op(A)[i][p]` regardless of storage order.
#[inline(always)]
fn at_a(a: &[f32], i: usize, p: usize, m: usize, k: usize, ta: bool) -> f32 {
    if ta {
        a[p * m + i]
    } else {
        a[i * k + p]
    }
}

/// Reads `op(B)[p][j]` regardless of storage order.
#[inline(always)]
fn at_b(b: &[f32], p: usize, j: usize, k: usize, n: usize, tb: bool) -> f32 {
    if tb {
        b[j * k + p]
    } else {
        b[p * n + j]
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{at_a, at_b, Backend, KC, MC, MR, NC, NR};
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    thread_local! {
        /// Packing scratch reused across calls; sized once for the block
        /// parameters so the hot loop never allocates.
        static PACK: RefCell<(Vec<f32>, Vec<f32>)> =
            RefCell::new((vec![0.0; MC * KC], vec![0.0; KC * NC]));
    }

    /// Packs an `mc×kc` block of `op(A)` into MR-row panels, padded with
    /// zeros to a multiple of MR rows: panel-major, then `p`, then `r`.
    #[allow(clippy::too_many_arguments)]
    fn pack_a(
        a: &[f32],
        pack: &mut [f32],
        i0: usize,
        p0: usize,
        mc: usize,
        kc: usize,
        m: usize,
        k: usize,
        ta: bool,
    ) {
        let mut dst = 0;
        let mut i = 0;
        while i < mc {
            let rows = MR.min(mc - i);
            for p in 0..kc {
                for r in 0..MR {
                    pack[dst] = if r < rows {
                        at_a(a, i0 + i + r, p0 + p, m, k, ta)
                    } else {
                        0.0
                    };
                    dst += 1;
                }
            }
            i += MR;
        }
    }

    /// Packs a `kc×nc` block of `op(B)` into NR-column panels, padded with
    /// zeros to a multiple of NR columns: panel-major, then `p`, then `c`.
    #[allow(clippy::too_many_arguments)]
    fn pack_b(
        b: &[f32],
        pack: &mut [f32],
        p0: usize,
        j0: usize,
        kc: usize,
        nc: usize,
        k: usize,
        n: usize,
        tb: bool,
    ) {
        let mut dst = 0;
        let mut j = 0;
        while j < nc {
            let cols = NR.min(nc - j);
            for p in 0..kc {
                for c in 0..NR {
                    pack[dst] = if c < cols {
                        at_b(b, p0 + p, j0 + j + c, k, n, tb)
                    } else {
                        0.0
                    };
                    dst += 1;
                }
            }
            j += NR;
        }
    }

    /// 8×8 AVX2+FMA microkernel: `C[8×8] += Apanel · Bpanel` over `kc`
    /// terms. `a` is MR-interleaved, `b` is NR-interleaved; `c` points at
    /// an 8×8 tile with row stride `ldc`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `c` must be valid for 8 rows of 8 f32 at `ldc`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mk8x8_avx2(a: *const f32, b: *const f32, c: *mut f32, ldc: usize, kc: usize) {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut acc4 = _mm256_setzero_ps();
        let mut acc5 = _mm256_setzero_ps();
        let mut acc6 = _mm256_setzero_ps();
        let mut acc7 = _mm256_setzero_ps();
        for p in 0..kc {
            let bv = _mm256_loadu_ps(b.add(p * NR));
            let ap = a.add(p * MR);
            acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), bv, acc0);
            acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), bv, acc1);
            acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), bv, acc2);
            acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), bv, acc3);
            acc4 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(4)), bv, acc4);
            acc5 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(5)), bv, acc5);
            acc6 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(6)), bv, acc6);
            acc7 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(7)), bv, acc7);
        }
        for (r, acc) in [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7]
            .into_iter()
            .enumerate()
        {
            let crow = c.add(r * ldc);
            _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc));
        }
    }

    /// 8×8 SSE2 microkernel: same tile as the AVX2 kernel with each row
    /// held as two 128-bit half-lanes (multiply + add, no FMA).
    ///
    /// # Safety
    ///
    /// Requires SSE2; `c` must be valid for 8 rows of 8 f32 at `ldc`.
    #[target_feature(enable = "sse2")]
    unsafe fn mk8x8_sse2(a: *const f32, b: *const f32, c: *mut f32, ldc: usize, kc: usize) {
        let mut lo = [_mm_setzero_ps(); MR];
        let mut hi = [_mm_setzero_ps(); MR];
        for p in 0..kc {
            let bl = _mm_loadu_ps(b.add(p * NR));
            let bh = _mm_loadu_ps(b.add(p * NR + 4));
            let ap = a.add(p * MR);
            for r in 0..MR {
                let av = _mm_set1_ps(*ap.add(r));
                lo[r] = _mm_add_ps(lo[r], _mm_mul_ps(av, bl));
                hi[r] = _mm_add_ps(hi[r], _mm_mul_ps(av, bh));
            }
        }
        for r in 0..MR {
            let crow = c.add(r * ldc);
            _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow), lo[r]));
            _mm_storeu_ps(crow.add(4), _mm_add_ps(_mm_loadu_ps(crow.add(4)), hi[r]));
        }
    }

    /// Skinny-M GEMM (`ta = tb = false`): `C[m×n] += A[m×k] · B[k×n]`
    /// without packing. Works in 32-column strips: the strip of B
    /// (`k × 32` floats) stays L1-resident while each of the few A rows
    /// broadcasts through it. Per output element the k-loop accumulates
    /// in ascending order, like every other backend.
    pub(super) fn sgemm_skinny(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        backend: Backend,
    ) {
        sgemm_skinny_impl(a, b, c, m, k, n, backend, true);
    }

    /// Skinny-M GEMM in overwrite mode: `C = A · B`. The accumulators
    /// start at zero instead of loading `C`, which is bit-identical to
    /// zeroing `C` first and accumulating, minus one sweep over `C`.
    pub(super) fn sgemm_skinny_overwrite(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        backend: Backend,
    ) {
        sgemm_skinny_impl(a, b, c, m, k, n, backend, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn sgemm_skinny_impl(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        backend: Backend,
        accumulate: bool,
    ) {
        let mut j = 0;
        // SAFETY: strip bounds are checked before each call; the target
        // features are implied by the selected backend.
        unsafe {
            match backend {
                Backend::Avx2Fma => {
                    while j + 32 <= n {
                        // Row pairs share the B loads and double the
                        // independent FMA chains (8 per pair) — with very
                        // few rows a single row's 4 chains can't hide the
                        // FMA latency.
                        let mut i = 0;
                        while i + 2 <= m {
                            skinny_strip32x2_avx2(a, b, c, i, k, n, j, accumulate);
                            i += 2;
                        }
                        if i < m {
                            skinny_strip32_avx2(a, b, c, i, i + 1, k, n, j, accumulate);
                        }
                        j += 32;
                    }
                    while j + 8 <= n {
                        skinny_strip8_avx2(a, b, c, 0, m, k, n, j, accumulate);
                        j += 8;
                    }
                }
                _ => {
                    while j + 16 <= n {
                        skinny_strip16_sse2(a, b, c, m, k, n, j, accumulate);
                        j += 16;
                    }
                    while j + 4 <= n {
                        skinny_strip4_sse2(a, b, c, m, k, n, j, accumulate);
                        j += 4;
                    }
                }
            }
        }
        // Scalar tail for the last few columns.
        for jj in j..n {
            for i in 0..m {
                let mut acc = if accumulate { c[i * n + jj] } else { 0.0 };
                for p in 0..k {
                    acc = a[i * k + p].mul_add(b[p * n + jj], acc);
                }
                c[i * n + jj] = acc;
            }
        }
    }

    /// One 32-column strip of the skinny kernel (4 × 256-bit lanes),
    /// rows `i0..i1`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `j + 32 <= n`, and `i1 <= m`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn skinny_strip32_avx2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        i1: usize,
        k: usize,
        n: usize,
        j: usize,
        accumulate: bool,
    ) {
        for i in i0..i1 {
            let crow = c.as_mut_ptr().add(i * n + j);
            let z = _mm256_setzero_ps();
            let mut acc0 = if accumulate { _mm256_loadu_ps(crow) } else { z };
            let mut acc1 = if accumulate {
                _mm256_loadu_ps(crow.add(8))
            } else {
                z
            };
            let mut acc2 = if accumulate {
                _mm256_loadu_ps(crow.add(16))
            } else {
                z
            };
            let mut acc3 = if accumulate {
                _mm256_loadu_ps(crow.add(24))
            } else {
                z
            };
            for p in 0..k {
                let av = _mm256_broadcast_ss(a.get_unchecked(i * k + p));
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), acc1);
                acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(16)), acc2);
                acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(24)), acc3);
            }
            _mm256_storeu_ps(crow, acc0);
            _mm256_storeu_ps(crow.add(8), acc1);
            _mm256_storeu_ps(crow.add(16), acc2);
            _mm256_storeu_ps(crow.add(24), acc3);
        }
    }

    /// Two-row 32-column strip: rows `i` and `i + 1` share every B load
    /// and together keep 8 independent FMA chains in flight.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `j + 32 <= n`, and `i + 2 <= m`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn skinny_strip32x2_avx2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i: usize,
        k: usize,
        n: usize,
        j: usize,
        accumulate: bool,
    ) {
        let crow0 = c.as_mut_ptr().add(i * n + j);
        let crow1 = c.as_mut_ptr().add((i + 1) * n + j);
        let z = _mm256_setzero_ps();
        let mut r0a = if accumulate {
            _mm256_loadu_ps(crow0)
        } else {
            z
        };
        let mut r0b = if accumulate {
            _mm256_loadu_ps(crow0.add(8))
        } else {
            z
        };
        let mut r0c = if accumulate {
            _mm256_loadu_ps(crow0.add(16))
        } else {
            z
        };
        let mut r0d = if accumulate {
            _mm256_loadu_ps(crow0.add(24))
        } else {
            z
        };
        let mut r1a = if accumulate {
            _mm256_loadu_ps(crow1)
        } else {
            z
        };
        let mut r1b = if accumulate {
            _mm256_loadu_ps(crow1.add(8))
        } else {
            z
        };
        let mut r1c = if accumulate {
            _mm256_loadu_ps(crow1.add(16))
        } else {
            z
        };
        let mut r1d = if accumulate {
            _mm256_loadu_ps(crow1.add(24))
        } else {
            z
        };
        for p in 0..k {
            let a0 = _mm256_broadcast_ss(a.get_unchecked(i * k + p));
            let a1 = _mm256_broadcast_ss(a.get_unchecked((i + 1) * k + p));
            let bp = b.as_ptr().add(p * n + j);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            let b2 = _mm256_loadu_ps(bp.add(16));
            let b3 = _mm256_loadu_ps(bp.add(24));
            r0a = _mm256_fmadd_ps(a0, b0, r0a);
            r0b = _mm256_fmadd_ps(a0, b1, r0b);
            r0c = _mm256_fmadd_ps(a0, b2, r0c);
            r0d = _mm256_fmadd_ps(a0, b3, r0d);
            r1a = _mm256_fmadd_ps(a1, b0, r1a);
            r1b = _mm256_fmadd_ps(a1, b1, r1b);
            r1c = _mm256_fmadd_ps(a1, b2, r1c);
            r1d = _mm256_fmadd_ps(a1, b3, r1d);
        }
        _mm256_storeu_ps(crow0, r0a);
        _mm256_storeu_ps(crow0.add(8), r0b);
        _mm256_storeu_ps(crow0.add(16), r0c);
        _mm256_storeu_ps(crow0.add(24), r0d);
        _mm256_storeu_ps(crow1, r1a);
        _mm256_storeu_ps(crow1.add(8), r1b);
        _mm256_storeu_ps(crow1.add(16), r1c);
        _mm256_storeu_ps(crow1.add(24), r1d);
    }

    /// One 8-column strip of the skinny kernel, rows `i0..i1`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `j + 8 <= n`, and `i1 <= m`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn skinny_strip8_avx2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        i1: usize,
        k: usize,
        n: usize,
        j: usize,
        accumulate: bool,
    ) {
        for i in i0..i1 {
            let crow = c.as_mut_ptr().add(i * n + j);
            let mut acc = if accumulate {
                _mm256_loadu_ps(crow)
            } else {
                _mm256_setzero_ps()
            };
            for p in 0..k {
                let av = _mm256_broadcast_ss(a.get_unchecked(i * k + p));
                acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.as_ptr().add(p * n + j)), acc);
            }
            _mm256_storeu_ps(crow, acc);
        }
    }

    /// One 16-column strip of the skinny kernel (4 × 128-bit lanes).
    ///
    /// # Safety
    ///
    /// Requires SSE2 and `j + 16 <= n`.
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn skinny_strip16_sse2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j: usize,
        accumulate: bool,
    ) {
        for i in 0..m {
            let crow = c.as_mut_ptr().add(i * n + j);
            let z = _mm_setzero_ps();
            let mut acc0 = if accumulate { _mm_loadu_ps(crow) } else { z };
            let mut acc1 = if accumulate {
                _mm_loadu_ps(crow.add(4))
            } else {
                z
            };
            let mut acc2 = if accumulate {
                _mm_loadu_ps(crow.add(8))
            } else {
                z
            };
            let mut acc3 = if accumulate {
                _mm_loadu_ps(crow.add(12))
            } else {
                z
            };
            for p in 0..k {
                let av = _mm_set1_ps(*a.get_unchecked(i * k + p));
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm_add_ps(acc0, _mm_mul_ps(av, _mm_loadu_ps(bp)));
                acc1 = _mm_add_ps(acc1, _mm_mul_ps(av, _mm_loadu_ps(bp.add(4))));
                acc2 = _mm_add_ps(acc2, _mm_mul_ps(av, _mm_loadu_ps(bp.add(8))));
                acc3 = _mm_add_ps(acc3, _mm_mul_ps(av, _mm_loadu_ps(bp.add(12))));
            }
            _mm_storeu_ps(crow, acc0);
            _mm_storeu_ps(crow.add(4), acc1);
            _mm_storeu_ps(crow.add(8), acc2);
            _mm_storeu_ps(crow.add(12), acc3);
        }
    }

    /// One 4-column strip of the skinny kernel.
    ///
    /// # Safety
    ///
    /// Requires SSE2 and `j + 4 <= n`.
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn skinny_strip4_sse2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j: usize,
        accumulate: bool,
    ) {
        for i in 0..m {
            let crow = c.as_mut_ptr().add(i * n + j);
            let mut acc = if accumulate {
                _mm_loadu_ps(crow)
            } else {
                _mm_setzero_ps()
            };
            for p in 0..k {
                let av = _mm_set1_ps(*a.get_unchecked(i * k + p));
                acc = _mm_add_ps(acc, _mm_mul_ps(av, _mm_loadu_ps(b.as_ptr().add(p * n + j))));
            }
            _mm_storeu_ps(crow, acc);
        }
    }

    /// Cache-blocked GEMM driver shared by the SSE2 and AVX2 backends:
    /// GotoBLAS-style jc/pc/ic loops over packed panels, full 8×8
    /// microkernel tiles, edge tiles routed through a zero-padded scratch.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn sgemm_blocked(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        ta: bool,
        tb: bool,
        backend: Backend,
    ) {
        PACK.with(|pack| {
            let mut pack = pack.borrow_mut();
            let (pack_a_buf, pack_b_buf) = &mut *pack;
            let mut jc = 0;
            while jc < n {
                let nc = NC.min(n - jc);
                let nc_panels = nc.div_ceil(NR);
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    pack_b(b, pack_b_buf, pc, jc, kc, nc, k, n, tb);
                    let mut ic = 0;
                    while ic < m {
                        let mc = MC.min(m - ic);
                        let mc_panels = mc.div_ceil(MR);
                        pack_a(a, pack_a_buf, ic, pc, mc, kc, m, k, ta);
                        for ip in 0..mc_panels {
                            let rows = MR.min(mc - ip * MR);
                            let ap = &pack_a_buf[ip * kc * MR..];
                            for jp in 0..nc_panels {
                                let cols = NR.min(nc - jp * NR);
                                let bp = &pack_b_buf[jp * kc * NR..];
                                let row0 = ic + ip * MR;
                                let col0 = jc + jp * NR;
                                unsafe {
                                    if rows == MR && cols == NR {
                                        let cp = c.as_mut_ptr().add(row0 * n + col0);
                                        match backend {
                                            Backend::Avx2Fma => {
                                                mk8x8_avx2(ap.as_ptr(), bp.as_ptr(), cp, n, kc)
                                            }
                                            _ => mk8x8_sse2(ap.as_ptr(), bp.as_ptr(), cp, n, kc),
                                        }
                                    } else {
                                        let mut tile = [0.0f32; MR * NR];
                                        match backend {
                                            Backend::Avx2Fma => mk8x8_avx2(
                                                ap.as_ptr(),
                                                bp.as_ptr(),
                                                tile.as_mut_ptr(),
                                                NR,
                                                kc,
                                            ),
                                            _ => mk8x8_sse2(
                                                ap.as_ptr(),
                                                bp.as_ptr(),
                                                tile.as_mut_ptr(),
                                                NR,
                                                kc,
                                            ),
                                        }
                                        for r in 0..rows {
                                            let crow = &mut c[(row0 + r) * n + col0
                                                ..(row0 + r) * n + col0 + cols];
                                            for (cv, tv) in
                                                crow.iter_mut().zip(&tile[r * NR..r * NR + cols])
                                            {
                                                *cv += tv;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        ic += mc;
                    }
                    pc += kc;
                }
                jc += nc;
            }
        });
    }
}

#[cfg(target_arch = "x86_64")]
use x86::sgemm_blocked;

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] as f64 * b[p * n + j] as f64;
                }
            }
        }
        c.into_iter().map(|v| v as f32).collect()
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                v.push(Backend::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                v.push(Backend::Avx2Fma);
            }
        }
        v
    }

    #[test]
    fn all_backends_match_wide_reference() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 1, 5),
            (8, 8, 8),
            (9, 17, 11),
            (64, 64, 64),
            (65, 257, 70),
            (5, 300, 1030),
        ] {
            let a = fill(m * k, 1 + m as u64);
            let b = fill(k * n, 2 + n as u64);
            let expect = reference(&a, &b, m, k, n);
            for backend in backends() {
                let mut c = vec![0.0f32; m * n];
                sgemm_with(backend, &a, &b, &mut c, m, k, n, false, false);
                let tol = 1e-5 * (k as f32).max(1.0);
                for (i, (&x, &y)) in c.iter().zip(&expect).enumerate() {
                    assert!(
                        (x - y).abs() <= tol,
                        "{backend:?} ({m},{k},{n}) idx {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn transposed_forms_agree_across_backends() {
        let (m, k, n) = (13, 37, 21);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        // Build transposed storage.
        let mut a_t = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a[i * k + p];
            }
        }
        let mut b_t = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b[p * n + j];
            }
        }
        let mut expect = vec![0.0f32; m * n];
        sgemm_with(Backend::Scalar, &a, &b, &mut expect, m, k, n, false, false);
        for backend in backends() {
            for (lhs, rhs, ta, tb) in [
                (&a, &b_t, false, true),
                (&a_t, &b, true, false),
                (&a_t, &b_t, true, true),
            ] {
                let mut c = vec![0.0f32; m * n];
                sgemm_with(backend, lhs, rhs, &mut c, m, k, n, ta, tb);
                for (i, (&x, &y)) in c.iter().zip(&expect).enumerate() {
                    assert!(
                        (x - y).abs() <= 2e-4,
                        "{backend:?} (ta={ta},tb={tb}) idx {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let (m, k, n) = (16, 24, 16);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        for backend in backends() {
            let mut c = vec![1.0f32; m * n];
            sgemm_with(backend, &a, &b, &mut c, m, k, n, false, false);
            let mut plain = vec![0.0f32; m * n];
            sgemm_with(backend, &a, &b, &mut plain, m, k, n, false, false);
            for (x, y) in c.iter().zip(&plain) {
                assert!((x - (y + 1.0)).abs() <= 1e-5, "{x} vs {}", y + 1.0);
            }
        }
    }

    #[test]
    fn kernel_name_is_stable() {
        let b = active_backend();
        assert!(!b.name().is_empty());
        assert_eq!(b, active_backend(), "selection is cached");
    }
}
