//! Activation functions and row-wise normalization kernels.
//!
//! Activations come in forward/backward pairs; softmax variants operate on
//! the last dimension of a 2-D tensor (one row per sample/token).

use crate::Tensor;

/// ReLU forward: `max(x, 0)`.
pub fn relu_forward(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU backward: passes gradient where the *input* was positive.
pub fn relu_backward(x: &Tensor, d_out: &Tensor) -> Tensor {
    x.zip(d_out, |xi, g| if xi > 0.0 { g } else { 0.0 })
}

/// GELU forward (tanh approximation, as used by ViT).
pub fn gelu_forward(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

/// GELU backward via the analytic derivative of the tanh approximation.
pub fn gelu_backward(x: &Tensor, d_out: &Tensor) -> Tensor {
    x.zip(d_out, |xi, g| g * gelu_grad_scalar(xi))
}

/// Hard-swish forward: `x · relu6(x + 3) / 6` (MobileNetV3 activation).
pub fn hardswish_forward(x: &Tensor) -> Tensor {
    x.map(|v| v * (v + 3.0).clamp(0.0, 6.0) / 6.0)
}

/// Hard-swish backward.
pub fn hardswish_backward(x: &Tensor, d_out: &Tensor) -> Tensor {
    x.zip(d_out, |v, g| {
        let dv = if v <= -3.0 {
            0.0
        } else if v >= 3.0 {
            1.0
        } else {
            (2.0 * v + 3.0) / 6.0
        };
        g * dv
    })
}

/// Sigmoid forward.
pub fn sigmoid_forward(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Sigmoid backward, taking the *forward output* `y`.
pub fn sigmoid_backward_from_output(y: &Tensor, d_out: &Tensor) -> Tensor {
    y.zip(d_out, |yi, g| g * yi * (1.0 - yi))
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Row-wise softmax over the last dimension of a 2-D tensor.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = rows_cols(x);
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Backward of row-wise softmax given forward output `y` and upstream
/// gradient: `dx = y ⊙ (g − Σ g·y)` per row.
pub fn softmax_rows_backward(y: &Tensor, d_out: &Tensor) -> Tensor {
    let (rows, cols) = rows_cols(y);
    assert_eq!(y.shape(), d_out.shape(), "softmax backward shape mismatch");
    let mut dx = Tensor::zeros(y.shape());
    for r in 0..rows {
        let yr = &y.data()[r * cols..(r + 1) * cols];
        let gr = &d_out.data()[r * cols..(r + 1) * cols];
        let s: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        let dr = &mut dx.data_mut()[r * cols..(r + 1) * cols];
        for ((d, &yv), &gv) in dr.iter_mut().zip(yr).zip(gr) {
            *d = yv * (gv - s);
        }
    }
    dx
}

/// Row-wise log-softmax over the last dimension of a 2-D tensor.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = rows_cols(x);
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

fn rows_cols(t: &Tensor) -> (usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        2,
        "row-wise op expects 2-D tensor, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_pair() {
        let x = Tensor::from_vec([4], vec![-1., 0., 2., -3.]).unwrap();
        assert_eq!(relu_forward(&x).data(), &[0., 0., 2., 0.]);
        let g = Tensor::full([4], 1.0);
        assert_eq!(relu_backward(&x, &g).data(), &[0., 0., 1., 0.]);
    }

    #[test]
    fn gelu_reference_values() {
        // Reference values from the tanh-approximation formula.
        let x = Tensor::from_vec([3], vec![-1.0, 0.0, 1.0]).unwrap();
        let y = gelu_forward(&x);
        assert!((y.data()[0] - (-0.1588)).abs() < 1e-3);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = init::uniform([32], -2.5, 2.5, &mut rng);
        let g = Tensor::full([32], 1.0);
        let eps = 1e-3f32;
        for (fwd, bwd) in [
            (
                gelu_forward as fn(&Tensor) -> Tensor,
                gelu_backward as fn(&Tensor, &Tensor) -> Tensor,
            ),
            (hardswish_forward, hardswish_backward),
        ] {
            let analytic = bwd(&x, &g);
            for i in 0..x.numel() {
                // Skip points near hardswish kinks where FD is unreliable.
                let xi = x.data()[i];
                if (xi.abs() - 3.0).abs() < 5e-3 {
                    continue;
                }
                let mut p = x.clone();
                p.data_mut()[i] += eps;
                let mut m = x.clone();
                m.data_mut()[i] -= eps;
                let fd = (fwd(&p).sum() - fwd(&m).sum()) / (2.0 * eps as f64);
                assert!(
                    (fd as f32 - analytic.data()[i]).abs() < 5e-3,
                    "i={i} x={xi} fd={fd} analytic={}",
                    analytic.data()[i]
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., -1., 0., 100.]).unwrap();
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(y.data()[2] > y.data()[1] && y.data()[1] > y.data()[0]);
        assert!(y.data()[5] > 0.999); // large logit dominates without overflow
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = Tensor::from_vec([1, 4], vec![0.5, -1.0, 2.0, 0.0]).unwrap();
        let a = log_softmax_rows(&x);
        let b = softmax_rows(&x).map(|v| v.ln());
        for (u, v) in a.data().iter().zip(b.data()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = init::normal([2, 4], 0.0, 1.0, &mut rng);
        let seed = init::normal([2, 4], 0.0, 1.0, &mut rng);
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &seed);
        let eps = 1e-3f32;
        for i in 0..x.numel() {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let fd =
                (softmax_rows(&p).dot(&seed) - softmax_rows(&m).dot(&seed)) / (2.0 * eps as f64);
            assert!((fd as f32 - dx.data()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn sigmoid_pair() {
        let x = Tensor::from_vec([1], vec![0.0]).unwrap();
        let y = sigmoid_forward(&x);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let d = sigmoid_backward_from_output(&y, &Tensor::full([1], 1.0));
        assert!((d.data()[0] - 0.25).abs() < 1e-6);
    }
}
