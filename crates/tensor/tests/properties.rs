//! Property-based tests for the tensor kernels.

use clado_tensor::{matmul, matmul_a_bt, matmul_at_b, transpose, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_elems: usize) -> impl Strategy<Value = Tensor> {
    (1usize..=4, 1usize..=4)
        .prop_flat_map(move |(r, c)| {
            let n = (r * c).min(max_elems);
            (Just((r, c)), prop::collection::vec(-10.0f32..10.0, n..=n))
        })
        .prop_map(|((r, c), v)| Tensor::from_vec([r, c], v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative(a in tensor_strategy(16)) {
        let b = a.map(|v| v * 0.5 - 1.0);
        let ab = &a + &b;
        let ba = &b + &a;
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn axpy_matches_definition(a in tensor_strategy(16), alpha in -5.0f32..5.0) {
        let b = a.map(|v| v + 1.0);
        let mut c = a.clone();
        c.axpy(alpha, &b);
        for i in 0..a.numel() {
            let expect = a.data()[i] + alpha * b.data()[i];
            prop_assert!((c.data()[i] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_data(a in tensor_strategy(16)) {
        let n = a.numel();
        let r = a.reshape([n]).expect("same element count");
        prop_assert_eq!(r.data(), a.data());
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(16)) {
        let tt = transpose(&transpose(&a));
        prop_assert_eq!(tt.data(), a.data());
        prop_assert_eq!(tt.shape(), a.shape());
    }

    #[test]
    fn matmul_transpose_identities(
        rows in 1usize..4, inner in 1usize..4, cols in 1usize..4,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random fill from the seed.
        let fill = |n: usize, s: u64| -> Vec<f32> {
            (0..n).map(|i| {
                let x = (s.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 1442695040888963407)) >> 33;
                (x % 2000) as f32 / 100.0 - 10.0
            }).collect()
        };
        let a = Tensor::from_vec([rows, inner], fill(rows * inner, seed)).expect("sized");
        let b = Tensor::from_vec([inner, cols], fill(inner * cols, seed + 1)).expect("sized");
        let c = matmul(&a, &b);
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = transpose(&c);
        let rhs = matmul(&transpose(&b), &transpose(&a));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        // matmul_at_b(Aᵀ-stored, B) == matmul(A, B)
        let at = transpose(&a);
        let via_at = matmul_at_b(&at, &b);
        for (x, y) in via_at.data().iter().zip(c.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // matmul_a_bt(A, Bᵀ-stored) == matmul(A, B)
        let bt = transpose(&b);
        let via_bt = matmul_a_bt(&a, &bt);
        for (x, y) in via_bt.data().iter().zip(c.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn dot_is_symmetric_and_norm_consistent(a in tensor_strategy(16)) {
        let b = a.map(|v| 2.0 - v);
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-6);
        prop_assert!((a.dot(&a) - a.norm_sq()).abs() < 1e-6);
    }
}
