//! Property-based tests for the dispatching kernel layer: every SIMD
//! backend must agree with the frozen scalar reference within a
//! ULP-scaled tolerance on float GEMM and convolution, and exactly on the
//! integer GEMMs (i32 accumulation never rounds).

use clado_tensor::igemm::{
    igemm_i4_a_bt, igemm_i8_a_bt, pack_i4, quantize_i8, requantize, unpack_i4, Scales,
};
use clado_tensor::kernel::{sgemm_overwrite, sgemm_with, SIMD_FLOP_THRESHOLD};
use clado_tensor::{conv2d_forward, im2col_ld, Backend, Conv2dSpec, Tensor};
use proptest::prelude::*;

/// Backends available on this host (scalar always included).
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            v.push(Backend::Sse2);
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            v.push(Backend::Avx2Fma);
        }
    }
    v
}

/// Deterministic pseudo-random fill in roughly [-1, 1).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Per-element error bound for a k-term f32 dot product whose partial sums
/// were reassociated: a small multiple of `eps · Σ|aᵢ·bᵢ|`.
fn dot_tolerance(abs_sum: f32, k: usize) -> f32 {
    4.0 * f32::EPSILON * abs_sum * (k as f32).sqrt().max(1.0) + 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SIMD backend matches the scalar reference on all four
    /// transpose forms, across skinny (m < 16), microkernel-tiled, and
    /// degenerate (k = 1, n = 1) shapes.
    #[test]
    fn simd_gemm_matches_scalar_within_tolerance(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..70,
        seed in 0u64..1_000,
        ta_sel in 0usize..2,
        tb_sel in 0usize..2,
    ) {
        let (ta, tb) = (ta_sel == 1, tb_sel == 1);
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 1);
        // Absolute-value accumulation for the per-element tolerance.
        let at = |i: usize, p: usize| if ta { a[p * m + i] } else { a[i * k + p] };
        let bt = |p: usize, j: usize| if tb { b[j * k + p] } else { b[p * n + j] };
        let mut expect = vec![0.0f32; m * n];
        sgemm_with(Backend::Scalar, &a, &b, &mut expect, m, k, n, ta, tb);
        for backend in backends() {
            let mut c = vec![0.0f32; m * n];
            sgemm_with(backend, &a, &b, &mut c, m, k, n, ta, tb);
            for i in 0..m {
                for j in 0..n {
                    let abs_sum: f32 = (0..k).map(|p| (at(i, p) * bt(p, j)).abs()).sum();
                    let tol = dot_tolerance(abs_sum, k);
                    let (x, y) = (c[i * n + j], expect[i * n + j]);
                    prop_assert!(
                        (x - y).abs() <= tol,
                        "{backend:?} ({m},{k},{n}) ta={ta} tb={tb} [{i},{j}]: {x} vs {y} (tol {tol})"
                    );
                }
            }
        }
    }

    /// Overwrite-mode GEMM is bit-identical to zero-then-accumulate on
    /// the active backend (the skinny path skips the zero sweep).
    #[test]
    fn overwrite_gemm_is_bitwise_zero_then_accumulate(
        m in 1usize..20,
        k in 1usize..32,
        n in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 7);
        let mut via_overwrite = fill(m * n, seed + 13); // stale garbage
        sgemm_overwrite(&a, &b, &mut via_overwrite, m, k, n, false, false);
        // Same dispatch rule as the overwrite entry point: tiny products
        // stay scalar.
        let backend = if m * k * n < SIMD_FLOP_THRESHOLD {
            Backend::Scalar
        } else {
            clado_tensor::active_backend()
        };
        let mut via_zeroed = vec![0.0f32; m * n];
        sgemm_with(backend, &a, &b, &mut via_zeroed, m, k, n, false, false);
        for (i, (&x, &y)) in via_overwrite.iter().zip(&via_zeroed).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "idx {i}: {x} vs {y}");
        }
    }

    /// The dispatched convolution (fused, chunked-batch, or scalar im2col
    /// path, depending on backend and geometry) matches a naive direct
    /// convolution within a ULP-scaled tolerance. Shapes sweep padding,
    /// stride, groups, k = 1, and the fused-path widths (wo ∈ {4, 8, 16}).
    #[test]
    fn conv_forward_matches_naive(
        n in 1usize..3,
        hw_sel in 0usize..4,
        kernel_sel in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        groups_sel in 0usize..3,
        cg in 1usize..4,
        cout_mult in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let hw = [4usize, 7, 8, 16][hw_sel];
        let kernel = [1usize, 3][kernel_sel];
        if hw + 2 * padding < kernel {
            return Ok(());
        }
        let groups = [1usize, 2, 3][groups_sel];
        let cin = groups * cg;
        let cout = groups * cout_mult;
        let spec = Conv2dSpec::new(cin, cout, kernel, stride, padding).with_groups(groups);
        let input = Tensor::from_vec([n, cin, hw, hw], fill(n * cin * hw * hw, seed)).unwrap();
        let weight =
            Tensor::from_vec(spec.weight_shape(), fill(spec.weight_numel(), seed + 1)).unwrap();
        let bias = Tensor::from_vec([cout], fill(cout, seed + 2)).unwrap();
        let got = conv2d_forward(&input, &weight, Some(&bias), &spec);

        let (ho, wo) = (spec.out_size(hw), spec.out_size(hw));
        let kk = cg * kernel * kernel;
        for s in 0..n {
            for oc in 0..cout {
                let gi = oc / (cout / groups);
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0f64;
                        let mut abs = 0.0f32;
                        for c in 0..cg {
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    let iy = (oy * stride + ky) as isize - padding as isize;
                                    let ix = (ox * stride + kx) as isize - padding as isize;
                                    if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize {
                                        continue;
                                    }
                                    let iv = input.data()[((s * cin + gi * cg + c) * hw
                                        + iy as usize)
                                        * hw
                                        + ix as usize];
                                    let wv = weight.data()
                                        [(oc * cg + c) * kernel * kernel + ky * kernel + kx];
                                    acc += iv as f64 * wv as f64;
                                    abs += (iv * wv).abs();
                                }
                            }
                        }
                        acc += bias.data()[oc] as f64;
                        let got_v = got.data()[((s * cout + oc) * ho + oy) * wo + ox];
                        let tol = dot_tolerance(abs + bias.data()[oc].abs(), kk) + 1e-6;
                        prop_assert!(
                            (got_v - acc as f32).abs() <= tol,
                            "{spec:?} s={s} oc={oc} ({oy},{ox}): {got_v} vs {acc} (tol {tol})"
                        );
                    }
                }
            }
        }
    }

    /// `im2col_ld` (fast stride-1 row-staging path and the general
    /// segmented path) reproduces its definition exactly — the unfold is
    /// pure copies, so equality is bitwise.
    #[test]
    fn im2col_matches_definition_bitwise(
        cg in 1usize..4,
        hw_sel in 0usize..3,
        kernel_sel in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        extra_ld in 0usize..20,
        seed in 0u64..1_000,
    ) {
        let hw = [4usize, 7, 16][hw_sel];
        let kernel = [1usize, 3][kernel_sel];
        if hw + 2 * padding < kernel {
            return Ok(());
        }
        let spec = Conv2dSpec::new(cg, cg, kernel, stride, padding);
        let (ho, wo) = (spec.out_size(hw), spec.out_size(hw));
        let ld = ho * wo + extra_ld;
        let input = fill(cg * hw * hw, seed);
        let mut col = vec![f32::NAN; cg * kernel * kernel * ld];
        im2col_ld(&input, cg, hw, hw, &spec, ho, wo, &mut col, ld);
        let mut row = 0usize;
        for c in 0..cg {
            for ky in 0..kernel {
                for kx in 0..kernel {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            let expect = if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize
                            {
                                0.0
                            } else {
                                input[(c * hw + iy as usize) * hw + ix as usize]
                            };
                            let got = col[row * ld + oy * wo + ox];
                            prop_assert!(
                                got.to_bits() == expect.to_bits(),
                                "{spec:?} row {row} ({oy},{ox}): {got} vs {expect}"
                            );
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    /// The int8 GEMM (scalar or AVX2 `madd` path, whichever is active)
    /// equals a plain i32 reference exactly, including k = 1 and k not a
    /// multiple of the 16-lane step.
    #[test]
    fn igemm_i8_is_exact(
        m in 1usize..6,
        k in 1usize..40,
        n in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let qa: Vec<i8> = fill(m * k, seed).iter().map(|v| (v * 127.0) as i8).collect();
        let qb: Vec<i8> = fill(n * k, seed + 1).iter().map(|v| (v * 127.0) as i8).collect();
        let mut c = vec![0i32; m * n];
        igemm_i8_a_bt(&qa, &qb, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect: i32 = (0..k)
                    .map(|p| qa[i * k + p] as i32 * qb[j * k + p] as i32)
                    .sum();
                prop_assert_eq!(c[i * n + j], expect, "[{}, {}]", i, j);
            }
        }
    }

    /// Packed int4: pack/unpack round-trips and the packed GEMM equals the
    /// int8 GEMM over the unpacked levels exactly.
    #[test]
    fn igemm_i4_matches_unpacked_i8(
        m in 1usize..5,
        k in 1usize..24,
        n in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let levels = |len: usize, s: u64| -> Vec<i8> {
            fill(len, s).iter().map(|v| (v * 7.99).clamp(-8.0, 7.0) as i8).collect()
        };
        let qa = levels(m * k, seed);
        let qb = levels(n * k, seed + 1);
        // Rows are packed independently: row `j` occupies `ceil(k/2)`
        // bytes, so an odd `k` pads each row rather than straddling bytes.
        let packed: Vec<u8> = qb.chunks(k).flat_map(pack_i4).collect();
        let row_bytes = k.div_ceil(2);
        for (j, row) in qb.chunks(k).enumerate() {
            let unpacked = unpack_i4(&packed[j * row_bytes..(j + 1) * row_bytes], k);
            prop_assert_eq!(&unpacked, &row.to_vec());
        }
        let mut via_i4 = vec![0i32; m * n];
        igemm_i4_a_bt(&qa, &packed, &mut via_i4, m, k, n);
        let mut via_i8 = vec![0i32; m * n];
        igemm_i8_a_bt(&qa, &qb, &mut via_i8, m, k, n);
        prop_assert_eq!(via_i4, via_i8);
    }

    /// Requantization applies `acc · (a_scale · w_scale(j))` per element
    /// for both per-tensor and per-channel scales.
    #[test]
    fn requantize_matches_formula(
        m in 1usize..4,
        n in 1usize..6,
        a_scale in 0.001f32..2.0,
        seed in 0u64..1_000,
    ) {
        let acc: Vec<i32> = fill(m * n, seed).iter().map(|v| (v * 1e6) as i32).collect();
        let w_scales: Vec<f32> = fill(n, seed + 1).iter().map(|v| v.abs() + 0.01).collect();
        let mut out = vec![0.0f32; m * n];
        requantize(&acc, n, a_scale, Scales::PerChannel(&w_scales), &mut out);
        for i in 0..m {
            for j in 0..n {
                let expect = acc[i * n + j] as f32 * (a_scale * w_scales[j]);
                prop_assert!(out[i * n + j].to_bits() == expect.to_bits());
            }
        }
        requantize(&acc, n, a_scale, Scales::PerTensor(w_scales[0]), &mut out);
        for (idx, &got) in out.iter().enumerate() {
            let expect = acc[idx] as f32 * (a_scale * w_scales[0]);
            prop_assert!(got.to_bits() == expect.to_bits());
        }
    }

    /// `quantize_i8` levels dequantize bit-for-bit to the fake-quant
    /// value: `round(x / s).clamp(..) · s` (modulo `-0.0` vs `+0.0`).
    #[test]
    fn quantize_i8_roundtrips_fake_quant_semantics(
        len in 1usize..64,
        scale in 0.001f32..1.5,
        seed in 0u64..1_000,
    ) {
        let src = fill(len, seed);
        let q = quantize_i8(&src, scale, -127, 127);
        // Same op sequence as `fake_quant_symmetric_into`: multiply by the
        // reciprocal (not a division) so the comparison is bit-exact.
        let inv = 1.0 / scale;
        for (i, (&qi, &x)) in q.iter().zip(&src).enumerate() {
            let fake = (x * inv).round().clamp(-127.0, 127.0) * scale;
            let deq = qi as f32 * scale;
            prop_assert!(
                deq.to_bits() == fake.to_bits() || (deq == 0.0 && fake == 0.0),
                "idx {i}: {deq} vs {fake}"
            );
        }
    }
}
