//! End-to-end estimator behaviour: determinism across thread counts,
//! journal resume, budget accounting, CLSM v4 provenance, and the
//! assignment-regret gate the CI `estimators` job enforces.

use clado_core::{
    eval_loss, measure_sensitivities, sensitivities_from_bytes, sensitivities_to_bytes,
    AssignOptions, MeasureError, OmegaProvenance, SensitivityOptions,
};
use clado_estim::{
    assignment_regret, estimate_sensitivities, estimator_for, EstimatedOmega, EstimatorKind,
    EstimatorOptions,
};
use clado_models::{DataSplit, SynthVision, SynthVisionConfig};
use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
use clado_quant::{BitWidthSet, LayerSizes};
use clado_solver::harden_partial;
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A toy with enough layers that a 25% budget leaves real headroom above
/// the mandatory base+diagonal floor: one conv plus `extra + 1` linear
/// layers (I = extra + 2 quantizable layers).
fn setup(extra: usize) -> (Network, SynthVision) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut seq = Sequential::new()
        .push(
            "conv1",
            Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
        )
        .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
        .push("pool", GlobalAvgPool::new());
    for e in 0..extra {
        seq = seq
            .push(format!("mid{e}"), Linear::new(6, 6, &mut rng))
            .push(
                format!("midrelu{e}"),
                clado_nn::Activation::new(clado_nn::ActKind::Relu),
            );
    }
    let net = Network::new(seq.push("fc", Linear::new(6, 4, &mut rng)), 4);
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 4,
        img: 8,
        train: 48,
        val: 32,
        seed: 21,
        noise: 0.2,
        label_noise: 0.0,
    });
    (net, data)
}

fn sens_set(data: &SynthVision) -> DataSplit {
    data.train.subset(&(0..16).collect::<Vec<_>>())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clado-estim-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bitwise_equal(a: &EstimatedOmega, b: &EstimatedOmega, label: &str) {
    assert_eq!(
        a.matrix.base_loss.to_bits(),
        b.matrix.base_loss.to_bits(),
        "{label}: base loss differs"
    );
    let (ga, gb) = (a.matrix.matrix(), b.matrix.matrix());
    assert_eq!(ga.dim(), gb.dim(), "{label}: dimension differs");
    for i in 0..ga.dim() {
        for j in 0..ga.dim() {
            assert_eq!(
                ga.get(i, j).to_bits(),
                gb.get(i, j).to_bits(),
                "{label}: Ω[{i},{j}] differs"
            );
        }
    }
    assert_eq!(a.probes_spent, b.probes_spent, "{label}: spent differs");
    for i in 0..a.observed.dim() {
        for j in i..a.observed.dim() {
            assert_eq!(
                a.observed.get(i, j),
                b.observed.get(i, j),
                "{label}: mask[{i},{j}] differs"
            );
        }
    }
}

#[test]
fn grid_estimators_are_bitwise_identical_across_thread_counts() {
    let bits = BitWidthSet::new(&[2, 8]);
    for kind in [
        EstimatorKind::Sketched,
        EstimatorKind::Adaptive,
        EstimatorKind::BlockTopK,
    ] {
        let (mut net, data) = setup(4);
        let set = sens_set(&data);
        let mut opts = EstimatorOptions::new(kind);
        opts.seed = 0xD3;
        opts.measure.threads = 1;
        let serial = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("serial run");
        opts.measure.threads = 4;
        let threaded = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("threaded run");
        assert_bitwise_equal(&serial, &threaded, kind.name());
        assert!(serial.probe_fraction() <= 0.26, "{kind}: over budget");
    }
}

#[test]
fn estimation_resumes_bitwise_identically_from_a_partial_journal() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(4);
    let set = sens_set(&data);
    let mut opts = EstimatorOptions::new(EstimatorKind::BlockTopK);
    opts.measure.threads = 1;
    let reference = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("reference");

    // Full run into a journal, then drop one committed shard to simulate
    // a crash mid-sweep, then resume.
    let dir = temp_dir("resume");
    opts.measure.checkpoint_dir = Some(dir.clone());
    let first = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("journaled run");
    assert_bitwise_equal(&reference, &first, "journaled");
    let mut shards: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("journal dir")
        .map(|e| e.expect("entry").path())
        .collect();
    shards.sort();
    assert!(shards.len() > 2, "expected several shard files");
    std::fs::remove_file(shards.last().expect("one shard")).expect("drop a shard");

    opts.measure.resume = true;
    let resumed = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("resumed run");
    assert_bitwise_equal(&reference, &resumed, "resumed");
    assert!(
        resumed.matrix.stats.resumed > 0,
        "resume restored no probes"
    );
    // `probes_spent` is the plan's cost, not this process's: unchanged.
    assert_eq!(resumed.probes_spent, reference.probes_spent);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn estimator_journals_are_isolated_by_fingerprint() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(2);
    let set = sens_set(&data);
    let dir = temp_dir("fp-isolation");
    let mut opts = EstimatorOptions::new(EstimatorKind::Sketched);
    opts.measure.checkpoint_dir = Some(dir.clone());
    estimate_sensitivities(&mut net, &set, &bits, &opts).expect("sketched run");

    // Same directory, different estimator: the fingerprint must reject
    // the journal rather than silently mixing probe sets.
    let mut other = EstimatorOptions::new(EstimatorKind::Adaptive);
    other.measure.checkpoint_dir = Some(dir.clone());
    other.measure.resume = true;
    let err = estimate_sensitivities(&mut net, &set, &bits, &other)
        .expect_err("adaptive must not resume a sketched journal");
    assert!(
        matches!(err, MeasureError::Journal(_)),
        "expected a journal error, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_accounting_floors_and_caps() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(4);
    let set = sens_set(&data);
    let i = 6; // conv + 4 mid + fc
    let k = 2;
    let full = 1 + k * i + k * k * i * (i - 1) / 2;
    let mandatory = 1 + k * i;

    // A budget below the floor is raised to it (diagonal is mandatory).
    let mut opts = EstimatorOptions::new(EstimatorKind::Sketched);
    opts.probe_budget = 2;
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("floored run");
    assert_eq!(est.probes_spent, mandatory);
    assert_eq!(est.full_sweep_probes, full);

    // A budget above the sweep is capped: every entry observed.
    opts.probe_budget = 10 * full;
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("capped run");
    assert_eq!(est.probes_spent, full);
    assert!((est.observed.fraction() - 1.0).abs() < 1e-12);

    // The default budget is 25% of the sweep.
    opts.probe_budget = 0;
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("default run");
    assert!(est.probes_spent <= full / 4);
    assert!(est.probes_spent >= mandatory);
}

#[test]
fn full_budget_estimation_matches_exact_measurement_bitwise() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(2);
    let set = sens_set(&data);
    let exact = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
        .expect("exact measurement");
    for kind in [EstimatorKind::Adaptive, EstimatorKind::BlockTopK] {
        let mut opts = EstimatorOptions::new(kind);
        opts.probe_budget = usize::MAX;
        let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("full-budget run");
        // At full budget every probe is measured, so the raw entries must
        // equal the exact sweep's before projection; compare through the
        // shared PSD path.
        let (ge, gx) = (est.matrix.matrix(), &exact.psd_projected());
        for i in 0..gx.dim() {
            for j in 0..gx.dim() {
                assert_eq!(
                    ge.get(i, j).to_bits(),
                    gx.get(i, j).to_bits(),
                    "{kind}: Ω[{i},{j}] differs from exact"
                );
            }
        }
        assert_eq!(est.matrix.base_loss.to_bits(), exact.base_loss.to_bits());
    }
}

#[test]
fn hutchinson_is_diagonal_only_and_cheap() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(4);
    let set = sens_set(&data);
    let mut opts = EstimatorOptions::new(EstimatorKind::Hutchinson);
    opts.probe_budget = 9; // 4 Hutchinson probes
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("hutchinson");
    assert_eq!(est.probes_spent, 9);
    assert!(est.probe_fraction() < 0.25);
    let g = est.matrix.matrix();
    let k = 2;
    for i in 0..est.matrix.num_layers() {
        for j in 0..est.matrix.num_layers() {
            for m in 0..k {
                for n in 0..k {
                    let (u, v) = (i * k + m, j * k + n);
                    if i != j {
                        assert_eq!(g.get(u, v), 0.0, "cross term must vanish");
                        assert!(!est.observed.get(u.min(v), u.max(v)));
                    }
                }
            }
        }
    }
    assert_eq!(
        est.matrix.stats.provenance.estimator,
        OmegaProvenance::TAG_HUTCHINSON
    );
}

#[test]
fn estimated_omega_roundtrips_clsm_v4_with_provenance() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(2);
    let set = sens_set(&data);
    let mut opts = EstimatorOptions::new(EstimatorKind::Sketched);
    opts.seed = 77;
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("sketched");
    let prov = est.matrix.stats.provenance;
    assert_eq!(prov.estimator, OmegaProvenance::TAG_SKETCHED);
    assert_eq!(prov.seed, 77);
    assert!(prov.probe_budget > 0);

    let bytes = sensitivities_to_bytes(&est.matrix);
    let loaded = sensitivities_from_bytes(&bytes).expect("roundtrip");
    assert_eq!(loaded.stats.provenance, prov);
    let (ga, gb) = (est.matrix.matrix(), loaded.matrix());
    for i in 0..ga.dim() {
        for j in 0..ga.dim() {
            assert_eq!(ga.get(i, j).to_bits(), gb.get(i, j).to_bits());
        }
    }
}

#[test]
fn estimated_omega_passes_partial_hardening() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(3);
    let set = sens_set(&data);
    let opts = EstimatorOptions::new(EstimatorKind::BlockTopK);
    let est = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("blocktopk");
    let (_, report) =
        harden_partial(est.matrix.matrix(), &est.observed, false).expect("hardening succeeds");
    assert!(report.fraction() > 0.0 && report.fraction() <= 1.0);
    assert_eq!(report.observed, {
        let mut n = 0;
        for i in 0..est.observed.dim() {
            for j in i..est.observed.dim() {
                if est.observed.get(i, j) {
                    n += 1;
                }
            }
        }
        n
    });
}

/// The acceptance gate: at a 25% probe budget, the blocktopk and adaptive
/// estimators must reach an IQP assignment whose task loss is within 1%
/// of the exact-Ω assignment's. The CI `estimators` job runs this test.
#[test]
fn regret_gate_at_quarter_budget() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(4);
    let set = sens_set(&data);
    let eval = data.val.subset(&(0..24).collect::<Vec<_>>());
    let exact = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
        .expect("exact measurement");
    let sizes = LayerSizes::new(net.layer_param_counts());
    let budget_bits = sizes.budget_from_avg_bits(5.0);
    let full = exact.stats.evaluations;

    for kind in [EstimatorKind::BlockTopK, EstimatorKind::Adaptive] {
        let estimator = estimator_for(kind);
        let mut opts = EstimatorOptions::new(kind);
        opts.probe_budget = full / 4;
        let est = estimator
            .estimate(&mut net, &set, &bits, &opts)
            .expect("estimation");
        assert!(
            est.probes_spent <= full / 4,
            "{kind}: {} probes exceeds 25% of {full}",
            est.probes_spent
        );
        let regret = assignment_regret(
            &mut net,
            &eval,
            &exact,
            &est.matrix,
            &sizes,
            budget_bits,
            &AssignOptions::default(),
            opts.measure.scheme,
            opts.measure.batch_size,
        )
        .expect("regret evaluation");
        assert!(
            regret.relative <= 0.01,
            "{kind}: regret {:.4}% exceeds the 1% gate ({regret})",
            regret.relative * 100.0
        );
    }
}

#[test]
fn weights_are_restored_after_estimation_and_regret() {
    let bits = BitWidthSet::new(&[2, 8]);
    let (mut net, data) = setup(3);
    let set = sens_set(&data);
    let before = net.snapshot_weights();
    for kind in EstimatorKind::ALL {
        let opts = EstimatorOptions::new(kind);
        let _ = estimate_sensitivities(&mut net, &set, &bits, &opts).expect("estimation");
    }
    let after = net.snapshot_weights();
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.data(), b.data());
    }
    // Estimation must not disturb the base loss either.
    let l1 = eval_loss(&mut net, &set, 32);
    net.restore_weights(&before);
    let l2 = eval_loss(&mut net, &set, 32);
    assert_eq!(l1.to_bits(), l2.to_bits());
}
