//! Estimator quality accounting: probe cost, entry-wise error against an
//! exact Ω, and the metric that actually matters — the task-loss regret
//! of the IQP assignment solved under the estimate.

use crate::{EstimatedOmega, EstimatorKind};
use clado_core::{apply_quantization, assign_bits, eval_loss, AssignOptions, SensitivityMatrix};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{LayerSizes, QuantScheme};
use clado_solver::{IqpError, ObservedMask, SymMatrix};
use std::fmt;

/// Entry-wise error of an estimated Ω against the exact one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmegaError {
    /// RMSE over the observed upper-triangle entries — measures how well
    /// the probes themselves reproduce (should be ~0 for grid
    /// estimators, whose observed entries use the exact arithmetic).
    pub observed_rmse: f64,
    /// Relative Frobenius error of the full completed matrix,
    /// `‖Ω̂ − Ω‖_F / ‖Ω‖_F` — measures completion quality.
    pub full_rel_frobenius: f64,
}

/// Entry-wise error of `estimated` vs. `exact` under `mask` (see
/// [`OmegaError`]).
///
/// # Panics
///
/// Panics when the three dimensions disagree.
pub fn error_vs_exact(estimated: &SymMatrix, exact: &SymMatrix, mask: &ObservedMask) -> OmegaError {
    let n = exact.dim();
    assert_eq!(estimated.dim(), n, "matrix dimension mismatch");
    assert_eq!(mask.dim(), n, "mask dimension mismatch");
    let mut obs_sq = 0.0f64;
    let mut obs_n = 0usize;
    let mut diff_sq = 0.0f64;
    let mut exact_sq = 0.0f64;
    for i in 0..n {
        for j in i..n {
            let d = estimated.get(i, j) - exact.get(i, j);
            // Off-diagonal entries appear twice in the Frobenius norm.
            let w = if i == j { 1.0 } else { 2.0 };
            diff_sq += w * d * d;
            exact_sq += w * exact.get(i, j) * exact.get(i, j);
            if mask.get(i, j) {
                obs_sq += d * d;
                obs_n += 1;
            }
        }
    }
    OmegaError {
        observed_rmse: if obs_n > 0 {
            (obs_sq / obs_n as f64).sqrt()
        } else {
            0.0
        },
        full_rel_frobenius: if exact_sq > 0.0 {
            (diff_sq / exact_sq).sqrt()
        } else {
            diff_sq.sqrt()
        },
    }
}

/// Final-assignment regret: how much worse the quantized model's task
/// loss gets when the IQP is solved under the estimated Ω instead of the
/// exact one, at the same bit budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretReport {
    /// Task loss of the model quantized by the exact-Ω assignment.
    pub exact_task_loss: f64,
    /// Task loss of the model quantized by the estimated-Ω assignment.
    pub estimated_task_loss: f64,
    /// `estimated_task_loss − exact_task_loss` (≤ 0 means the estimate
    /// found an assignment at least as good).
    pub delta: f64,
    /// `delta / exact_task_loss` — the gate metric (≤ 0.01 means the
    /// estimated assignment costs at most 1% extra task loss).
    pub relative: f64,
    /// Average bits of the exact-Ω assignment.
    pub exact_avg_bits: f64,
    /// Average bits of the estimated-Ω assignment.
    pub estimated_avg_bits: f64,
}

impl fmt::Display for RegretReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task loss {:.6} (exact) vs {:.6} (estimated); regret {:+.6} ({:+.3}%)",
            self.exact_task_loss,
            self.estimated_task_loss,
            self.delta,
            self.relative * 100.0
        )
    }
}

/// Solves the IQP under both matrices at `budget_bits`, quantizes the
/// network under each assignment, and evaluates the task loss on
/// `eval_set` — the regret an estimator's user actually pays. Weights
/// are restored afterwards.
///
/// # Errors
///
/// Propagates [`IqpError`] from either solve.
#[allow(clippy::too_many_arguments)]
pub fn assignment_regret(
    network: &mut Network,
    eval_set: &DataSplit,
    exact: &SensitivityMatrix,
    estimated: &SensitivityMatrix,
    sizes: &LayerSizes,
    budget_bits: u64,
    options: &AssignOptions,
    scheme: QuantScheme,
    batch_size: usize,
) -> Result<RegretReport, IqpError> {
    let exact_assign = assign_bits(exact, sizes, budget_bits, options)?;
    let est_assign = assign_bits(estimated, sizes, budget_bits, options)?;

    let snapshot = apply_quantization(network, &exact_assign.bits, scheme);
    let exact_task_loss = eval_loss(network, eval_set, batch_size);
    network.restore_weights(&snapshot);

    let snapshot = apply_quantization(network, &est_assign.bits, scheme);
    let estimated_task_loss = eval_loss(network, eval_set, batch_size);
    network.restore_weights(&snapshot);

    let delta = estimated_task_loss - exact_task_loss;
    Ok(RegretReport {
        exact_task_loss,
        estimated_task_loss,
        delta,
        relative: delta / exact_task_loss.abs().max(f64::MIN_POSITIVE),
        exact_avg_bits: exact_assign.avg_bits(sizes),
        estimated_avg_bits: est_assign.avg_bits(sizes),
    })
}

/// Everything an estimation run reports: budget accounting, entry-wise
/// error when an exact Ω is available, and assignment regret when it was
/// evaluated.
#[derive(Debug, Clone)]
pub struct EstimatorReport {
    /// Which estimator produced the Ω.
    pub kind: EstimatorKind,
    /// Probes the plan spends (resume-independent).
    pub probes_spent: usize,
    /// Probe count of the exact full sweep.
    pub full_sweep_probes: usize,
    /// `probes_spent / full_sweep_probes`.
    pub probe_fraction: f64,
    /// Fraction of upper-triangle Ω entries backed by a measurement.
    pub observed_fraction: f64,
    /// Entry-wise error vs. an exact Ω (when one was available).
    pub error: Option<OmegaError>,
    /// Final-assignment regret vs. an exact Ω (when evaluated).
    pub regret: Option<RegretReport>,
}

impl fmt::Display for EstimatorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} / {} probes ({:.1}%), {:.1}% of entries observed",
            self.kind,
            self.probes_spent,
            self.full_sweep_probes,
            self.probe_fraction * 100.0,
            self.observed_fraction * 100.0
        )?;
        if let Some(e) = &self.error {
            write!(
                f,
                "; error: rmse(observed) {:.3e}, rel-Frobenius {:.3}",
                e.observed_rmse, e.full_rel_frobenius
            )?;
        }
        if let Some(r) = &self.regret {
            write!(f, "; regret: {r}")?;
        }
        Ok(())
    }
}

/// Assembles an [`EstimatorReport`] from an estimation result, computing
/// the entry-wise error when `exact` is supplied.
pub fn build_report(
    kind: EstimatorKind,
    estimated: &EstimatedOmega,
    exact: Option<&SensitivityMatrix>,
    regret: Option<RegretReport>,
) -> EstimatorReport {
    EstimatorReport {
        kind,
        probes_spent: estimated.probes_spent,
        full_sweep_probes: estimated.full_sweep_probes,
        probe_fraction: estimated.probe_fraction(),
        observed_fraction: estimated.observed.fraction(),
        error: exact
            .map(|e| error_vs_exact(estimated.matrix.matrix(), e.matrix(), &estimated.observed)),
        regret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_vs_exact_is_zero_for_identical_matrices() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(1, 2, -0.5);
        let mut mask = ObservedMask::new(3);
        for i in 0..3 {
            mask.set(i, i);
        }
        let e = error_vs_exact(&m, &m, &mask);
        assert_eq!(e.observed_rmse, 0.0);
        assert_eq!(e.full_rel_frobenius, 0.0);
    }

    #[test]
    fn error_vs_exact_measures_unobserved_divergence() {
        let mut exact = SymMatrix::zeros(2);
        exact.set(0, 0, 2.0);
        exact.set(1, 1, 2.0);
        exact.set(0, 1, 1.0);
        let mut est = exact.clone();
        est.set(0, 1, 0.0); // estimator zeroed the unobserved cross term
        let mut mask = ObservedMask::new(2);
        mask.set(0, 0);
        mask.set(1, 1);
        let e = error_vs_exact(&est, &exact, &mask);
        assert_eq!(e.observed_rmse, 0.0, "observed entries agree");
        // ‖diff‖² = 2·1², ‖exact‖² = 4+4+2·1 = 10.
        assert!((e.full_rel_frobenius - (2.0f64 / 10.0).sqrt()).abs() < 1e-12);
    }
}
