//! Matrix completion for partially-observed Ω.
//!
//! The sketched estimator observes a uniform subset of cross terms and
//! recovers the rest through symmetric low-rank alternating least
//! squares; the structured estimators treat unobserved cross terms as
//! zero (the locality prior's whole claim). Either way the result goes
//! through the solver's existing PSD projection so downstream IQP code
//! sees the same invariants as an exact Ω.

use crate::EstimatorKind;
use clado_solver::{ObservedMask, SymMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ridge added to each ALS normal-equation system; keeps the r×r solves
/// well-posed when a row has few observations.
const ALS_RIDGE: f64 = 1e-8;

/// Completes a partially-observed symmetric matrix by rank-`rank`
/// symmetric ALS on the observed entries of `g` (per `mask`), returning
/// a fully dense symmetric matrix in which **observed entries are kept
/// verbatim** and only unobserved entries are replaced by the low-rank
/// model `fᵤ·fᵥ`.
///
/// The factor is updated Jacobi-style — every row's new value is solved
/// against the *previous* iteration's factor — so the result is
/// independent of row-update order, and all randomness flows from
/// `seed`, keeping the completion bitwise deterministic.
///
/// # Panics
///
/// Panics when `mask.dim() != g.dim()` or `rank == 0`.
pub fn als_complete(
    g: &SymMatrix,
    mask: &ObservedMask,
    rank: usize,
    iters: usize,
    seed: u64,
) -> SymMatrix {
    let n = g.dim();
    assert_eq!(mask.dim(), n, "mask dimension must match the matrix");
    assert!(rank > 0, "ALS rank must be positive");
    let rank = rank.min(n);

    // Observation lists per row (including the diagonal, which the
    // planner always measures).
    let obs: Vec<Vec<usize>> = (0..n)
        .map(|u| (0..n).filter(|&v| mask.get(u, v)).collect())
        .collect();

    // Initialize F with seeded noise scaled so fᵤ·fᵤ starts near the
    // mean observed diagonal magnitude.
    let mean_diag = (0..n).map(|i| g.get(i, i).abs()).sum::<f64>() / n as f64;
    let scale = (mean_diag.max(f64::MIN_POSITIVE) / rank as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f: Vec<f64> = (0..n * rank)
        .map(|_| scale * (rng.gen_range(0.0f64..=1.0) * 2.0 - 1.0))
        .collect();

    let mut a = vec![0.0f64; rank * rank];
    let mut b = vec![0.0f64; rank];
    for _ in 0..iters {
        // Gauss–Seidel sweep in fixed row order 0..n: each row's normal
        // equations use the freshest factor rows. Serial with a fixed
        // order, so still bitwise deterministic.
        for u in 0..n {
            // Normal equations (λI + Σ_v fᵥfᵥᵀ) fᵤ = Σ_v G_uv fᵥ over
            // this row's observations.
            a.iter_mut().for_each(|x| *x = 0.0);
            b.iter_mut().for_each(|x| *x = 0.0);
            for r in 0..rank {
                a[r * rank + r] = ALS_RIDGE;
            }
            for &v in &obs[u] {
                let fv = &f[v * rank..(v + 1) * rank];
                let guv = g.get(u, v);
                if !guv.is_finite() {
                    continue;
                }
                for r in 0..rank {
                    b[r] += guv * fv[r];
                    for c in 0..rank {
                        a[r * rank + c] += fv[r] * fv[c];
                    }
                }
            }
            // Near-singular system: keep the previous row rather than
            // inject garbage.
            if let Some(x) = solve_dense(&mut a.clone(), &mut b.clone()) {
                f[u * rank..(u + 1) * rank].copy_from_slice(&x);
            }
        }
    }

    let mut out = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let v = if mask.get(i, j) {
                g.get(i, j)
            } else {
                let (fi, fj) = (&f[i * rank..(i + 1) * rank], &f[j * rank..(j + 1) * rank]);
                fi.iter().zip(fj).map(|(x, y)| x * y).sum()
            };
            out.set(i, j, v);
        }
    }
    out
}

/// Solves the dense system `a · x = b` (row-major `r×r`) by Gaussian
/// elimination with partial pivoting. Returns `None` when the pivot
/// collapses (singular to working precision).
fn solve_dense(a: &mut [f64], b: &mut [f64]) -> Option<Vec<f64>> {
    let r = b.len();
    for col in 0..r {
        let mut pivot = col;
        for row in (col + 1)..r {
            if a[row * r + col].abs() > a[pivot * r + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * r + col].abs() < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..r {
                a.swap(col * r + k, pivot * r + k);
            }
            b.swap(col, pivot);
        }
        let d = a[col * r + col];
        for row in (col + 1)..r {
            let m = a[row * r + col] / d;
            if m == 0.0 {
                continue;
            }
            for k in col..r {
                a[row * r + k] -= m * a[col * r + k];
            }
            b[row] -= m * b[col];
        }
    }
    let mut x = vec![0.0f64; r];
    for col in (0..r).rev() {
        let mut acc = b[col];
        for k in (col + 1)..r {
            acc -= a[col * r + k] * x[k];
        }
        x[col] = acc / a[col * r + col];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// Turns a partially-observed Ω (`g` + `observed`, e.g. a
/// [`clado_core::PartialAssembly`]) into a dense matrix ready for the
/// solver: sketched runs ALS completion over the unobserved entries, the
/// structured kinds keep them at zero (their locality prior), and every
/// kind ends with the solver's PSD projection. Distributed coordinators
/// call this on the assembled shard records to finish an estimation
/// sweep bitwise-identically to the single-process path.
pub fn complete_partial(
    kind: EstimatorKind,
    g: &SymMatrix,
    observed: &ObservedMask,
    rank: usize,
    als_iters: usize,
    seed: u64,
) -> SymMatrix {
    let dense = match kind {
        EstimatorKind::Sketched => als_complete(g, observed, rank, als_iters, seed),
        // Unobserved entries are already zero in the partial assembly.
        EstimatorKind::Adaptive | EstimatorKind::BlockTopK | EstimatorKind::Hutchinson => g.clone(),
    };
    dense.psd_project()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank1_matrix(f: &[f64]) -> SymMatrix {
        let n = f.len();
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                m.set(i, j, f[i] * f[j]);
            }
        }
        m
    }

    #[test]
    fn als_recovers_a_rank_one_matrix_from_half_the_entries() {
        let f = [1.0, -0.5, 2.0, 0.75, -1.25, 0.4];
        let truth = rank1_matrix(&f);
        let n = f.len();
        let mut g = SymMatrix::zeros(n);
        let mut mask = ObservedMask::new(n);
        // Observe the diagonal plus every other off-diagonal entry.
        let mut toggle = false;
        for i in 0..n {
            mask.set(i, i);
            g.set(i, i, truth.get(i, i));
            for j in (i + 1)..n {
                toggle = !toggle;
                if toggle {
                    mask.set(i, j);
                    g.set(i, j, truth.get(i, j));
                }
            }
        }
        let done = als_complete(&g, &mask, 2, 64, 7);
        for i in 0..n {
            for j in 0..n {
                let err = (done.get(i, j) - truth.get(i, j)).abs();
                assert!(
                    err < 1e-3,
                    "entry ({i},{j}): got {} want {} (err {err})",
                    done.get(i, j),
                    truth.get(i, j)
                );
            }
        }
    }

    #[test]
    fn als_keeps_observed_entries_verbatim() {
        let n = 4;
        let mut g = SymMatrix::zeros(n);
        let mut mask = ObservedMask::new(n);
        for i in 0..n {
            mask.set(i, i);
            g.set(i, i, 1.0 + i as f64);
        }
        mask.set(0, 2);
        g.set(0, 2, 0.125);
        let done = als_complete(&g, &mask, 2, 16, 3);
        assert_eq!(done.get(0, 2).to_bits(), 0.125f64.to_bits());
        for i in 0..n {
            assert_eq!(done.get(i, i).to_bits(), (1.0 + i as f64).to_bits());
        }
    }

    #[test]
    fn als_is_deterministic_for_a_seed() {
        let n = 5;
        let mut g = SymMatrix::zeros(n);
        let mut mask = ObservedMask::new(n);
        for i in 0..n {
            mask.set(i, i);
            g.set(i, i, (i + 1) as f64 * 0.5);
        }
        mask.set(1, 3);
        g.set(1, 3, 0.25);
        let a = als_complete(&g, &mask, 3, 24, 42);
        let b = als_complete(&g, &mask, 3, 24, 42);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits());
            }
        }
        let c = als_complete(&g, &mask, 3, 24, 43);
        let differs = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .any(|(i, j)| !mask.get(i, j) && a.get(i, j).to_bits() != c.get(i, j).to_bits());
        assert!(differs, "different seeds should change unobserved entries");
    }

    #[test]
    fn solve_dense_matches_known_solution() {
        let mut a = vec![4.0, 1.0, 1.0, 3.0];
        let mut b = vec![1.0, 2.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_rejects_singular_systems() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b).is_none());
    }
}
