//! Deterministic probe selection under a budget.
//!
//! The planner owns the part of estimation that must agree bitwise across
//! every execution mode: which pair probes get measured. Its inputs are
//! the estimator kind, the seed, the budget, and the diagonal
//! measurements — all of which are themselves bitwise deterministic — so
//! a single-process run, a threaded run, and every distributed worker
//! (each building its own planner from its own copy of the model) arrive
//! at the identical probe set. The adaptive kind refines its selection
//! from measured pair values, but only *within* one shard, so a shard
//! remains a self-contained, relocatable unit of work.

// Index-based loops are kept where they mirror the probe-grid layout.
#![allow(clippy::needless_range_loop)]
use crate::EstimatorKind;
use clado_core::journal::{ProbeId, ProbeRecord};
use clado_core::{MeasureError, ShardContext, ShardRunStats, ShardSpec};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Floor of any grid estimator's budget: the base probe plus the full
/// diagonal, which [`clado_solver::harden_partial`] requires.
pub(crate) fn mandatory_probes(num_layers: usize, k: usize) -> usize {
    1 + num_layers * k
}

/// Resolves a requested probe budget: `0` means the default 25% of the
/// full sweep; any request is floored at the mandatory base+diagonal
/// probes and capped at the full sweep.
pub(crate) fn resolve_budget(requested: usize, full_sweep: usize, mandatory: usize) -> usize {
    let want = if requested == 0 {
        full_sweep / 4
    } else {
        requested
    };
    want.clamp(mandatory, full_sweep)
}

/// One candidate pair probe of an outer shard, with its selection prior.
#[derive(Debug, Clone, Copy)]
struct PairCandidate {
    id: ProbeId,
    /// Canonical position within the outer shard's probe list (the order
    /// [`ShardContext::shard_probes`] emits) — the tie-break key.
    slot: usize,
    /// Inner layer index `j`.
    inner: usize,
    /// Diagonal-product prior `|Ω_ii(m) · Ω_jj(n)|`.
    score: f64,
}

/// Deterministic probe plan for one estimation configuration.
///
/// Built from locally-measured base and diagonal probes (memoized, so
/// [`ProbePlanner::run_shard`] serves the `Base`/`Diag` shards without
/// re-evaluating them); `Pair` shards evaluate only the planned subset.
pub struct ProbePlanner {
    kind: EstimatorKind,
    seed: u64,
    num_layers: usize,
    k: usize,
    base_loss: f64,
    /// Raw diagonal losses `L(w+Δ)`, indexed `[layer][bit]`; NaN marks a
    /// quarantined probe.
    diag_loss: Vec<Vec<f64>>,
    /// Diagonal Ω values `|2(L−base)|` used as selection priors
    /// (quarantined probes contribute 0, consistently everywhere).
    diag_omega: Vec<Vec<f64>>,
    /// Memoized base+diagonal records, grouped by shard in canonical
    /// shard order (`base, diag(0..I)`).
    mandatory: Vec<Vec<ProbeRecord>>,
    /// For sketched/blocktopk: the exact pair selection per outer shard,
    /// in canonical probe order. `None` for adaptive (two-round,
    /// value-dependent within the shard).
    fixed: Option<Vec<Vec<ProbeId>>>,
    /// Pair-probe budget per outer shard (adaptive; also recorded for
    /// fixed kinds so `planned_probes` is uniform).
    shard_budgets: Vec<usize>,
}

impl ProbePlanner {
    /// Builds a plan by measuring (or resuming) the base and diagonal
    /// probes on `net`, then selecting pair probes for `budget`.
    ///
    /// `resume` supplies already-journaled records; present base/diag
    /// records are reused instead of re-measured (they are bitwise
    /// identical either way). Returns the planner plus the freshly
    /// measured record groups (one per shard, for journaling) and their
    /// accumulated run stats.
    ///
    /// # Errors
    ///
    /// [`MeasureError::NonFiniteBaseLoss`] when the base loss stays
    /// non-finite after the quarantine retry.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        ctx: &ShardContext,
        net: &mut Network,
        set: &DataSplit,
        telemetry: &Telemetry,
        kind: EstimatorKind,
        budget: usize,
        seed: u64,
        resume: &HashMap<ProbeId, ProbeRecord>,
    ) -> Result<(Self, Vec<Vec<ProbeRecord>>, ShardRunStats), MeasureError> {
        let _span = telemetry.span("estim.plan");
        let num_layers = ctx.num_layers();
        let k = ctx.bits().len();
        let mut stats = ShardRunStats::default();
        let mut fresh: Vec<Vec<ProbeRecord>> = Vec::new();
        let mut mandatory: Vec<Vec<ProbeRecord>> = Vec::new();

        let mut run_mandatory_shard = |spec: ShardSpec, net: &mut Network| -> Vec<ProbeRecord> {
            let ids = ctx.shard_probes(spec);
            if let Some(recs) = ids
                .iter()
                .map(|id| resume.get(id).copied())
                .collect::<Option<Vec<_>>>()
            {
                return recs;
            }
            let (recs, s) = ctx.run_shard(net, set, spec, telemetry);
            stats.full_evals += s.full_evals;
            stats.cache_hits += s.cache_hits;
            stats.cache_builds += s.cache_builds;
            stats.retried += s.retried;
            stats.quarantined += s.quarantined;
            stats.seconds += s.seconds;
            fresh.push(recs.clone());
            recs
        };

        let base_recs = run_mandatory_shard(ShardSpec::Base, net);
        let base = base_recs[0];
        if base.quarantined || !base.loss.is_finite() {
            return Err(MeasureError::NonFiniteBaseLoss { loss: base.loss });
        }
        let base_loss = base.loss;
        mandatory.push(base_recs);

        let mut diag_loss = vec![vec![f64::NAN; k]; num_layers];
        for layer in 0..num_layers {
            let recs = run_mandatory_shard(
                ShardSpec::Diag {
                    layer: layer as u32,
                },
                net,
            );
            for r in &recs {
                if let ProbeId::Diag { bit, .. } = r.id {
                    diag_loss[layer][bit as usize] = r.loss;
                }
            }
            mandatory.push(recs);
        }
        let diag_omega: Vec<Vec<f64>> = diag_loss
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&l| {
                        if l.is_finite() {
                            (2.0 * (l - base_loss)).abs()
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();

        let mut planner = Self {
            kind,
            seed,
            num_layers,
            k,
            base_loss,
            diag_loss,
            diag_omega,
            mandatory,
            fixed: None,
            shard_budgets: vec![0; num_layers.saturating_sub(1)],
        };
        let pair_budget = budget.saturating_sub(mandatory_probes(num_layers, k));
        planner.select_pairs(pair_budget);
        Ok((planner, fresh, stats))
    }

    /// Candidate pair probes of one outer shard with their priors, in
    /// canonical probe order.
    fn candidates(&self, outer: usize) -> Vec<PairCandidate> {
        let k = self.k;
        let mut out = Vec::new();
        let mut slot = 0usize;
        for m in 0..k {
            for j in (outer + 1)..self.num_layers {
                for n in 0..k {
                    out.push(PairCandidate {
                        id: ProbeId::Pair {
                            layer_i: outer as u32,
                            bit_m: m as u32,
                            layer_j: j as u32,
                            bit_n: n as u32,
                        },
                        slot,
                        inner: j,
                        score: self.diag_omega[outer][m] * self.diag_omega[j][n],
                    });
                    slot += 1;
                }
            }
        }
        out
    }

    /// Fills `fixed`/`shard_budgets` from the pair budget. Pure function
    /// of (kind, seed, budget, diagonal values) — the determinism
    /// linchpin.
    fn select_pairs(&mut self, pair_budget: usize) {
        let outers = self.num_layers.saturating_sub(1);
        let per_outer: Vec<Vec<PairCandidate>> = (0..outers).map(|i| self.candidates(i)).collect();
        let total_pairs: usize = per_outer.iter().map(Vec::len).sum();
        let pair_budget = pair_budget.min(total_pairs);
        match self.kind {
            EstimatorKind::Sketched => {
                // Uniform subset without replacement over the global pair
                // index space — the classic matrix-completion sampling —
                // via a seeded partial Fisher–Yates.
                let mut pool: Vec<usize> = (0..total_pairs).collect();
                let mut rng = StdRng::seed_from_u64(self.seed);
                for t in 0..pair_budget {
                    let pick = rng.gen_range(t..total_pairs);
                    pool.swap(t, pick);
                }
                let mut chosen = pool[..pair_budget].to_vec();
                chosen.sort_unstable();
                let mut fixed: Vec<Vec<ProbeId>> = vec![Vec::new(); outers];
                let mut offsets = Vec::with_capacity(outers);
                let mut acc = 0usize;
                for cands in &per_outer {
                    offsets.push(acc);
                    acc += cands.len();
                }
                for g in chosen {
                    let outer = match offsets.binary_search(&g) {
                        Ok(i) => i,
                        Err(i) => i - 1,
                    };
                    fixed[outer].push(per_outer[outer][g - offsets[outer]].id);
                }
                self.shard_budgets = fixed.iter().map(Vec::len).collect();
                self.fixed = Some(fixed);
            }
            EstimatorKind::BlockTopK => {
                // BRECQ-style locality prior: all within-block pairs
                // first, then the top-k cross-block pairs by diagonal
                // product. Block width 2 layers.
                const BLOCK: usize = 2;
                let mut within: Vec<(usize, PairCandidate)> = Vec::new();
                let mut cross: Vec<(usize, PairCandidate)> = Vec::new();
                for (outer, cands) in per_outer.iter().enumerate() {
                    for c in cands {
                        if outer / BLOCK == c.inner / BLOCK {
                            within.push((outer, *c));
                        } else {
                            cross.push((outer, *c));
                        }
                    }
                }
                let by_score = |a: &(usize, PairCandidate), b: &(usize, PairCandidate)| {
                    b.1.score
                        .partial_cmp(&a.1.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                        .then(a.1.slot.cmp(&b.1.slot))
                };
                let mut picked: Vec<(usize, PairCandidate)> = if within.len() > pair_budget {
                    within.sort_by(by_score);
                    within.truncate(pair_budget);
                    within
                } else {
                    let k_cross = pair_budget - within.len();
                    cross.sort_by(by_score);
                    cross.truncate(k_cross);
                    within.extend(cross);
                    within
                };
                picked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.slot.cmp(&b.1.slot)));
                let mut fixed: Vec<Vec<ProbeId>> = vec![Vec::new(); outers];
                for (outer, c) in picked {
                    fixed[outer].push(c.id);
                }
                self.shard_budgets = fixed.iter().map(Vec::len).collect();
                self.fixed = Some(fixed);
            }
            EstimatorKind::Adaptive => {
                // Apportion the budget over outer shards by their total
                // prior mass (largest remainder, capped at the shard's
                // pair count); each shard then spends its own budget in
                // two rounds at evaluation time.
                let weights: Vec<f64> = per_outer
                    .iter()
                    .map(|cands| cands.iter().map(|c| c.score).sum())
                    .collect();
                let caps: Vec<usize> = per_outer.iter().map(Vec::len).collect();
                self.shard_budgets = apportion(pair_budget, &weights, &caps);
            }
            EstimatorKind::Hutchinson => {
                // Diagonal-only: no pair probes (handled by the
                // Hutchinson estimator, which never builds a planner).
            }
        }
    }

    /// Total probes this plan spends: base, diagonal, and every planned
    /// pair probe. Deterministic for a fixed (kind, seed, budget,
    /// configuration) — resume does not change what counts as spent.
    pub fn planned_probes(&self) -> usize {
        mandatory_probes(self.num_layers, self.k) + self.shard_budgets.iter().sum::<usize>()
    }

    /// The memoized base+diagonal records (flattened).
    pub fn mandatory_records(&self) -> Vec<ProbeRecord> {
        self.mandatory.iter().flatten().copied().collect()
    }

    /// Evaluates one shard under the plan. `Base`/`Diag` shards return
    /// the memoized records with zero cost; `Pair` shards evaluate the
    /// planned subset (two prior-refined rounds for the adaptive kind).
    pub fn run_shard(
        &self,
        ctx: &ShardContext,
        net: &mut Network,
        set: &DataSplit,
        spec: ShardSpec,
        telemetry: &Telemetry,
    ) -> (Vec<ProbeRecord>, ShardRunStats) {
        match spec {
            ShardSpec::Base => (self.mandatory[0].clone(), ShardRunStats::default()),
            ShardSpec::Diag { layer } => (
                self.mandatory[1 + layer as usize].clone(),
                ShardRunStats::default(),
            ),
            ShardSpec::Pair { outer } => {
                let budget = self.shard_budgets[outer as usize];
                if budget == 0 {
                    return (Vec::new(), ShardRunStats::default());
                }
                if let Some(fixed) = &self.fixed {
                    return ctx.run_probes(net, set, &fixed[outer as usize], telemetry);
                }
                self.run_adaptive_shard(ctx, net, set, outer as usize, budget, telemetry)
            }
        }
    }

    /// Two-round adaptive evaluation of one outer shard: round one takes
    /// the widest prior intervals; observed values then rescale the
    /// widths of unobserved entries sharing the inner layer, and round
    /// two takes the widest refreshed intervals. Self-contained, so the
    /// result is identical wherever the shard runs.
    fn run_adaptive_shard(
        &self,
        ctx: &ShardContext,
        net: &mut Network,
        set: &DataSplit,
        outer: usize,
        budget: usize,
        telemetry: &Telemetry,
    ) -> (Vec<ProbeRecord>, ShardRunStats) {
        let cands = self.candidates(outer);
        if budget >= cands.len() {
            let ids: Vec<ProbeId> = cands.iter().map(|c| c.id).collect();
            return ctx.run_probes(net, set, &ids, telemetry);
        }
        let by_width = |w: &[f64]| {
            let mut order: Vec<usize> = (0..cands.len()).collect();
            order.sort_by(|&a, &b| {
                w[b].partial_cmp(&w[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order
        };

        let round1 = budget.div_ceil(2);
        let widths: Vec<f64> = cands.iter().map(|c| c.score).collect();
        let order = by_width(&widths);
        let mut sel1: Vec<usize> = order[..round1].to_vec();
        sel1.sort_unstable();
        let ids1: Vec<ProbeId> = sel1.iter().map(|&s| cands[s].id).collect();
        let (mut recs, mut stats) = ctx.run_probes(net, set, &ids1, telemetry);

        let round2 = budget - round1;
        if round2 > 0 {
            // Observed |Ω| over prior, averaged per inner layer; inner
            // layers with no observation keep ratio 1.
            let mut sums = vec![0.0f64; self.num_layers];
            let mut counts = vec![0usize; self.num_layers];
            for (&slot, rec) in sel1.iter().zip(&recs) {
                let c = &cands[slot];
                if rec.quarantined {
                    continue;
                }
                let (m, n) = match rec.id {
                    ProbeId::Pair { bit_m, bit_n, .. } => (bit_m as usize, bit_n as usize),
                    _ => continue,
                };
                let (si, sj) = (self.diag_loss[outer][m], self.diag_loss[c.inner][n]);
                if !si.is_finite() || !sj.is_finite() {
                    continue;
                }
                let omega = rec.loss + self.base_loss - si - sj;
                let prior = c.score.max(f64::MIN_POSITIVE);
                sums[c.inner] += omega.abs() / prior;
                counts[c.inner] += 1;
            }
            let taken: std::collections::HashSet<usize> = sel1.iter().copied().collect();
            let refreshed: Vec<f64> = cands
                .iter()
                .enumerate()
                .map(|(s, c)| {
                    if taken.contains(&s) {
                        -1.0 // already observed: never re-selected
                    } else {
                        let ratio = if counts[c.inner] > 0 {
                            sums[c.inner] / counts[c.inner] as f64
                        } else {
                            1.0
                        };
                        c.score * ratio
                    }
                })
                .collect();
            let order = by_width(&refreshed);
            let mut sel2: Vec<usize> = order[..round2].to_vec();
            sel2.sort_unstable();
            let ids2: Vec<ProbeId> = sel2.iter().map(|&s| cands[s].id).collect();
            let (recs2, stats2) = ctx.run_probes(net, set, &ids2, telemetry);
            recs.extend(recs2);
            stats.full_evals += stats2.full_evals;
            stats.cache_hits += stats2.cache_hits;
            stats.cache_builds += stats2.cache_builds;
            stats.retried += stats2.retried;
            stats.quarantined += stats2.quarantined;
            stats.seconds += stats2.seconds;
        }
        (recs, stats)
    }
}

/// Largest-remainder apportionment of `total` units over `weights`,
/// capped per shard; overflow redistributes to uncapped shards.
/// Deterministic for identical inputs, including ties (broken by index).
fn apportion(total: usize, weights: &[f64], caps: &[usize]) -> Vec<usize> {
    let n = weights.len();
    let mut out = vec![0usize; n];
    if n == 0 {
        return out;
    }
    let mut remaining = total.min(caps.iter().sum());
    let mut open: Vec<usize> = (0..n).collect();
    while remaining > 0 {
        open.retain(|&i| out[i] < caps[i]);
        if open.is_empty() {
            break;
        }
        let wsum: f64 = open.iter().map(|&i| weights[i].max(0.0)).sum();
        let mut granted = 0usize;
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(open.len());
        for &i in &open {
            let ideal = if wsum > 0.0 {
                remaining as f64 * weights[i].max(0.0) / wsum
            } else {
                remaining as f64 / open.len() as f64
            };
            let take = (ideal.floor() as usize).min(caps[i] - out[i]);
            out[i] += take;
            granted += take;
            fracs.push((i, ideal - ideal.floor()));
        }
        // Hand out the remainder units by descending fraction, index
        // ascending on ties.
        fracs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut leftover = remaining - granted;
        for (i, _) in fracs {
            if leftover == 0 {
                break;
            }
            if out[i] < caps[i] {
                out[i] += 1;
                granted += 1;
                leftover -= 1;
            }
        }
        if granted == 0 {
            break; // every open shard is at cap
        }
        remaining -= granted;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_respects_caps_and_total() {
        let got = apportion(10, &[3.0, 1.0, 0.0], &[4, 8, 8]);
        assert_eq!(got.iter().sum::<usize>(), 10);
        assert!(got[0] <= 4);
        // Heaviest shard hits its cap; the rest flows to shard 1 first.
        assert_eq!(got[0], 4);
        assert!(got[1] >= got[2]);
    }

    #[test]
    fn apportion_zero_weights_splits_evenly() {
        let got = apportion(6, &[0.0, 0.0, 0.0], &[10, 10, 10]);
        assert_eq!(got, vec![2, 2, 2]);
    }

    #[test]
    fn apportion_caps_bound_the_total() {
        let got = apportion(100, &[1.0, 1.0], &[3, 2]);
        assert_eq!(got, vec![3, 2]);
    }

    #[test]
    fn resolve_budget_floors_and_caps() {
        assert_eq!(resolve_budget(0, 100, 7), 25);
        assert_eq!(resolve_budget(3, 100, 7), 7);
        assert_eq!(resolve_budget(1000, 100, 7), 100);
        assert_eq!(resolve_budget(40, 100, 7), 40);
    }
}
