//! The estimation entry point: budgeted Ω measurement behind the
//! [`OmegaEstimator`] trait, with CLSJ journaling, resume, and the same
//! threaded fan-out as the exact sweep.

use crate::complete::complete_partial;
use crate::planner::{mandatory_probes, resolve_budget, ProbePlanner};
use crate::EstimatorKind;
use clado_core::journal::{self, ProbeId, ProbeRecord};
use clado_core::{
    estimator_config_fingerprint, eval_loss, hawq_sensitivities, replica_map_checked,
    resolve_threads, BaselineOptions, JournalError, JournalWriter, MeasureError, OmegaProvenance,
    SensitivityMatrix, SensitivityOptions, SensitivityStats, ShardContext, ShardRunStats,
    ShardSpec,
};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::BitWidthSet;
use clado_solver::ObservedMask;
use std::collections::HashMap;
use std::time::Instant;

/// Default estimator RNG seed (distinct from the measurement and
/// baseline seeds so runs are independent by default).
pub const DEFAULT_ESTIMATOR_SEED: u64 = 0xE571;

/// Default ALS factor rank (sketched completion).
pub const DEFAULT_ALS_RANK: usize = 4;

/// Default ALS sweep count (sketched completion).
pub const DEFAULT_ALS_ITERS: usize = 48;

/// Cap on Hutchinson probes — beyond this the trace estimate is far past
/// diminishing returns on the models this crate targets.
const MAX_HUTCHINSON_PROBES: usize = 64;

/// Options controlling a budgeted estimation run.
#[derive(Debug, Clone)]
pub struct EstimatorOptions {
    /// Which estimator to run.
    pub kind: EstimatorKind,
    /// Total probe budget, counted in full-sweep probe units (forward
    /// evaluations of the sensitivity set). `0` means 25% of the full
    /// sweep. Grid estimators floor the budget at the mandatory
    /// `1 + |𝔹|I` base+diagonal probes and cap it at the full sweep.
    pub probe_budget: usize,
    /// RNG seed for probe selection / ALS initialization. Part of the
    /// estimator journal fingerprint.
    pub seed: u64,
    /// ALS factor rank (sketched only).
    pub rank: usize,
    /// ALS sweep count (sketched only).
    pub als_iters: usize,
    /// Underlying measurement options (scheme, batch size, threads,
    /// prefix cache, telemetry, checkpoint dir, resume, retries). The
    /// journal in `checkpoint_dir` is stamped with the estimator
    /// fingerprint, so exact and estimated runs can never share one.
    pub measure: SensitivityOptions,
}

impl EstimatorOptions {
    /// Default options for one estimator kind.
    pub fn new(kind: EstimatorKind) -> Self {
        Self {
            kind,
            probe_budget: 0,
            seed: DEFAULT_ESTIMATOR_SEED,
            rank: DEFAULT_ALS_RANK,
            als_iters: DEFAULT_ALS_ITERS,
            measure: SensitivityOptions::default(),
        }
    }
}

/// An estimated sensitivity matrix plus its budget accounting.
#[derive(Debug, Clone)]
pub struct EstimatedOmega {
    /// The completed, PSD-projected estimate in the standard
    /// [`SensitivityMatrix`] shape; its stats carry the estimator
    /// provenance, so it serializes to CLSM v4 like any measurement.
    pub matrix: SensitivityMatrix,
    /// Which upper-triangle entries were actually measured (diagonal and
    /// same-layer entries always; cross terms only where budget went).
    pub observed: ObservedMask,
    /// Probes the plan spends — deterministic for a configuration, and
    /// unchanged by resuming (resumed probes still count as spent).
    pub probes_spent: usize,
    /// Probe count of the exact full sweep for this configuration.
    pub full_sweep_probes: usize,
}

impl EstimatedOmega {
    /// `probes_spent / full_sweep_probes`.
    pub fn probe_fraction(&self) -> f64 {
        self.probes_spent as f64 / self.full_sweep_probes as f64
    }
}

/// A sub-quadratic Ω estimator.
///
/// The four implementations are stateless unit structs; all run
/// configuration lives in [`EstimatorOptions`] (whose `kind` field is
/// overridden by the implementation, so a `Box<dyn OmegaEstimator>` from
/// [`estimator_for`] always runs its own algorithm).
pub trait OmegaEstimator {
    /// The kind this estimator implements.
    fn kind(&self) -> EstimatorKind;

    /// Runs the estimation on `network` against `set`.
    ///
    /// # Errors
    ///
    /// Propagates [`MeasureError`] from the underlying probe engine and
    /// journal (see [`estimate_sensitivities`]).
    fn estimate(
        &self,
        network: &mut Network,
        set: &DataSplit,
        bits: &BitWidthSet,
        options: &EstimatorOptions,
    ) -> Result<EstimatedOmega, MeasureError> {
        let mut options = options.clone();
        options.kind = self.kind();
        estimate_sensitivities(network, set, bits, &options)
    }
}

/// Sketched low-rank recovery (see [`EstimatorKind::Sketched`]).
pub struct SketchedEstimator;
/// Adaptive confidence-interval sampling (see [`EstimatorKind::Adaptive`]).
pub struct AdaptiveEstimator;
/// Block-diagonal + top-k cross terms (see [`EstimatorKind::BlockTopK`]).
pub struct BlockTopKEstimator;
/// Hutchinson diagonal-only estimation (see
/// [`EstimatorKind::Hutchinson`]).
pub struct HutchinsonEstimator;

impl OmegaEstimator for SketchedEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Sketched
    }
}
impl OmegaEstimator for AdaptiveEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Adaptive
    }
}
impl OmegaEstimator for BlockTopKEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::BlockTopK
    }
}
impl OmegaEstimator for HutchinsonEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Hutchinson
    }
}

/// The probe budget a grid estimation run actually spends for a
/// `requested` budget under `ctx`'s grid: `0` resolves to 25% of the
/// full sweep, and any request is floored at the mandatory
/// base+diagonal probes and capped at the full sweep.
pub fn resolved_probe_budget(ctx: &ShardContext, requested: usize) -> usize {
    let mandatory = mandatory_probes(ctx.num_layers(), ctx.bits().len());
    resolve_budget(requested, ctx.total_probes(), mandatory)
}

/// The journal/handshake fingerprint of a grid estimation run: the
/// measurement configuration fingerprint folded with the estimator tag,
/// the **resolved** probe budget, and the selection seed. Distributed
/// coordinators and workers must agree on this exact value for an
/// estimation sweep to hand out leases — and it is what
/// [`estimate_sensitivities`] stamps on the CLSJ journal, so a
/// single-process checkpoint can be finished by a cluster and vice
/// versa.
pub fn estimation_fingerprint(
    ctx: &ShardContext,
    kind: EstimatorKind,
    requested_budget: usize,
    seed: u64,
) -> u64 {
    estimator_config_fingerprint(
        ctx.fingerprint(),
        kind.tag(),
        resolved_probe_budget(ctx, requested_budget) as u64,
        seed,
    )
}

/// The estimator implementing `kind`.
pub fn estimator_for(kind: EstimatorKind) -> Box<dyn OmegaEstimator> {
    match kind {
        EstimatorKind::Sketched => Box::new(SketchedEstimator),
        EstimatorKind::Adaptive => Box::new(AdaptiveEstimator),
        EstimatorKind::BlockTopK => Box::new(BlockTopKEstimator),
        EstimatorKind::Hutchinson => Box::new(HutchinsonEstimator),
    }
}

/// Estimates Ω under a probe budget — the budgeted analogue of
/// [`clado_core::measure_sensitivities`].
///
/// Grid estimators (sketched, adaptive, blocktopk) measure the base and
/// diagonal probes exactly, select pair probes deterministically from
/// the seed/budget/diagonal values ([`ProbePlanner`]), fan the pair
/// shards out over [`SensitivityOptions::threads`] worker replicas, and
/// complete the partial matrix. The result is bitwise identical for any
/// thread count and across resumes, and the CLSJ journal (stamped with
/// [`estimator_config_fingerprint`]) makes the sweep crash-safe exactly
/// like exact measurement. The Hutchinson kind instead estimates a
/// diagonal-only Ω from Hessian-trace probes; it never touches the grid
/// journal.
///
/// # Errors
///
/// - [`MeasureError::Journal`] on journal I/O or fingerprint mismatch,
///   or when the checkpoint dir is non-empty without
///   [`SensitivityOptions::resume`].
/// - [`MeasureError::WorkerPanic`] / [`MeasureError::WorkerLost`] when a
///   probe panics beyond the retry budget.
/// - [`MeasureError::NonFiniteBaseLoss`] when `L(w)` stays non-finite
///   after the quarantine retry.
pub fn estimate_sensitivities(
    network: &mut Network,
    set: &DataSplit,
    bits: &BitWidthSet,
    options: &EstimatorOptions,
) -> Result<EstimatedOmega, MeasureError> {
    if options.kind == EstimatorKind::Hutchinson {
        return estimate_hutchinson(network, set, bits, options);
    }
    let start = Instant::now();
    let telemetry = options.measure.telemetry.clone();
    let _span = telemetry.span("estim.measure");
    let ctx = ShardContext::new(
        network,
        set.len(),
        bits,
        options.measure.scheme,
        options.measure.batch_size,
        options.measure.use_prefix_cache,
    );
    let num_layers = ctx.num_layers();
    let k = bits.len();
    let full_sweep = ctx.total_probes();
    let mandatory = mandatory_probes(num_layers, k);
    let budget = resolve_budget(options.probe_budget, full_sweep, mandatory);

    // The estimator fingerprint binds the journal to the estimator kind,
    // budget, and seed on top of the measurement configuration — a
    // sketched checkpoint can never resume an exact sweep's journal, or
    // another estimator's, or its own under a different budget.
    let fp = estimator_config_fingerprint(
        ctx.fingerprint(),
        options.kind.tag(),
        budget as u64,
        options.seed,
    );
    let mut resume_records: HashMap<ProbeId, ProbeRecord> = HashMap::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(dir) = &options.measure.checkpoint_dir {
        let state = journal::load_journal(dir, fp)?;
        if !options.measure.resume && (state.shards + state.corrupt_shards) > 0 {
            return Err(JournalError::NotEmpty { dir: dir.clone() }.into());
        }
        if options.measure.resume {
            resume_records = state.records;
        }
        writer = Some(JournalWriter::open(dir, fp, state.next_seq)?);
    }

    // Base + diagonal pass (serial — O(|𝔹|I) and needed before any pair
    // probe can be planned) and the deterministic pair selection.
    let (planner, fresh_mandatory, mut run_stats) = ProbePlanner::build(
        &ctx,
        network,
        set,
        &telemetry,
        options.kind,
        budget,
        options.seed,
        &resume_records,
    )?;
    if let Some(w) = writer.as_mut() {
        for shard in &fresh_mandatory {
            for rec in shard {
                w.append(*rec);
            }
            w.commit()?;
        }
    }
    let fresh_count: usize = fresh_mandatory.iter().map(Vec::len).sum();
    let mut resumed = mandatory - fresh_count;

    let mut records: HashMap<ProbeId, ProbeRecord> = HashMap::new();
    for rec in planner.mandatory_records() {
        records.insert(rec.id, rec);
    }

    // A pair shard is complete iff any of its records is journaled: CLSJ
    // shard commits are atomic (corrupt shards are dropped wholly), and
    // the planner journals each shard's selection in one commit.
    let mut pending: Vec<ShardSpec> = Vec::new();
    for outer in 0..num_layers.saturating_sub(1) as u32 {
        let done = resume_records
            .keys()
            .any(|id| matches!(id, ProbeId::Pair { layer_i, .. } if *layer_i == outer));
        if done {
            for (id, rec) in &resume_records {
                if matches!(id, ProbeId::Pair { layer_i, .. } if *layer_i == outer) {
                    records.insert(*id, *rec);
                    resumed += 1;
                }
            }
        } else {
            pending.push(ShardSpec::Pair { outer });
        }
    }

    let threads = resolve_threads(options.measure.threads);
    let planner_ref = &planner;
    let ctx_ref = &ctx;
    let telemetry_ref = &telemetry;
    let (outs, panic_retries): (Vec<(Vec<ProbeRecord>, ShardRunStats)>, u64) = replica_map_checked(
        network,
        threads,
        &pending,
        options.measure.retries,
        |net, &spec| planner_ref.run_shard(ctx_ref, net, set, spec, telemetry_ref),
        |_, (recs, _)| {
            if let Some(w) = writer.as_mut() {
                for rec in recs {
                    w.append(*rec);
                }
                w.commit()?;
            }
            Ok(())
        },
    )?;
    for (recs, s) in &outs {
        run_stats.full_evals += s.full_evals;
        run_stats.cache_hits += s.cache_hits;
        run_stats.cache_builds += s.cache_builds;
        run_stats.retried += s.retried;
        run_stats.quarantined += s.quarantined;
        run_stats.seconds += s.seconds;
        for rec in recs {
            records.insert(rec.id, *rec);
        }
    }

    let assembly = ctx.assemble_partial(&records)?;
    let completed = complete_partial(
        options.kind,
        &assembly.g,
        &assembly.observed,
        options.rank,
        options.als_iters,
        options.seed,
    );
    let probes_spent = planner.planned_probes();
    telemetry
        .counter("estim.probes_spent")
        .add(probes_spent as u64);
    telemetry.set_gauge(
        "estim.probe_fraction",
        probes_spent as f64 / full_sweep as f64,
    );
    let stats = SensitivityStats {
        evaluations: (run_stats.full_evals + run_stats.cache_hits) as usize,
        seconds: start.elapsed().as_secs_f64(),
        threads_used: threads,
        prefix_cache_builds: run_stats.cache_builds as usize,
        prefix_cache_hits: run_stats.cache_hits as usize,
        full_evals: run_stats.full_evals as usize,
        resumed,
        retried: run_stats.retried as usize + panic_retries as usize,
        quarantined: assembly.quarantined,
        provenance: OmegaProvenance::estimated(options.kind.tag(), budget as u64, options.seed),
    };
    let matrix = SensitivityMatrix::from_parts(
        completed,
        num_layers,
        bits.clone(),
        assembly.base_loss,
        stats,
    );
    Ok(EstimatedOmega {
        matrix,
        observed: assembly.observed,
        probes_spent,
        full_sweep_probes: full_sweep,
    })
}

/// Diagonal-only estimation from Hutchinson Hessian-trace probes. Each
/// probe is one central-difference HVP over the whole network (two
/// gradient evaluations), so a budget of `n` buys
/// `max(1, (n − 1) / 2)` probes (capped at [`MAX_HUTCHINSON_PROBES`]);
/// spent probes are `1 + 2·probes`.
fn estimate_hutchinson(
    network: &mut Network,
    set: &DataSplit,
    bits: &BitWidthSet,
    options: &EstimatorOptions,
) -> Result<EstimatedOmega, MeasureError> {
    let start = Instant::now();
    let telemetry = options.measure.telemetry.clone();
    let _span = telemetry.span("estim.hutchinson");
    let num_layers = network.quantizable_layers().len();
    let k = bits.len();
    let full_sweep = 1 + k * num_layers + k * k * num_layers * num_layers.saturating_sub(1) / 2;
    let probes = if options.probe_budget == 0 {
        BaselineOptions::default().hutchinson_probes
    } else {
        (options.probe_budget.saturating_sub(1) / 2).max(1)
    }
    .min(MAX_HUTCHINSON_PROBES);

    let batch_size = options.measure.batch_size;
    let mut base_loss = eval_loss(network, set, batch_size);
    if !base_loss.is_finite() {
        base_loss = eval_loss(network, set, batch_size);
    }
    if !base_loss.is_finite() {
        return Err(MeasureError::NonFiniteBaseLoss { loss: base_loss });
    }

    let bopts = BaselineOptions {
        scheme: options.measure.scheme,
        batch_size,
        hutchinson_probes: probes,
        seed: options.seed,
        threads: options.measure.threads,
        telemetry: telemetry.clone(),
        ..BaselineOptions::default()
    };
    let g = hawq_sensitivities(network, set, bits, &bopts);

    let dim = num_layers * k;
    let mut observed = ObservedMask::new(dim);
    for i in 0..num_layers {
        for m in 0..k {
            for n in m..k {
                observed.set(i * k + m, i * k + n);
            }
        }
    }
    let completed = g.psd_project();
    let probes_spent = 1 + 2 * probes;
    telemetry
        .counter("estim.probes_spent")
        .add(probes_spent as u64);
    telemetry.set_gauge(
        "estim.probe_fraction",
        probes_spent as f64 / full_sweep as f64,
    );
    let stats = SensitivityStats {
        // One loss eval plus two gradient passes per probe.
        evaluations: probes_spent,
        seconds: start.elapsed().as_secs_f64(),
        threads_used: resolve_threads(options.measure.threads),
        full_evals: probes_spent,
        provenance: OmegaProvenance::estimated(
            EstimatorKind::Hutchinson.tag(),
            probes_spent as u64,
            options.seed,
        ),
        ..SensitivityStats::default()
    };
    let matrix =
        SensitivityMatrix::from_parts(completed, num_layers, bits.clone(), base_loss, stats);
    Ok(EstimatedOmega {
        matrix,
        observed,
        probes_spent,
        full_sweep_probes: full_sweep,
    })
}
