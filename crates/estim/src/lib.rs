//! # clado-estim
//!
//! Sub-quadratic estimation of the CLADO sensitivity matrix Ω.
//!
//! The exact sweep costs `1 + |𝔹|I + ½|𝔹|²I(I−1)` forward evaluations —
//! quadratic in the layer count — and is the scaling wall for anything
//! beyond toy models. This crate trades a probe *budget* for an
//! approximate Ω behind one [`OmegaEstimator`] trait with four
//! implementations:
//!
//! * [`SketchedEstimator`] — measures a seeded uniform subset of the
//!   cross-term probes and completes the matrix by symmetric low-rank
//!   alternating least squares on the observed entries, PSD-projected
//!   through the solver's existing projection path.
//! * [`AdaptiveEstimator`] — initializes a per-entry uncertainty width
//!   from the diagonal-product prior, spends half of each shard's budget
//!   on the widest entries, rescales the widths of unobserved entries
//!   from the observed `|Ω|`/prior ratios, and spends the rest where the
//!   refreshed widths are largest.
//! * [`BlockTopKEstimator`] — a BRECQ-style locality prior: every
//!   within-block cross term is probed, and the remaining budget goes to
//!   the `k` cross-block entries with the highest `|Ω_ii·Ω_jj|`
//!   diagonal product.
//! * [`HutchinsonEstimator`] — promotes the HAWQ-style Hutchinson
//!   trace baseline into an estimator mode: a diagonal-only Ω from
//!   central-difference Hessian-vector products, no pair probes at all.
//!
//! Every estimator spends budget on the base probe and the full diagonal
//! (a variable's own sensitivity cannot be defaulted — the solver's
//! `harden_partial` rejects Ω matrices that skip it), so the budget floor
//! is `1 + |𝔹|I` probes.
//!
//! # Determinism and fault tolerance
//!
//! Probe selection is a pure function of the seed, the budget, and the
//! bitwise-deterministic diagonal measurements, and each pair shard's
//! selection (including the adaptive refinement rounds) is self-contained
//! — so the estimated Ω is bitwise identical serially, across `--threads
//! N`, and across distributed workers, and the CLSJ journal makes
//! estimation crash-safe and resumable exactly like exact measurement.
//! The journal fingerprint folds in the estimator kind, budget, and seed
//! ([`clado_core::estimator_config_fingerprint`]), so an estimation
//! checkpoint can never resume an exact sweep's journal or another
//! estimator's.
//!
//! # Reporting
//!
//! [`EstimatorReport`] records probes spent vs. the full-sweep count,
//! observed-entry and whole-matrix error vs. an exact Ω when one is
//! available, and the **final-assignment regret**: the Δtask-loss of the
//! IQP solution under the estimated Ω vs. the exact one
//! ([`assignment_regret`]).

#![warn(missing_docs)]

mod complete;
mod estimate;
mod planner;
mod report;

pub use complete::{als_complete, complete_partial};
pub use estimate::{
    estimate_sensitivities, estimation_fingerprint, estimator_for, resolved_probe_budget,
    AdaptiveEstimator, BlockTopKEstimator, EstimatedOmega, EstimatorOptions, HutchinsonEstimator,
    OmegaEstimator, SketchedEstimator, DEFAULT_ALS_ITERS, DEFAULT_ALS_RANK, DEFAULT_ESTIMATOR_SEED,
};
pub use planner::ProbePlanner;
pub use report::{
    assignment_regret, build_report, error_vs_exact, EstimatorReport, OmegaError, RegretReport,
};

use std::fmt;
use std::str::FromStr;

use clado_core::OmegaProvenance;

/// Which sub-quadratic estimator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Seeded uniform probe subset + symmetric low-rank ALS completion.
    Sketched,
    /// Prior-weighted two-round sampling of the widest uncertainty
    /// intervals.
    Adaptive,
    /// All within-block cross terms plus the top-k cross-block entries by
    /// diagonal product.
    BlockTopK,
    /// Diagonal-only Ω from Hutchinson Hessian-trace estimates.
    Hutchinson,
}

impl EstimatorKind {
    /// All estimator kinds, in tag order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::Sketched,
        EstimatorKind::Adaptive,
        EstimatorKind::BlockTopK,
        EstimatorKind::Hutchinson,
    ];

    /// The wire/CLSM tag of this kind (see
    /// [`clado_core::OmegaProvenance`]; `0` is reserved for exact).
    pub fn tag(self) -> u8 {
        match self {
            Self::Sketched => OmegaProvenance::TAG_SKETCHED,
            Self::Adaptive => OmegaProvenance::TAG_ADAPTIVE,
            Self::BlockTopK => OmegaProvenance::TAG_BLOCK_TOPK,
            Self::Hutchinson => OmegaProvenance::TAG_HUTCHINSON,
        }
    }

    /// The kind for a wire/CLSM tag; `None` for `0` (exact) and unknown
    /// tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// The CLI spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sketched => "sketched",
            Self::Adaptive => "adaptive",
            Self::BlockTopK => "blocktopk",
            Self::Hutchinson => "hutchinson",
        }
    }
}

impl fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EstimatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sketched" => Ok(Self::Sketched),
            "adaptive" => Ok(Self::Adaptive),
            "blocktopk" | "block-topk" | "block_topk" => Ok(Self::BlockTopK),
            "hutchinson" => Ok(Self::Hutchinson),
            other => Err(format!(
                "unknown estimator '{other}' (expected sketched, adaptive, blocktopk, \
                 or hutchinson)"
            )),
        }
    }
}
