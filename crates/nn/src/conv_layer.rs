//! Convolution layer wrapping the `clado-tensor` conv kernels.

use crate::int_exec::IntExecWeight;
use crate::layer::{join, Layer};
use crate::param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
use clado_tensor::{conv2d_backward, conv2d_forward, im2col_ld, init, Conv2dSpec, Tensor};
use rand::Rng;

/// A 2-D convolution layer (dense, grouped, or depthwise).
#[derive(Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Option<Param>,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `bias` is typically `false` when a BatchNorm follows.
    pub fn new(spec: Conv2dSpec, bias: bool, rng: &mut impl Rng) -> Self {
        let fan_in = (spec.in_channels / spec.groups) * spec.kernel * spec.kernel;
        let weight = init::kaiming_normal(spec.weight_shape(), fan_in, rng);
        Self {
            spec,
            weight: Param::new(weight, ParamRole::Weight),
            bias: bias.then(|| Param::new(Tensor::zeros([spec.out_channels]), ParamRole::Bias)),
            cache: None,
        }
    }

    /// Marks the weight as excluded from quantization (e.g. the stem conv
    /// of ResNet-style models, which the paper's layer lists omit).
    pub fn unquantized(mut self) -> Self {
        self.weight.quantizable = false;
        self
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Integer-execution forward: im2col → dynamic int8 activations →
    /// int8/int4 GEMM with i32 accumulation → requantize → bias.
    ///
    /// All samples share one wide column matrix per group so the integer
    /// GEMM runs once over `n·ho·wo` positions instead of once per sample.
    /// Activation scales stay per-sample (same values as the per-sample
    /// formulation), and i32 accumulation is exact, so outputs are
    /// bit-identical to running each sample on its own.
    fn forward_int(&self, x: &Tensor, ie: &IntExecWeight) -> Tensor {
        let d = x.shape().dims().to_vec();
        let (n, cin, h, w) = (d[0], d[1], d[2], d[3]);
        assert_eq!(cin, self.spec.in_channels, "input channel mismatch");
        let (ho, wo) = (self.spec.out_size(h), self.spec.out_size(w));
        let howo = ho * wo;
        let g = self.spec.groups;
        let (cg_in, cg_out) = (cin / g, self.spec.out_channels / g);
        let col_rows = cg_in * self.spec.kernel * self.spec.kernel;
        let ld = n * howo;
        let mut col = vec![0.0f32; col_rows * ld];
        // The integer GEMM wants the activations as the A (row-dot)
        // operand, so the quantized column matrix is stored transposed:
        // one row per spatial position, samples stacked.
        let mut qcol_t = vec![0i8; ld * col_rows];
        let mut a_scales = vec![0.0f32; n];
        let mut acc = vec![0i32; ld * cg_out];
        let mut req = vec![0.0f32; howo * cg_out];
        let mut out = Tensor::zeros([n, self.spec.out_channels, ho, wo]);
        for gi in 0..g {
            for s in 0..n {
                let in_s = &x.data()[s * cin * h * w..(s + 1) * cin * h * w];
                im2col_ld(
                    &in_s[gi * cg_in * h * w..],
                    cg_in,
                    h,
                    w,
                    &self.spec,
                    ho,
                    wo,
                    &mut col[s * howo..],
                    ld,
                );
            }
            for s in 0..n {
                // Dynamic per-sample absmax scale — identical element
                // order and value as `dynamic_act_scale` over the
                // sample's own column matrix.
                let mut absmax = 0.0f32;
                for r in 0..col_rows {
                    let c_row = &col[r * ld + s * howo..r * ld + (s + 1) * howo];
                    absmax = c_row.iter().fold(absmax, |m, &v| m.max(v.abs()));
                }
                let a_scale = absmax / 127.0;
                a_scales[s] = a_scale;
                let q_block = &mut qcol_t[s * howo * col_rows..(s + 1) * howo * col_rows];
                if a_scale == 0.0 {
                    q_block.fill(0);
                } else {
                    let inv = 1.0 / a_scale;
                    for r in 0..col_rows {
                        let c_row = &col[r * ld + s * howo..r * ld + (s + 1) * howo];
                        for (p, &v) in c_row.iter().enumerate() {
                            q_block[p * col_rows + r] =
                                (v * inv).round().clamp(-127.0, 127.0) as i8;
                        }
                    }
                }
            }
            ie.matmul_a_bt(&qcol_t, ld, gi * cg_out, cg_out, &mut acc);
            let od = out.data_mut();
            for s in 0..n {
                ie.requantize_into(
                    &acc[s * howo * cg_out..(s + 1) * howo * cg_out],
                    cg_out,
                    gi * cg_out,
                    a_scales[s],
                    &mut req,
                );
                // req is [howo × cg_out]; the output layout is the
                // transpose, [cg_out × howo].
                let out_base = s * self.spec.out_channels * howo + gi * cg_out * howo;
                let out_g = &mut od[out_base..out_base + cg_out * howo];
                for (p, r_row) in req.chunks_exact(cg_out).enumerate() {
                    for (oc, &v) in r_row.iter().enumerate() {
                        out_g[oc * howo + p] = v;
                    }
                }
            }
        }
        if let Some(b) = &self.bias {
            let bd = b.value.data();
            let od = out.data_mut();
            for s in 0..n {
                for (oc, &bv) in bd.iter().enumerate() {
                    let base = (s * self.spec.out_channels + oc) * howo;
                    for o in &mut od[base..base + howo] {
                        *o += bv;
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let y = match (&self.weight.int_exec, training) {
            (Some(ie), false) => self.forward_int(&x, ie),
            _ => conv2d_forward(
                &x,
                &self.weight.value,
                self.bias.as_ref().map(|b| &b.value),
                &self.spec,
            ),
        };
        self.cache = Some(x);
        y
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let x = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let grads = conv2d_backward(&x, &self.weight.value, &d_out, &self.spec);
        self.weight.grad += &grads.weight;
        if let Some(b) = &mut self.bias {
            b.grad += &grads.bias;
        }
        grads.input
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "weight"), &mut self.weight);
        if let Some(b) = &mut self.bias {
            f(&join(prefix, "bias"), b);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join(prefix, "bias"), b);
        }
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
        let mut conv = Conv2d::new(spec, true, &mut rng);
        let x = init::normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(x, true);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
        let dx = conv.backward(Tensor::zeros(y.shape()));
        assert_eq!(dx.shape().dims(), &[2, 3, 8, 8]);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let mut conv = Conv2d::new(spec, false, &mut rng);
        let x = Tensor::full([1, 1, 2, 2], 1.0);
        let d = Tensor::full([1, 1, 2, 2], 1.0);
        conv.forward(x.clone(), true);
        conv.backward(d.clone());
        let g1 = conv.weight.grad.data()[0];
        conv.forward(x, true);
        conv.backward(d);
        assert!((conv.weight.grad.data()[0] - 2.0 * g1).abs() < 1e-6);
    }

    #[test]
    fn visit_params_exposes_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), true, &mut rng);
        let mut names = Vec::new();
        conv.visit_params("stem", &mut |n, p| {
            names.push((n.to_string(), p.role));
        });
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, "stem.weight");
        assert_eq!(names[0].1, ParamRole::Weight);
        assert_eq!(names[1].0, "stem.bias");
    }

    #[test]
    fn unquantized_stem() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), false, &mut rng).unquantized();
        let mut quantizable = Vec::new();
        conv.visit_params("", &mut |_, p| quantizable.push(p.quantizable));
        assert_eq!(quantizable, vec![false]);
    }
}
