//! Convolution layer wrapping the `clado-tensor` conv kernels.

use crate::layer::{join, Layer};
use crate::param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
use clado_tensor::{conv2d_backward, conv2d_forward, init, Conv2dSpec, Tensor};
use rand::Rng;

/// A 2-D convolution layer (dense, grouped, or depthwise).
#[derive(Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Option<Param>,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `bias` is typically `false` when a BatchNorm follows.
    pub fn new(spec: Conv2dSpec, bias: bool, rng: &mut impl Rng) -> Self {
        let fan_in = (spec.in_channels / spec.groups) * spec.kernel * spec.kernel;
        let weight = init::kaiming_normal(spec.weight_shape(), fan_in, rng);
        Self {
            spec,
            weight: Param::new(weight, ParamRole::Weight),
            bias: bias.then(|| Param::new(Tensor::zeros([spec.out_channels]), ParamRole::Bias)),
            cache: None,
        }
    }

    /// Marks the weight as excluded from quantization (e.g. the stem conv
    /// of ResNet-style models, which the paper's layer lists omit).
    pub fn unquantized(mut self) -> Self {
        self.weight.quantizable = false;
        self
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let y = conv2d_forward(
            &x,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            &self.spec,
        );
        let _ = training;
        self.cache = Some(x);
        y
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let x = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let grads = conv2d_backward(&x, &self.weight.value, &d_out, &self.spec);
        self.weight.grad += &grads.weight;
        if let Some(b) = &mut self.bias {
            b.grad += &grads.bias;
        }
        grads.input
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "weight"), &mut self.weight);
        if let Some(b) = &mut self.bias {
            f(&join(prefix, "bias"), b);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join(prefix, "bias"), b);
        }
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
        let mut conv = Conv2d::new(spec, true, &mut rng);
        let x = init::normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(x, true);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
        let dx = conv.backward(Tensor::zeros(y.shape()));
        assert_eq!(dx.shape().dims(), &[2, 3, 8, 8]);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let mut conv = Conv2d::new(spec, false, &mut rng);
        let x = Tensor::full([1, 1, 2, 2], 1.0);
        let d = Tensor::full([1, 1, 2, 2], 1.0);
        conv.forward(x.clone(), true);
        conv.backward(d.clone());
        let g1 = conv.weight.grad.data()[0];
        conv.forward(x, true);
        conv.backward(d);
        assert!((conv.weight.grad.data()[0] - 2.0 * g1).abs() < 1e-6);
    }

    #[test]
    fn visit_params_exposes_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), true, &mut rng);
        let mut names = Vec::new();
        conv.visit_params("stem", &mut |n, p| {
            names.push((n.to_string(), p.role));
        });
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, "stem.weight");
        assert_eq!(names[0].1, ParamRole::Weight);
        assert_eq!(names[1].0, "stem.bias");
    }

    #[test]
    fn unquantized_stem() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), false, &mut rng).unquantized();
        let mut quantizable = Vec::new();
        conv.visit_params("", &mut |_, p| quantizable.push(p.quantizable));
        assert_eq!(quantizable, vec![false]);
    }
}
