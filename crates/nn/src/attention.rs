//! Multi-head self-attention and the pre-norm transformer block (ViT).

use crate::dense::Linear;
use crate::layer::{join, ActKind, Activation, Layer};
use crate::norm::LayerNorm;
use crate::param::{Param, ParamVisitor, ParamVisitorRef};
use clado_tensor::{ops, Tensor};
use rand::Rng;

/// Multi-head self-attention over token tensors `[N, T, D]`.
///
/// The four projection layers are named `query`, `key`, `value`, and
/// `output.dense`, mirroring the paper's ViT layer list (Appendix A).
#[derive(Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    cache: Option<AttnCache>,
}

#[derive(Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention maps, one `[T, T]` matrix per (sample, head).
    attn: Vec<Tensor>,
    n: usize,
    t: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer with `heads` heads over dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `dim`.
    pub fn new(dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "heads={heads} must divide dim={dim}"
        );
        Self {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            cache: None,
        }
    }

    /// Extracts head `h` of sample `n` from `[N, T, D]` as a `[T, dh]` matrix.
    fn head(&self, x: &Tensor, n: usize, h: usize, t: usize) -> Tensor {
        let dh = self.dim / self.heads;
        let mut out = vec![0.0f32; t * dh];
        for tok in 0..t {
            let base = (n * t + tok) * self.dim + h * dh;
            out[tok * dh..(tok + 1) * dh].copy_from_slice(&x.data()[base..base + dh]);
        }
        Tensor::from_vec([t, dh], out).expect("sized correctly")
    }

    /// Scatters a `[T, dh]` head matrix back into `[N, T, D]` storage.
    fn scatter_head(&self, dst: &mut Tensor, src: &Tensor, n: usize, h: usize, t: usize) {
        let dh = self.dim / self.heads;
        for tok in 0..t {
            let base = (n * t + tok) * self.dim + h * dh;
            dst.data_mut()[base..base + dh].copy_from_slice(&src.data()[tok * dh..(tok + 1) * dh]);
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let sh = x.shape();
        assert_eq!(sh.ndim(), 3, "attention expects [N, T, D] input, got {sh}");
        let (n, t) = (sh.dim(0), sh.dim(1));
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(x.clone(), training);
        let k = self.wk.forward(x.clone(), training);
        let v = self.wv.forward(x, training);

        let mut concat = Tensor::zeros([n, t, self.dim]);
        let mut attn_maps = Vec::with_capacity(n * self.heads);
        for s in 0..n {
            for h in 0..self.heads {
                let qh = self.head(&q, s, h, t);
                let kh = self.head(&k, s, h, t);
                let vh = self.head(&v, s, h, t);
                let mut scores = clado_tensor::matmul_a_bt(&qh, &kh);
                scores.scale(scale);
                let attn = ops::softmax_rows(&scores);
                let oh = clado_tensor::matmul(&attn, &vh);
                self.scatter_head(&mut concat, &oh, s, h, t);
                attn_maps.push(attn);
            }
        }
        let out = self.wo.forward(concat, training);
        self.cache = Some(AttnCache {
            q,
            k,
            v,
            attn: attn_maps,
            n,
            t,
        });
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let (n, t) = (cache.n, cache.t);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let d_concat = self.wo.backward(d_out);
        let mut dq = Tensor::zeros([n, t, self.dim]);
        let mut dk = Tensor::zeros([n, t, self.dim]);
        let mut dv = Tensor::zeros([n, t, self.dim]);
        for s in 0..n {
            for h in 0..self.heads {
                let d_oh = self.head(&d_concat, s, h, t);
                let qh = self.head(&cache.q, s, h, t);
                let kh = self.head(&cache.k, s, h, t);
                let vh = self.head(&cache.v, s, h, t);
                let attn = &cache.attn[s * self.heads + h];

                // O = A·V  ⇒  dA = dO·Vᵀ, dV = Aᵀ·dO.
                let d_attn = clado_tensor::matmul_a_bt(&d_oh, &vh);
                let d_vh = clado_tensor::matmul_at_b(attn, &d_oh);
                // A = softmax(S) row-wise.
                let mut d_scores = ops::softmax_rows_backward(attn, &d_attn);
                d_scores.scale(scale);
                // S = Q·Kᵀ  ⇒  dQ = dS·K, dK = dSᵀ·Q.
                let d_qh = clado_tensor::matmul(&d_scores, &kh);
                let d_kh = clado_tensor::matmul_at_b(&d_scores, &qh);

                self.scatter_head(&mut dq, &d_qh, s, h, t);
                self.scatter_head(&mut dk, &d_kh, s, h, t);
                self.scatter_head(&mut dv, &d_vh, s, h, t);
            }
        }
        let dx_q = self.wq.backward(dq);
        let dx_k = self.wk.backward(dk);
        let dx_v = self.wv.backward(dv);
        let mut dx = dx_q;
        dx += &dx_k;
        dx += &dx_v;
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        self.wq.visit_params(&join(prefix, "attention.query"), f);
        self.wk.visit_params(&join(prefix, "attention.key"), f);
        self.wv.visit_params(&join(prefix, "attention.value"), f);
        self.wo.visit_params(&join(prefix, "output.dense"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        self.wq
            .visit_params_ref(&join(prefix, "attention.query"), f);
        self.wk.visit_params_ref(&join(prefix, "attention.key"), f);
        self.wv
            .visit_params_ref(&join(prefix, "attention.value"), f);
        self.wo.visit_params_ref(&join(prefix, "output.dense"), f);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params_fast(f);
        self.wk.visit_params_fast(f);
        self.wv.visit_params_fast(f);
        self.wo.visit_params_fast(f);
    }
}

/// A pre-norm transformer encoder block: `x + MHA(LN(x))`, then
/// `y + MLP(LN(y))` with a GELU MLP, matching the ViT encoder.
#[derive(Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    act: Activation,
    fc2: Linear,
}

impl TransformerBlock {
    /// Creates a block with model dimension `dim`, `heads` attention heads,
    /// and an MLP hidden width of `mlp_dim`.
    pub fn new(dim: usize, heads: usize, mlp_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            fc1: Linear::new(dim, mlp_dim, rng),
            act: Activation::new(ActKind::Gelu),
            fc2: Linear::new(mlp_dim, dim, rng),
        }
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let a = self.ln1.forward(x.clone(), training);
        let a = self.attn.forward(a, training);
        let y = &x + &a;
        let m = self.ln2.forward(y.clone(), training);
        let m = self.fc1.forward(m, training);
        let m = self.act.forward(m, training);
        let m = self.fc2.forward(m, training);
        &y + &m
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        // out = y + mlp(ln2(y))
        let d_m = self.fc2.backward(d_out.clone());
        let d_m = self.act.backward(d_m);
        let d_m = self.fc1.backward(d_m);
        let mut d_y = self.ln2.backward(d_m);
        d_y += &d_out;
        // y = x + attn(ln1(x))
        let d_a = self.attn.backward(d_y.clone());
        let mut d_x = self.ln1.backward(d_a);
        d_x += &d_y;
        d_x
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        self.ln1.visit_params(&join(prefix, "layernorm_before"), f);
        self.attn.visit_params(&join(prefix, "attention"), f);
        self.ln2.visit_params(&join(prefix, "layernorm_after"), f);
        self.fc1
            .visit_params(&join(prefix, "intermediate.dense"), f);
        self.fc2.visit_params(&join(prefix, "output.dense"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        self.ln1
            .visit_params_ref(&join(prefix, "layernorm_before"), f);
        self.attn.visit_params_ref(&join(prefix, "attention"), f);
        self.ln2
            .visit_params_ref(&join(prefix, "layernorm_after"), f);
        self.fc1
            .visit_params_ref(&join(prefix, "intermediate.dense"), f);
        self.fc2.visit_params_ref(&join(prefix, "output.dense"), f);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params_fast(f);
        self.attn.visit_params_fast(f);
        self.ln2.visit_params_fast(f);
        self.fc1.visit_params_fast(f);
        self.fc2.visit_params_fast(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = init::normal([2, 5, 8], 0.0, 1.0, &mut rng);
        let y = attn.forward(x, false);
        assert_eq!(y.shape().dims(), &[2, 5, 8]);
    }

    #[test]
    fn attention_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let dim = 4;
        let mut attn = MultiHeadAttention::new(dim, 2, &mut rng);
        let x = init::normal([1, 3, dim], 0.0, 1.0, &mut rng);
        let seed = init::normal([1, 3, dim], 0.0, 1.0, &mut rng);

        attn.forward(x.clone(), true);
        let dx = attn.backward(seed.clone());

        let eps = 1e-3f32;
        for idx in 0..x.numel() {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fp = attn.forward(p, false).dot(&seed);
            let fm = attn.forward(m, false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - dx.data()[idx]).abs() < 3e-2,
                "idx {idx}: fd {fd} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn transformer_block_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let dim = 4;
        let mut block = TransformerBlock::new(dim, 2, 8, &mut rng);
        let x = init::normal([1, 3, dim], 0.0, 1.0, &mut rng);
        let seed = init::normal([1, 3, dim], 0.0, 1.0, &mut rng);

        block.forward(x.clone(), true);
        let dx = block.backward(seed.clone());

        let eps = 1e-3f32;
        for idx in [0usize, 2, 5, 7, 11] {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fp = block.forward(p, false).dot(&seed);
            let fm = block.forward(m, false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - dx.data()[idx]).abs() < 5e-2,
                "idx {idx}: fd {fd} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn vit_param_names_match_paper_convention() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = TransformerBlock::new(4, 2, 8, &mut rng);
        let mut names = Vec::new();
        block.visit_params("layer.0", &mut |n, _| names.push(n.to_string()));
        assert!(names.contains(&"layer.0.attention.attention.query.weight".to_string()));
        assert!(names.contains(&"layer.0.attention.output.dense.weight".to_string()));
        assert!(names.contains(&"layer.0.intermediate.dense.weight".to_string()));
        assert!(names.contains(&"layer.0.output.dense.weight".to_string()));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn heads_must_divide_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        MultiHeadAttention::new(6, 4, &mut rng);
    }
}
