//! The [`Layer`] trait, activation/structural layers, and [`Sequential`].

use crate::param::{Param, ParamVisitor, ParamVisitorRef};
use clado_tensor::{ops, Shape, Tensor};

/// Object-safe cloning for boxed layers.
///
/// Implemented automatically for every `Layer + Clone` type; lets
/// `Box<dyn Layer>` (and therefore [`Sequential`] and whole networks) be
/// cloned so the measurement engine can hand each worker thread its own
/// replica.
pub trait LayerClone {
    /// Clones `self` into a fresh boxed trait object.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl<T: Layer + Clone + 'static> LayerClone for T {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A differentiable network module.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// cache, accumulates parameter gradients internally, and returns the
/// gradient with respect to its input. Layers are stateful and not
/// re-entrant: call `forward` then `backward` in strict alternation.
///
/// `Send` is a supertrait so replicated networks can move across the
/// scoped worker threads of the sensitivity engine.
pub trait Layer: LayerClone + Send {
    /// Forward pass. `training` selects batch statistics (BatchNorm) and
    /// enables gradient caching.
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor;

    /// Backward pass: consumes the cached activations from the most recent
    /// `forward`, accumulates parameter gradients, returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode `forward`.
    fn backward(&mut self, d_out: Tensor) -> Tensor;

    /// Visits every parameter with its dotted path prefixed by `prefix`.
    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor);

    /// Read-only counterpart of [`Layer::visit_params`]: same parameters,
    /// same order, same dotted paths, but through `&self`.
    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef);

    /// Name-free parameter walk for hot paths: visits the same parameters
    /// in the same order as [`Layer::visit_params`] but builds no path
    /// strings. Layers with parameters should override this; the default
    /// delegates to `visit_params` (correct, just slower).
    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.visit_params("", &mut |_, p| f(p));
    }
}

/// Joins a prefix and a name with a dot, eliding empty prefixes.
pub(crate) fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// MobileNetV3 hard-swish.
    HardSwish,
}

/// A stateless activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cached_input: None,
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let y = match self.kind {
            ActKind::Relu => ops::relu_forward(&x),
            ActKind::Gelu => ops::gelu_forward(&x),
            ActKind::HardSwish => ops::hardswish_forward(&x),
        };
        let _ = training;
        self.cached_input = Some(x);
        y
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward requires a training forward");
        match self.kind {
            ActKind::Relu => ops::relu_backward(&x, &d_out),
            ActKind::Gelu => ops::gelu_backward(&x, &d_out),
            ActKind::HardSwish => ops::hardswish_backward(&x, &d_out),
        }
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

/// Flattens `[N, C, H, W]` to `[N, C·H·W]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let shape = x.shape();
        let n = shape.dim(0);
        let rest = shape.numel() / n;
        let _ = training;
        self.cached_shape = Some(shape);
        x.reshape([n, rest]).expect("element count preserved")
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("backward requires a training forward");
        d_out.reshape(shape).expect("element count preserved")
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

/// Max pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Shape)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            window,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let out = clado_tensor::max_pool2d_forward(&x, self.window, self.stride);
        let _ = training;
        self.cache = Some((out.argmax, x.shape()));
        out.output
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let (argmax, shape) = self
            .cache
            .take()
            .expect("backward requires a training forward");
        clado_tensor::max_pool2d_backward(&d_out, &argmax, shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

/// Average pooling layer.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    cached_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            window,
            stride,
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let out = clado_tensor::avg_pool2d_forward(&x, self.window, self.stride);
        let _ = training;
        self.cached_shape = Some(x.shape());
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("backward requires a training forward");
        clado_tensor::avg_pool2d_backward(&d_out, self.window, self.stride, shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    cached_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let out = clado_tensor::global_avg_pool_forward(&x);
        let _ = training;
        self.cached_shape = Some(x.shape());
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("backward requires a training forward");
        clado_tensor::global_avg_pool_backward(&d_out, shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

/// An ordered container of named sub-layers executed front to back.
///
/// The direct children are the network's *stages*: the sensitivity engine's
/// prefix-activation cache splits execution at stage boundaries via
/// [`Sequential::forward_prefix`] / [`Sequential::forward_from`].
#[derive(Clone)]
pub struct Sequential {
    children: Vec<(String, Box<dyn Layer>)>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self {
            children: Vec::new(),
        }
    }

    /// Appends a named child, builder style.
    pub fn push(mut self, name: impl Into<String>, layer: impl Layer + 'static) -> Self {
        self.children.push((name.into(), Box::new(layer)));
        self
    }

    /// Appends a named boxed child.
    pub fn push_boxed(mut self, name: impl Into<String>, layer: Box<dyn Layer>) -> Self {
        self.children.push((name.into(), layer));
        self
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// `true` if there are no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Runs only the children at positions `..stage` (prefix execution) and
    /// returns the boundary activation that feeds stage `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage > self.len()`.
    pub fn forward_prefix(&mut self, stage: usize, x: Tensor, training: bool) -> Tensor {
        self.children[..stage]
            .iter_mut()
            .fold(x, |acc, (_, l)| l.forward(acc, training))
    }

    /// Resumes execution at stage `stage` (suffix execution). `x` must be
    /// the boundary activation a prefix run produced at the same split; the
    /// full pass `forward_prefix(s, ..)` + `forward_from(s, ..)` performs
    /// exactly the same operation sequence as a plain `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `stage > self.len()`.
    pub fn forward_from(&mut self, stage: usize, x: Tensor, training: bool) -> Tensor {
        self.children[stage..]
            .iter_mut()
            .fold(x, |acc, (_, l)| l.forward(acc, training))
    }

    /// Runs the children at positions `from..to` (a contiguous slice of
    /// the stage fold). `forward_range(0, s, ..)` equals
    /// `forward_prefix(s, ..)`; chaining ranges that tile `0..len()`
    /// performs exactly the same operation sequence as a plain `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > self.len()`.
    pub fn forward_range(&mut self, from: usize, to: usize, x: Tensor, training: bool) -> Tensor {
        self.children[from..to]
            .iter_mut()
            .fold(x, |acc, (_, l)| l.forward(acc, training))
    }

    /// Name of the child at position `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= self.len()`.
    pub fn stage_name(&self, stage: usize) -> &str {
        &self.children[stage].0
    }

    /// Runs only the single child at position `stage` (one step of the
    /// fold that [`Layer::forward`] performs over all children).
    ///
    /// # Panics
    ///
    /// Panics if `stage >= self.len()`.
    pub fn forward_stage(&mut self, stage: usize, x: Tensor, training: bool) -> Tensor {
        let (_, layer) = &mut self.children[stage];
        layer.forward(x, training)
    }

    /// Visits the parameters of the single child at position `stage`,
    /// producing the same dotted paths as the full walk.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= self.len()`.
    pub fn visit_stage_params(&mut self, stage: usize, f: &mut ParamVisitor) {
        let (name, layer) = &mut self.children[stage];
        layer.visit_params(name, f);
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        self.children
            .iter_mut()
            .fold(x, |acc, (_, l)| l.forward(acc, training))
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        self.children
            .iter_mut()
            .rev()
            .fold(d_out, |acc, (_, l)| l.backward(acc))
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        for (name, layer) in &mut self.children {
            layer.visit_params(&join(prefix, name), f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        for (name, layer) in &self.children {
            layer.visit_params_ref(&join(prefix, name), f);
        }
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for (_, layer) in &mut self.children {
            layer.visit_params_fast(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Param, ParamRole};

    #[test]
    fn activation_roundtrip() {
        let mut relu = Activation::new(ActKind::Relu);
        let x = Tensor::from_vec([3], vec![-1.0, 0.5, 2.0]).unwrap();
        let y = relu.forward(x, true);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let dx = relu.backward(Tensor::full([3], 1.0));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "training forward")]
    fn backward_without_forward_panics() {
        let mut relu = Activation::new(ActKind::Relu);
        relu.backward(Tensor::zeros([1]));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros([2, 3, 4, 4]);
        let y = fl.forward(x, true);
        assert_eq!(y.shape().dims(), &[2, 48]);
        let dx = fl.backward(Tensor::zeros([2, 48]));
        assert_eq!(dx.shape().dims(), &[2, 3, 4, 4]);
    }

    #[derive(Clone)]
    struct Probe;

    impl Layer for Probe {
        fn forward(&mut self, x: Tensor, _t: bool) -> Tensor {
            x.map(|v| v + 1.0)
        }
        fn backward(&mut self, d: Tensor) -> Tensor {
            d
        }
        fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
            let mut p = Param::new(Tensor::zeros([1]), ParamRole::Weight);
            f(&join(prefix, "w"), &mut p);
        }
        fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
            let p = Param::new(Tensor::zeros([1]), ParamRole::Weight);
            f(&join(prefix, "w"), &p);
        }
    }

    #[test]
    fn sequential_composes_and_names_params() {
        let mut seq = Sequential::new().push("a", Probe).push("b", Probe);
        let y = seq.forward(Tensor::zeros([2]), false);
        assert_eq!(y.data(), &[2.0, 2.0]);
        let mut names = Vec::new();
        seq.visit_params("net", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["net.a.w", "net.b.w"]);
        let mut ref_names = Vec::new();
        seq.visit_params_ref("net", &mut |n, _| ref_names.push(n.to_string()));
        assert_eq!(ref_names, names, "ref walk mirrors the mutable walk");
    }

    #[test]
    fn prefix_plus_suffix_equals_full_forward() {
        let x = Tensor::from_vec([2], vec![0.0, 1.0]).unwrap();
        for stage in 0..=3 {
            let mut seq = Sequential::new()
                .push("a", Probe)
                .push("b", Probe)
                .push("c", Probe);
            let boundary = seq.forward_prefix(stage, x.clone(), false);
            assert_eq!(boundary.data()[0], stage as f32);
            let y = seq.forward_from(stage, boundary, false);
            assert_eq!(y.data(), &[3.0, 4.0], "split at stage {stage}");
        }
    }

    #[test]
    fn cloned_sequential_is_independent() {
        let mut seq = Sequential::new().push("a", Probe).push("b", Probe);
        let mut copy = seq.clone();
        assert_eq!(copy.len(), seq.len());
        let y1 = seq.forward(Tensor::zeros([1]), false);
        let y2 = copy.forward(Tensor::zeros([1]), false);
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn pooling_layers_delegate() {
        let mut mp = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = mp.forward(x, true);
        assert_eq!(y.data(), &[4.0]);
        let dx = mp.backward(Tensor::full([1, 1, 1, 1], 1.0));
        assert_eq!(dx.data(), &[0., 0., 0., 1.]);

        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = gap.forward(x, true);
        assert_eq!(y.data(), &[2.5]);
    }
}
