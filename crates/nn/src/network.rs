//! The [`Network`] container: a named-layer model with the weight access
//! the MPQ machinery needs (enumerate / read / substitute quantizable
//! weights).

use crate::int_exec::IntExecWeight;
use crate::layer::{Layer, Sequential};
use crate::param::{Param, ParamRole};
use clado_quant::{BitWidth, QuantScheme};
use clado_telemetry::Telemetry;
use clado_tensor::Tensor;
use std::fmt;

/// Metadata describing one quantizable layer of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizableLayer {
    /// Index in the paper's layer numbering (0-based, definition order).
    pub index: usize,
    /// Dotted parameter path, e.g. `layer1.0.conv1.weight`.
    pub name: String,
    /// Parameter count `|w⁽ⁱ⁾|`.
    pub numel: usize,
    /// Block identifier for BRECQ-style intra-block ablations: layers with
    /// the same `block` id belong to the same residual block / encoder
    /// block.
    pub block: usize,
    /// Index of the top-level root-stack child (the *stage*) containing
    /// this layer. Activations before this stage are unaffected by
    /// perturbing the layer, which is what the sensitivity engine's
    /// prefix-activation cache exploits.
    pub stage: usize,
}

/// A complete model: a root layer stack plus the bookkeeping CLADO needs.
///
/// `Clone` produces a fully independent replica (weights, gradients,
/// forward caches), which is how the parallel sensitivity engine gives
/// each worker thread its own network.
#[derive(Clone)]
pub struct Network {
    root: Sequential,
    num_classes: usize,
    quantizable: Vec<QuantizableLayer>,
    /// Walk-order parameter slot of each quantizable layer's weight,
    /// resolved once at [`Network::reindex`] so the hot accessors need no
    /// string formatting or name comparisons.
    slots: Vec<usize>,
    /// Optional telemetry handle. When enabled, [`Network::forward`] records
    /// a per-stage span under `forward.<stage-name>`; when disabled (the
    /// default) the forward path is exactly the plain fold with no timing
    /// code in the loop.
    telemetry: Telemetry,
    /// `forward.<stage-name>` span paths, built once when telemetry
    /// attaches so the timed forward loops never format strings.
    span_paths: Vec<String>,
}

impl Network {
    /// Wraps a root layer stack.
    ///
    /// Quantizable layers are discovered by walking the parameters; block
    /// ids are derived from the second path component (e.g. everything
    /// under `layer2.1` shares a block), which matches how the paper
    /// groups layers for the BRECQ-style ablation.
    pub fn new(root: Sequential, num_classes: usize) -> Self {
        let mut net = Self {
            root,
            num_classes,
            quantizable: Vec::new(),
            slots: Vec::new(),
            telemetry: Telemetry::disabled(),
            span_paths: Vec::new(),
        };
        net.reindex();
        net
    }

    fn reindex(&mut self) {
        let mut layers = Vec::new();
        let mut slots = Vec::new();
        let mut block_names: Vec<String> = Vec::new();
        // Walk stage by stage so each quantizable layer learns which
        // top-level child contains it; `slot` counts *every* parameter in
        // walk order, giving the string-free handles the accessors use.
        let mut slot = 0usize;
        for stage in 0..self.root.len() {
            self.root.visit_stage_params(stage, &mut |name, p| {
                if p.role == ParamRole::Weight && p.quantizable {
                    let block_key = block_key_of(name);
                    let block = match block_names.iter().position(|b| *b == block_key) {
                        Some(i) => i,
                        None => {
                            block_names.push(block_key);
                            block_names.len() - 1
                        }
                    };
                    layers.push(QuantizableLayer {
                        index: layers.len(),
                        name: name.trim_end_matches(".weight").to_string(),
                        numel: p.numel(),
                        block,
                        stage,
                    });
                    slots.push(slot);
                }
                slot += 1;
            });
        }
        self.quantizable = layers;
        self.slots = slots;
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The quantizable layers in paper order.
    pub fn quantizable_layers(&self) -> &[QuantizableLayer] {
        &self.quantizable
    }

    /// Parameter counts of the quantizable layers, in order.
    pub fn layer_param_counts(&self) -> Vec<usize> {
        self.quantizable.iter().map(|l| l.numel).collect()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        let mut total = 0;
        self.root
            .visit_params_ref("", &mut |_, p| total += p.numel());
        total
    }

    /// Number of stages (top-level children of the root stack).
    pub fn num_stages(&self) -> usize {
        self.root.len()
    }

    /// The stage containing quantizable layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn stage_of(&self, index: usize) -> usize {
        self.quantizable[index].stage
    }

    /// Attaches a telemetry handle. With an enabled handle every
    /// [`Network::forward`] records one span per root stage
    /// (`forward.<stage-name>`); pass [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if telemetry.is_enabled() && self.span_paths.is_empty() {
            self.span_paths = (0..self.root.len())
                .map(|s| format!("forward.{}", self.root.stage_name(s)))
                .collect();
        }
        self.telemetry = telemetry;
    }

    /// The currently attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Forward pass to logits `[N, num_classes]`.
    pub fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        if !self.telemetry.is_enabled() {
            return self.root.forward(x, training);
        }
        // Stage-by-stage execution performs the identical fold as
        // `Sequential::forward`, so timed and untimed passes produce
        // bitwise-equal activations.
        let _span = self.telemetry.span("forward");
        self.forward_range_timed(0, self.root.len(), x, training)
    }

    /// Runs only the stages before `stage` and returns the boundary
    /// activation (see [`Sequential::forward_prefix`]).
    pub fn forward_prefix(&mut self, stage: usize, x: Tensor, training: bool) -> Tensor {
        if !self.telemetry.is_enabled() {
            return self.root.forward_prefix(stage, x, training);
        }
        self.forward_range_timed(0, stage, x, training)
    }

    /// Resumes a forward pass at `stage` from a boundary activation
    /// produced by [`Network::forward_prefix`] at the same split (see
    /// [`Sequential::forward_from`]).
    pub fn forward_from(&mut self, stage: usize, x: Tensor, training: bool) -> Tensor {
        if !self.telemetry.is_enabled() {
            return self.root.forward_from(stage, x, training);
        }
        self.forward_range_timed(stage, self.root.len(), x, training)
    }

    /// Runs the contiguous stage slice `from..to` (see
    /// [`Sequential::forward_range`]). Ranges that tile `0..num_stages()`
    /// compose bitwise-identically to one full forward; the batched probe
    /// evaluator uses this to advance a prefix cache stage by stage.
    pub fn forward_range(&mut self, from: usize, to: usize, x: Tensor, training: bool) -> Tensor {
        if !self.telemetry.is_enabled() {
            return self.root.forward_range(from, to, x, training);
        }
        self.forward_range_timed(from, to, x, training)
    }

    /// Stage fold with one `forward.<stage>` span per stage. Performs the
    /// identical operation sequence as the untimed fold.
    fn forward_range_timed(&mut self, from: usize, to: usize, x: Tensor, training: bool) -> Tensor {
        let mut acc = x;
        for stage in from..to {
            let _s = self.telemetry.span(&self.span_paths[stage]);
            acc = self.root.forward_stage(stage, acc, training);
        }
        acc
    }

    /// Installs integer execution for every quantizable layer from a
    /// per-layer bit assignment: weights are quantized once (same MSE
    /// calibration as `clado_quant::quantize_weights`) and eval-mode
    /// forwards of dense/conv layers switch to real int8 / packed-int4
    /// GEMM. Layers whose configuration integer execution cannot represent
    /// (bits > 8, affine schemes) keep float execution.
    ///
    /// Returns the number of layers now running integer kernels.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the quantizable layer
    /// count.
    pub fn set_integer_assignment(
        &mut self,
        assignment: &[BitWidth],
        scheme: QuantScheme,
    ) -> usize {
        assert_eq!(
            assignment.len(),
            self.quantizable.len(),
            "assignment length mismatch"
        );
        let mut installed = 0usize;
        self.visit_quantizable_weights(&mut |i, p| {
            p.int_exec = IntExecWeight::prepare(&p.value, assignment[i], scheme);
            if p.int_exec.is_some() {
                installed += 1;
            }
        });
        installed
    }

    /// Removes integer execution from every parameter; all layers run
    /// float forwards again.
    pub fn clear_integer_assignment(&mut self) {
        self.root.visit_params_fast(&mut |p| p.int_exec = None);
    }

    /// Backward pass from logit gradients (after a training forward).
    pub fn backward(&mut self, d_logits: Tensor) {
        let _ = self.root.backward(d_logits);
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        self.root.visit_params("", &mut |_, p| p.zero_grad());
    }

    /// Visits every parameter (training, serialization).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.root.visit_params("", f);
    }

    /// Read-only walk over every parameter (inspection, snapshots).
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Param)) {
        self.root.visit_params_ref("", f);
    }

    /// Visits each quantizable layer's weight parameter as
    /// `(layer_index, param)`, in layer order, without building any path
    /// strings.
    pub fn visit_quantizable_weights(&mut self, f: &mut dyn FnMut(usize, &mut Param)) {
        let slots = std::mem::take(&mut self.slots);
        let mut cursor = 0usize;
        let mut qi = 0usize;
        self.root.visit_params_fast(&mut |p| {
            if qi < slots.len() && cursor == slots[qi] {
                f(qi, p);
                qi += 1;
            }
            cursor += 1;
        });
        self.slots = slots;
    }

    /// Returns a copy of the weight tensor of quantizable layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn weight(&self, index: usize) -> Tensor {
        let slot = self.slots[index];
        let mut cursor = 0usize;
        let mut out = None;
        self.root.visit_params_ref("", &mut |_, p| {
            if cursor == slot {
                out = Some(p.value.clone());
            }
            cursor += 1;
        });
        out.expect("indexed layer exists")
    }

    /// Clones the gradient tensor of each quantizable layer's weight, in
    /// layer order.
    pub fn quantizable_weight_grads(&self) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(self.quantizable.len());
        let mut cursor = 0usize;
        let mut qi = 0usize;
        self.root.visit_params_ref("", &mut |_, p| {
            if qi < self.slots.len() && cursor == self.slots[qi] {
                out.push(p.grad.clone());
                qi += 1;
            }
            cursor += 1;
        });
        assert_eq!(out.len(), self.quantizable.len(), "walk covers every slot");
        out
    }

    /// Replaces the weight tensor of quantizable layer `index`, copying
    /// into the existing buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the shape differs.
    pub fn set_weight(&mut self, index: usize, value: &Tensor) {
        let slot = self.slots[index];
        let mut cursor = 0usize;
        let mut found = false;
        self.root.visit_params_fast(&mut |p| {
            if cursor == slot {
                assert_eq!(
                    p.value.shape(),
                    value.shape(),
                    "weight shape mismatch for layer {index}"
                );
                p.value.data_mut().copy_from_slice(value.data());
                found = true;
            }
            cursor += 1;
        });
        assert!(found, "quantizable layer {index} not found");
    }

    /// Adds `delta` to the weight tensor of quantizable layer `index`
    /// (the Δw perturbations of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the shape differs.
    pub fn perturb_weight(&mut self, index: usize, delta: &Tensor) {
        let slot = self.slots[index];
        let mut cursor = 0usize;
        let mut found = false;
        self.root.visit_params_fast(&mut |p| {
            if cursor == slot {
                p.value.axpy(1.0, delta);
                found = true;
            }
            cursor += 1;
        });
        assert!(found, "quantizable layer {index} not found");
    }

    /// Snapshots all quantizable weights (cheap undo for perturbations).
    pub fn snapshot_weights(&self) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(self.quantizable.len());
        let mut cursor = 0usize;
        let mut qi = 0usize;
        self.root.visit_params_ref("", &mut |_, p| {
            if qi < self.slots.len() && cursor == self.slots[qi] {
                out.push(p.value.clone());
                qi += 1;
            }
            cursor += 1;
        });
        assert_eq!(out.len(), self.quantizable.len(), "walk covers every slot");
        out
    }

    /// Snapshots *every* parameter and buffer (including BatchNorm running
    /// statistics). Use around procedures that mutate non-weight state,
    /// e.g. QAT fine-tuning.
    pub fn snapshot_all(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.root
            .visit_params_ref("", &mut |_, p| out.push(p.value.clone()));
        out
    }

    /// Restores a snapshot taken by [`Network::snapshot_all`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the parameter walk.
    pub fn restore_all(&mut self, snapshot: &[Tensor]) {
        let mut idx = 0usize;
        self.root.visit_params("", &mut |name, p| {
            let src = snapshot
                .get(idx)
                .unwrap_or_else(|| panic!("snapshot too short at {name}"));
            assert_eq!(
                p.value.shape(),
                src.shape(),
                "snapshot shape mismatch at {name}"
            );
            p.value = src.clone();
            idx += 1;
        });
        assert_eq!(idx, snapshot.len(), "snapshot has extra entries");
    }

    /// Restores a snapshot taken by [`Network::snapshot_weights`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length differs from the layer count.
    pub fn restore_weights(&mut self, snapshot: &[Tensor]) {
        assert_eq!(
            snapshot.len(),
            self.quantizable.len(),
            "snapshot length mismatch"
        );
        for (i, w) in snapshot.iter().enumerate() {
            self.set_weight(i, w);
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({} quantizable layers, {} classes)",
            self.quantizable.len(),
            self.num_classes
        )
    }
}

/// Derives the BRECQ block key from a dotted layer path: the first two path
/// components (e.g. `layer2.1.conv1.weight` → `layer2.1`).
fn block_key_of(name: &str) -> String {
    let parts: Vec<&str> = name.split('.').collect();
    if parts.len() >= 3 {
        format!("{}.{}", parts[0], parts[1])
    } else {
        parts[0].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layer::Conv2d;
    use crate::dense::Linear;
    use crate::layer::{ActKind, Activation, Flatten, GlobalAvgPool};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let root = Sequential::new()
            .push(
                "stem",
                Conv2d::new(Conv2dSpec::new(1, 4, 3, 1, 1), false, &mut rng).unquantized(),
            )
            .push(
                "layer1",
                Sequential::new()
                    .push(
                        "0",
                        Conv2d::new(Conv2dSpec::new(4, 4, 3, 1, 1), false, &mut rng),
                    )
                    .push("relu", Activation::new(ActKind::Relu)),
            )
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(4, 3, &mut rng));
        Network::new(root, 3)
    }

    #[test]
    fn discovers_quantizable_layers_in_order() {
        let net = tiny_net();
        let names: Vec<&str> = net
            .quantizable_layers()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        // Stem is excluded (unquantized); conv + fc remain.
        assert_eq!(names, vec!["layer1.0", "fc"]);
        assert_eq!(net.quantizable_layers()[0].numel, 4 * 4 * 9);
    }

    #[test]
    fn weight_get_set_roundtrip() {
        let mut net = tiny_net();
        let w = net.weight(0);
        let mut w2 = w.clone();
        w2.data_mut()[0] += 1.0;
        net.set_weight(0, &w2);
        assert_eq!(net.weight(0).data()[0], w.data()[0] + 1.0);
    }

    #[test]
    fn perturb_and_restore() {
        let mut net = tiny_net();
        let snap = net.snapshot_weights();
        let delta = Tensor::full(net.weight(1).shape(), 0.5);
        net.perturb_weight(1, &delta);
        assert!((net.weight(1).data()[0] - (snap[1].data()[0] + 0.5)).abs() < 1e-6);
        net.restore_weights(&snap);
        assert_eq!(net.weight(1).data(), snap[1].data());
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net();
        let x = Tensor::zeros([2, 1, 6, 6]);
        let y = net.forward(x, false);
        assert_eq!(y.shape().dims(), &[2, 3]);
    }

    #[test]
    fn flatten_is_reexported_and_usable() {
        // Ensure Flatten composes in networks (compile-time sanity).
        let mut rng = StdRng::seed_from_u64(1);
        let root = Sequential::new()
            .push(
                "conv",
                Conv2d::new(Conv2dSpec::new(1, 2, 3, 1, 1), false, &mut rng),
            )
            .push("flat", Flatten::new())
            .push("fc", Linear::new(2 * 4 * 4, 2, &mut rng));
        let mut net = Network::new(root, 2);
        let y = net.forward(Tensor::zeros([1, 1, 4, 4]), false);
        assert_eq!(y.shape().dims(), &[1, 2]);
    }

    #[test]
    fn stages_resolve_to_root_children() {
        let net = tiny_net();
        // Root children: stem, layer1, pool, fc.
        assert_eq!(net.num_stages(), 4);
        assert_eq!(net.stage_of(0), 1, "layer1.0 lives in stage 1");
        assert_eq!(net.stage_of(1), 3, "fc lives in stage 3");
    }

    #[test]
    fn ref_walk_mirrors_mut_walk() {
        let mut net = tiny_net();
        let mut mut_walk = Vec::new();
        net.visit_params(&mut |n, p| mut_walk.push((n.to_string(), p.numel())));
        let mut ref_walk = Vec::new();
        net.visit_params_ref(&mut |n, p| ref_walk.push((n.to_string(), p.numel())));
        assert_eq!(ref_walk, mut_walk);
    }

    #[test]
    fn visit_quantizable_weights_matches_layer_metadata() {
        let mut net = tiny_net();
        let mut seen = Vec::new();
        net.visit_quantizable_weights(&mut |i, p| seen.push((i, p.numel())));
        let expect: Vec<(usize, usize)> = net
            .quantizable_layers()
            .iter()
            .map(|l| (l.index, l.numel))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn prefix_suffix_split_matches_full_forward() {
        let mut net = tiny_net();
        let x = Tensor::full([2, 1, 6, 6], 0.3);
        let full = net.forward(x.clone(), false);
        for stage in 0..=net.num_stages() {
            let boundary = net.forward_prefix(stage, x.clone(), false);
            let y = net.forward_from(stage, boundary, false);
            assert_eq!(y.data(), full.data(), "split at stage {stage}");
        }
    }

    #[test]
    fn cloned_network_is_an_independent_replica() {
        let mut net = tiny_net();
        let mut replica = net.clone();
        let x = Tensor::full([1, 1, 6, 6], 0.5);
        assert_eq!(
            net.forward(x.clone(), false).data(),
            replica.forward(x.clone(), false).data()
        );
        let delta = Tensor::full(replica.weight(0).shape(), 1.0);
        replica.perturb_weight(0, &delta);
        assert_ne!(replica.weight(0).data(), net.weight(0).data());
    }

    #[test]
    fn forward_with_telemetry_matches_plain_forward_bitwise() {
        let mut plain = tiny_net();
        let mut timed = plain.clone();
        let telemetry = Telemetry::new();
        timed.set_telemetry(telemetry.clone());
        let x = Tensor::full([2, 1, 6, 6], 0.25);
        let a = plain.forward(x.clone(), false);
        let b = timed.forward(x, false);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        let spans = telemetry.spans();
        assert!(spans.iter().any(|(p, _)| p == "forward"));
        assert!(spans.iter().any(|(p, _)| p == "forward.layer1"));
        assert!(spans.iter().any(|(p, _)| p == "forward.fc"));
    }

    #[test]
    fn integer_assignment_switches_eval_forward_and_clears_cleanly() {
        let mut net = tiny_net();
        let mut rng = StdRng::seed_from_u64(9);
        let x = clado_tensor::init::normal([2, 1, 6, 6], 0.0, 1.0, &mut rng);
        let float_y = net.forward(x.clone(), false);
        let n = net.quantizable_layers().len();
        let installed =
            net.set_integer_assignment(&vec![BitWidth::of(8); n], QuantScheme::PerTensorSymmetric);
        assert_eq!(installed, n, "all layers run integer kernels at 8 bits");
        let int_y = net.forward(x.clone(), false);
        // 8-bit weights + dynamic 8-bit activations track the float
        // forward closely on this tiny net.
        for (a, b) in int_y.data().iter().zip(float_y.data()) {
            assert!((a - b).abs() < 0.1, "int {a} vs float {b}");
        }
        // Training forwards ignore integer execution entirely.
        let train_y = net.forward(x.clone(), true);
        assert_eq!(train_y.data(), float_y.data());
        net.clear_integer_assignment();
        let restored = net.forward(x, false);
        assert_eq!(restored.data(), float_y.data(), "float path untouched");
    }

    #[test]
    fn int4_assignment_installs_packed_weights() {
        let mut net = tiny_net();
        let n = net.quantizable_layers().len();
        let installed =
            net.set_integer_assignment(&vec![BitWidth::of(4); n], QuantScheme::PerChannelSymmetric);
        assert_eq!(installed, n);
        let y = net.forward(Tensor::full([1, 1, 6, 6], 0.3), false);
        assert_eq!(y.shape().dims(), &[1, 3]);
        // Bits above 8 cannot execute as integers: nothing installs.
        let none =
            net.set_integer_assignment(&vec![BitWidth::of(16); n], QuantScheme::PerTensorSymmetric);
        assert_eq!(none, 0);
    }

    #[test]
    fn forward_range_tiles_compose_to_full_forward() {
        let mut net = tiny_net();
        let x = Tensor::full([2, 1, 6, 6], 0.4);
        let full = net.forward(x.clone(), false);
        let stages = net.num_stages();
        for split in 0..=stages {
            let mid = net.forward_range(0, split, x.clone(), false);
            let y = net.forward_range(split, stages, mid, false);
            assert_eq!(y.data(), full.data(), "tiling at {split}");
        }
    }

    #[test]
    fn block_ids_group_by_prefix() {
        let mut rng = StdRng::seed_from_u64(2);
        let root = Sequential::new().push(
            "layer1",
            Sequential::new()
                .push(
                    "0",
                    Sequential::new()
                        .push(
                            "conv1",
                            Conv2d::new(Conv2dSpec::new(1, 1, 1, 1, 0), false, &mut rng),
                        )
                        .push(
                            "conv2",
                            Conv2d::new(Conv2dSpec::new(1, 1, 1, 1, 0), false, &mut rng),
                        ),
                )
                .push(
                    "1",
                    Sequential::new().push(
                        "conv1",
                        Conv2d::new(Conv2dSpec::new(1, 1, 1, 1, 0), false, &mut rng),
                    ),
                ),
        );
        let net = Network::new(root, 2);
        let blocks: Vec<usize> = net.quantizable_layers().iter().map(|l| l.block).collect();
        assert_eq!(blocks, vec![0, 0, 1]);
    }
}
