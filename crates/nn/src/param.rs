//! Trainable parameters.

use crate::int_exec::IntExecWeight;
use clado_tensor::Tensor;

/// The role a parameter plays, which determines whether MPQ quantizes it.
///
/// The paper quantizes convolution and fully-connected *weights*; biases and
/// normalization parameters stay in full precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamRole {
    /// A conv/linear weight tensor — the quantization target.
    Weight,
    /// A bias vector.
    Bias,
    /// A normalization scale/shift (BatchNorm γ/β, LayerNorm γ/β).
    Norm,
    /// A non-trained buffer updated by forward passes (BatchNorm running
    /// statistics). Serialized with the model, ignored by optimizers.
    Buffer,
}

/// A trainable tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Role of this parameter.
    pub role: ParamRole,
    /// Whether MPQ may quantize this parameter (only meaningful for
    /// [`ParamRole::Weight`]; stem and classifier layers of some models are
    /// excluded to match the paper's layer lists).
    pub quantizable: bool,
    /// Pre-quantized integer levels for real int8/int4 execution. When set
    /// on a weight, dense/conv layers run their eval-mode forward through
    /// the integer GEMM instead of float (see [`crate::IntExecWeight`]).
    pub int_exec: Option<IntExecWeight>,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor, role: ParamRole) -> Self {
        let grad = Tensor::zeros(value.shape());
        let quantizable = role == ParamRole::Weight;
        Self {
            value,
            grad,
            role,
            quantizable,
            int_exec: None,
        }
    }

    /// Creates a weight parameter explicitly excluded from quantization.
    pub fn new_unquantized(value: Tensor, role: ParamRole) -> Self {
        let mut p = Self::new(value, role);
        p.quantizable = false;
        p
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Visitor callback for walking a network's parameters in definition order.
///
/// The `&str` argument is the fully-qualified dotted parameter path, e.g.
/// `layer1.0.conv1.weight`.
pub type ParamVisitor<'a> = dyn FnMut(&str, &mut Param) + 'a;

/// Read-only visitor callback: identical walk order and paths to
/// [`ParamVisitor`], but through shared references, so inspection
/// (snapshots, statistics, serialization) needs no `&mut` access.
pub type ParamVisitorRef<'a> = dyn FnMut(&str, &Param) + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_role_default() {
        let p = Param::new(Tensor::full([2, 2], 1.0), ParamRole::Weight);
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert!(p.quantizable);
        let b = Param::new(Tensor::zeros([2]), ParamRole::Bias);
        assert!(!b.quantizable);
    }

    #[test]
    fn unquantized_weight() {
        let p = Param::new_unquantized(Tensor::zeros([2]), ParamRole::Weight);
        assert!(!p.quantizable);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros([3]), ParamRole::Weight);
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 3]);
    }
}
