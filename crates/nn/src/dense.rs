//! Fully-connected (linear) layer.

use crate::int_exec::quantize_activations;
use crate::layer::{join, Layer};
use crate::param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
use clado_tensor::{init, matmul, matmul_a_bt, matmul_at_b, Shape, Tensor};
use rand::Rng;

/// A linear layer `y = x Wᵀ + b` with weight `[out, in]`.
///
/// Accepts `[N, in]` inputs, or `[N, T, in]` token inputs (ViT), which are
/// processed as `[N·T, in]` and reshaped back.
#[derive(Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache: Option<(Tensor, Shape)>, // (2-D input, original input shape)
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = init::kaiming_normal([out_features, in_features], in_features, rng);
        Self {
            weight: Param::new(weight, ParamRole::Weight),
            bias: Param::new(Tensor::zeros([out_features]), ParamRole::Bias),
            in_features,
            out_features,
            cache: None,
        }
    }

    /// Marks the weight as excluded from quantization (e.g. a classifier
    /// head not present in the paper's layer lists).
    pub fn unquantized(mut self) -> Self {
        self.weight.quantizable = false;
        self
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Flattens leading dimensions so the last dimension is `in_features`.
    fn to_2d(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let last = shape.dim(shape.ndim() - 1);
        assert_eq!(
            last, self.in_features,
            "linear expects {} input features, got {last}",
            self.in_features
        );
        let rows = shape.numel() / last;
        x.reshape([rows, last]).expect("element count preserved")
    }

    /// Restores the original leading dimensions with a new last dimension.
    fn restore_leading_dims(&self, y: Tensor, original: Shape, last: usize) -> Tensor {
        let mut dims: Vec<usize> = original.dims().to_vec();
        *dims.last_mut().expect("non-empty shape") = last;
        y.reshape(dims.as_slice()).expect("element count preserved")
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let x2 = self.to_2d(&x);
        let mut y = match (&self.weight.int_exec, training) {
            // Integer execution: dynamic int8 activations against the
            // pre-quantized weight, exact i32 accumulation, requantize.
            (Some(ie), false) => {
                let rows = x2.shape().dim(0);
                let (qx, a_scale) = quantize_activations(x2.data());
                let mut acc = vec![0i32; rows * self.out_features];
                ie.matmul_a_bt(&qx, rows, 0, self.out_features, &mut acc);
                let mut y = Tensor::zeros([rows, self.out_features]);
                ie.requantize_into(&acc, self.out_features, 0, a_scale, y.data_mut());
                y
            }
            _ => matmul_a_bt(&x2, &self.weight.value),
        };
        let rows = y.shape().dim(0);
        let bd = self.bias.value.data();
        for r in 0..rows {
            let row = &mut y.data_mut()[r * self.out_features..(r + 1) * self.out_features];
            for (v, &b) in row.iter_mut().zip(bd) {
                *v += b;
            }
        }
        let orig = x.shape();
        self.cache = Some((x2, orig));
        self.restore_leading_dims(y, orig, self.out_features)
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let (x2, orig) = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let rows = x2.shape().dim(0);
        let d2 = d_out
            .reshape([rows, self.out_features])
            .expect("gradient shape matches forward output");
        // dW = d_outᵀ · x  → [out, in]
        self.weight.grad += &matmul_at_b(&d2, &x2);
        // db = column sums of d_out
        for r in 0..rows {
            let row = &d2.data()[r * self.out_features..(r + 1) * self.out_features];
            for (g, &d) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *g += d;
            }
        }
        // dx = d_out · W → [rows, in]
        let dx = matmul(&d2, &self.weight.value);
        self.restore_leading_dims(dx, orig, self.in_features)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "weight"), &mut self.weight);
        f(&join(prefix, "bias"), &mut self.bias);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "weight"), &self.weight);
        f(&join(prefix, "bias"), &self.bias);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(rng_seed: u64, in_f: usize, out_f: usize) -> Linear {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        Linear::new(in_f, out_f, &mut rng)
    }

    #[test]
    fn forward_known_values() {
        let mut l = make(0, 2, 2);
        // Overwrite with known weights.
        l.weight.value = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        l.bias.value = Tensor::from_vec([2], vec![0.5, -0.5]).unwrap();
        let y = l.forward(Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap(), false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn token_input_roundtrips_shape() {
        let mut l = make(1, 4, 6);
        let x = Tensor::zeros([2, 3, 4]);
        let y = l.forward(x, true);
        assert_eq!(y.shape().dims(), &[2, 3, 6]);
        let dx = l.backward(Tensor::zeros([2, 3, 6]));
        assert_eq!(dx.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = init::normal([4, 3], 0.0, 1.0, &mut rng);
        let seed = init::normal([4, 2], 0.0, 1.0, &mut rng);

        let y = l.forward(x.clone(), true);
        let _ = y;
        let dx = l.backward(seed.clone());

        let eps = 1e-3f32;
        // Weight gradient check.
        for idx in 0..l.weight.numel() {
            let mut lp = make(3, 3, 2);
            lp.weight.value = l.weight.value.clone();
            lp.bias.value = l.bias.value.clone();
            lp.weight.value.data_mut()[idx] += eps;
            let mut lm = make(3, 3, 2);
            lm.weight.value = l.weight.value.clone();
            lm.bias.value = l.bias.value.clone();
            lm.weight.value.data_mut()[idx] -= eps;
            let fp = lp.forward(x.clone(), false).dot(&seed);
            let fm = lm.forward(x.clone(), false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((fd - l.weight.grad.data()[idx]).abs() < 1e-2, "w[{idx}]");
        }
        // Input gradient check.
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let mut l2 = make(3, 3, 2);
            l2.weight.value = l.weight.value.clone();
            l2.bias.value = l.bias.value.clone();
            let fp = l2.forward(xp, false).dot(&seed);
            let fm = l2.forward(xm, false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((fd - dx.data()[idx]).abs() < 1e-2, "x[{idx}]");
        }
        // Bias gradient: column sums of seed.
        for o in 0..2 {
            let expect: f32 = (0..4).map(|r| seed.data()[r * 2 + o]).sum();
            assert!((l.bias.grad.data()[o] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn unquantized_flag() {
        let l = make(0, 2, 2).unquantized();
        assert!(!l.weight.quantizable);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_feature_count_panics() {
        let mut l = make(0, 3, 2);
        l.forward(Tensor::zeros([1, 4]), false);
    }
}
