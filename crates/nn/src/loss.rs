//! Cross-entropy loss and accuracy metrics.

use clado_tensor::{ops, Tensor};

/// Mean cross-entropy loss over a batch, with the logit gradient.
///
/// `logits` is `[N, K]`; `labels` holds `N` class indices.
///
/// # Panics
///
/// Panics if shapes disagree or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let sh = logits.shape();
    assert_eq!(sh.ndim(), 2, "logits must be [N, K], got {sh}");
    let (n, k) = (sh.dim(0), sh.dim(1));
    assert_eq!(
        labels.len(),
        n,
        "label count {} != batch size {n}",
        labels.len()
    );
    let log_probs = ops::log_softmax_rows(logits);
    let mut loss = 0.0f64;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        loss -= log_probs.data()[r * k + y] as f64;
    }
    loss /= n as f64;
    // d/dlogits of mean CE = (softmax − one_hot)/N.
    let mut grad = ops::softmax_rows(logits);
    let inv_n = 1.0 / n as f32;
    for (r, &y) in labels.iter().enumerate() {
        grad.data_mut()[r * k + y] -= 1.0;
    }
    grad.scale(inv_n);
    (loss, grad)
}

/// Mean cross-entropy loss only (no gradient) — the cheap path used by the
/// forward-only sensitivity probes.
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> f64 {
    let sh = logits.shape();
    let (n, k) = (sh.dim(0), sh.dim(1));
    let log_probs = ops::log_softmax_rows(logits);
    let mut loss = 0.0f64;
    for (r, &y) in labels.iter().enumerate() {
        loss -= log_probs.data()[r * k + y] as f64;
    }
    loss / n as f64
}

/// Top-1 accuracy in `[0, 1]`.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let sh = logits.shape();
    let (n, k) = (sh.dim(0), sh.dim(1));
    let mut correct = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        let row = &logits.data()[r * k..(r + 1) * k];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if pred == y {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec([2, 3], vec![10., 0., 0., 0., 10., 0.]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert_eq!(top1_accuracy(&logits, &[0, 1]), 1.0);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros([4, 10]);
        let (loss, _) = cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn loss_only_matches_loss_with_grad() {
        let logits = Tensor::from_vec([2, 2], vec![0.3, -0.4, 1.2, 0.1]).unwrap();
        let (l1, _) = cross_entropy(&logits, &[1, 0]);
        let l2 = cross_entropy_loss(&logits, &[1, 0]);
        assert!((l1 - l2).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let fd = (cross_entropy_loss(&p, &labels) - cross_entropy_loss(&m, &labels))
                / (2.0 * eps as f64);
            assert!((fd as f32 - grad.data()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(top1_accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        cross_entropy(&Tensor::zeros([1, 2]), &[5]);
    }
}
