//! # clado-nn
//!
//! The neural-network substrate of the CLADO reproduction: layers with
//! forward *and* backward passes, residual/attention blocks, a [`Network`]
//! container with named quantizable-weight access (what Algorithm 1
//! perturbs), cross-entropy loss, and an SGD trainer.
//!
//! Everything is CPU `f32` over [`clado_tensor::Tensor`]s; no autodiff tape —
//! each layer implements its own adjoint, which keeps the system small and
//! auditable.
//!
//! ## Example
//!
//! ```
//! use clado_nn::{cross_entropy, Linear, Network, Sequential, Sgd};
//! use clado_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Network::new(
//!     Sequential::new().push("fc", Linear::new(4, 2, &mut rng)),
//!     2,
//! );
//! let x = Tensor::zeros([1, 4]);
//! let logits = net.forward(x, true);
//! let (loss, grad) = cross_entropy(&logits, &[1]);
//! net.backward(grad);
//! Sgd::new(0.1, 0.9, 1e-4).step(&mut net);
//! assert!(loss > 0.0);
//! ```

#![warn(missing_docs)]

mod act_quant;
mod attention;
mod blocks;
mod conv_layer;
mod dense;
mod int_exec;
mod layer;
mod loss;
mod network;
mod norm;
mod param;
mod sgd;

pub use act_quant::ActQuant;
pub use attention::{MultiHeadAttention, TransformerBlock};
pub use blocks::{PatchEmbed, ResidualBlock, SqueezeExcite, TokenMeanPool};
pub use conv_layer::Conv2d;
pub use dense::Linear;
pub use int_exec::{dynamic_act_scale, quantize_activations, IntExecWeight};
pub use layer::{
    ActKind, Activation, AvgPool2d, Flatten, GlobalAvgPool, Layer, LayerClone, MaxPool2d,
    Sequential,
};
pub use loss::{cross_entropy, cross_entropy_loss, top1_accuracy};
pub use network::{Network, QuantizableLayer};
pub use norm::{BatchNorm2d, LayerNorm};
pub use param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
pub use sgd::Sgd;
