//! Normalization layers: BatchNorm2d and LayerNorm.

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use crate::layer::{join, Layer};
use crate::param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
use clado_tensor::Tensor;

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.1;
const LN_EPS: f32 = 1e-5;

/// Batch normalization over the channel dimension of `[N, C, H, W]`.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates (a fixed per-channel
/// affine map, which is what the CLADO sensitivity probes see).
#[derive(Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Param,
    running_var: Param,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    centered: Option<Tensor>, // Some in training mode
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer with γ=1, β=0 and unit running variance.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full([channels], 1.0), ParamRole::Norm),
            beta: Param::new(Tensor::zeros([channels]), ParamRole::Norm),
            running_mean: Param::new(Tensor::zeros([channels]), ParamRole::Buffer),
            running_var: Param::new(Tensor::full([channels], 1.0), ParamRole::Buffer),
            channels,
            cache: None,
        }
    }

    /// Running mean estimates, one per channel.
    pub fn running_mean(&self) -> &[f32] {
        self.running_mean.value.data()
    }

    /// Running variance estimates, one per channel.
    pub fn running_var(&self) -> &[f32] {
        self.running_var.value.data()
    }

    fn dims(&self, x: &Tensor) -> (usize, usize, usize) {
        let sh = x.shape();
        let d = sh.dims();
        assert_eq!(sh.ndim(), 4, "BatchNorm2d expects NCHW input, got {sh}");
        assert_eq!(
            d[1], self.channels,
            "channel mismatch: {} vs {}",
            d[1], self.channels
        );
        (d[0], d[2], d[3])
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let (n, h, w) = self.dims(&x);
        let c = self.channels;
        let plane = h * w;
        let count = (n * plane) as f32;
        let (mean, var): (Vec<f32>, Vec<f32>) = if training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ch in 0..c {
                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                for s in 0..n {
                    let base = (s * c + ch) * plane;
                    for &v in &x.data()[base..base + plane] {
                        sum += v as f64;
                        sum_sq += (v as f64) * (v as f64);
                    }
                }
                let m = sum / count as f64;
                mean[ch] = m as f32;
                var[ch] = ((sum_sq / count as f64) - m * m).max(0.0) as f32;
            }
            for ch in 0..c {
                let rm = &mut self.running_mean.value.data_mut()[ch];
                *rm = (1.0 - BN_MOMENTUM) * *rm + BN_MOMENTUM * mean[ch];
                let rv = &mut self.running_var.value.data_mut()[ch];
                *rv = (1.0 - BN_MOMENTUM) * *rv + BN_MOMENTUM * var[ch];
            }
            (mean, var)
        } else {
            (
                self.running_mean.value.data().to_vec(),
                self.running_var.value.data().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let mut x_hat = Tensor::zeros(x.shape());
        let mut out = Tensor::zeros(x.shape());
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();
        {
            let xh = x_hat.data_mut();
            let od = out.data_mut();
            for s in 0..n {
                for ch in 0..c {
                    let base = (s * c + ch) * plane;
                    let (m, is, g, b) = (mean[ch], inv_std[ch], gd[ch], bd[ch]);
                    for i in base..base + plane {
                        let xh_v = (x.data()[i] - m) * is;
                        xh[i] = xh_v;
                        od[i] = g * xh_v + b;
                    }
                }
            }
        }
        let centered = training.then(|| {
            let mut cent = x.clone();
            for s in 0..n {
                for ch in 0..c {
                    let base = (s * c + ch) * plane;
                    for v in &mut cent.data_mut()[base..base + plane] {
                        *v -= mean[ch];
                    }
                }
            }
            cent
        });
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            centered,
        });
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward requires a preceding forward");
        let sh = d_out.shape();
        let d = sh.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let gd = self.gamma.value.data().to_vec();

        // dγ, dβ are identical in both modes.
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * plane;
                let mut dg = 0.0f32;
                let mut db = 0.0f32;
                for i in base..base + plane {
                    dg += d_out.data()[i] * cache.x_hat.data()[i];
                    db += d_out.data()[i];
                }
                self.gamma.grad.data_mut()[ch] += dg;
                self.beta.grad.data_mut()[ch] += db;
            }
        }

        let mut dx = Tensor::zeros(sh);
        match &cache.centered {
            // Training mode: full batch-statistics gradient.
            Some(_) => {
                for ch in 0..c {
                    // Channel-wise sums of dŷ = d_out·γ and dŷ·x̂.
                    let mut sum_dxhat = 0.0f64;
                    let mut sum_dxhat_xhat = 0.0f64;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            let dxh = (d_out.data()[i] * gd[ch]) as f64;
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * cache.x_hat.data()[i] as f64;
                        }
                    }
                    let mean_dxhat = (sum_dxhat / count as f64) as f32;
                    let mean_dxhat_xhat = (sum_dxhat_xhat / count as f64) as f32;
                    let is = cache.inv_std[ch];
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            let dxh = d_out.data()[i] * gd[ch];
                            let xh = cache.x_hat.data()[i];
                            dx.data_mut()[i] = is * (dxh - mean_dxhat - xh * mean_dxhat_xhat);
                        }
                    }
                }
            }
            // Eval mode: fixed affine map, dx = d_out · γ · inv_std.
            None => {
                for s in 0..n {
                    for ch in 0..c {
                        let base = (s * c + ch) * plane;
                        let k = gd[ch] * cache.inv_std[ch];
                        for i in base..base + plane {
                            dx.data_mut()[i] = d_out.data()[i] * k;
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "gamma"), &mut self.gamma);
        f(&join(prefix, "beta"), &mut self.beta);
        f(&join(prefix, "running_mean"), &mut self.running_mean);
        f(&join(prefix, "running_var"), &mut self.running_var);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "gamma"), &self.gamma);
        f(&join(prefix, "beta"), &self.beta);
        f(&join(prefix, "running_mean"), &self.running_mean);
        f(&join(prefix, "running_var"), &self.running_var);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

/// Layer normalization over the last dimension (ViT-style).
#[derive(Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    features: usize,
    cache: Option<(Tensor, Vec<f32>)>, // (x̂, per-row inv_std)
}

impl LayerNorm {
    /// Creates a LayerNorm over the trailing `features` dimension.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full([features], 1.0), ParamRole::Norm),
            beta: Param::new(Tensor::zeros([features]), ParamRole::Norm),
            features,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let shape = x.shape();
        let dim = shape.dim(shape.ndim() - 1);
        assert_eq!(
            dim, self.features,
            "LayerNorm feature mismatch: {dim} vs {}",
            self.features
        );
        let rows = shape.numel() / dim;
        let mut x_hat = Tensor::zeros(shape);
        let mut out = Tensor::zeros(shape);
        let mut inv_stds = vec![0.0f32; rows];
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();
        for r in 0..rows {
            let row = &x.data()[r * dim..(r + 1) * dim];
            let mean = row.iter().map(|&v| v as f64).sum::<f64>() / dim as f64;
            let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / dim as f64;
            let inv_std = (1.0 / (var + LN_EPS as f64).sqrt()) as f32;
            inv_stds[r] = inv_std;
            let xh = &mut x_hat.data_mut()[r * dim..(r + 1) * dim];
            let od = &mut out.data_mut()[r * dim..(r + 1) * dim];
            for j in 0..dim {
                let v = (row[j] - mean as f32) * inv_std;
                xh[j] = v;
                od[j] = gd[j] * v + bd[j];
            }
        }
        let _ = training;
        self.cache = Some((x_hat, inv_stds));
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let (x_hat, inv_stds) = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let shape = d_out.shape();
        let dim = self.features;
        let rows = shape.numel() / dim;
        let gd = self.gamma.value.data().to_vec();
        let mut dx = Tensor::zeros(shape);
        for r in 0..rows {
            let dor = &d_out.data()[r * dim..(r + 1) * dim];
            let xhr = &x_hat.data()[r * dim..(r + 1) * dim];
            // Parameter gradients.
            for j in 0..dim {
                self.gamma.grad.data_mut()[j] += dor[j] * xhr[j];
                self.beta.grad.data_mut()[j] += dor[j];
            }
            // Input gradient.
            let mut mean_dxhat = 0.0f64;
            let mut mean_dxhat_xhat = 0.0f64;
            for j in 0..dim {
                let dxh = (dor[j] * gd[j]) as f64;
                mean_dxhat += dxh;
                mean_dxhat_xhat += dxh * xhr[j] as f64;
            }
            mean_dxhat /= dim as f64;
            mean_dxhat_xhat /= dim as f64;
            let dxr = &mut dx.data_mut()[r * dim..(r + 1) * dim];
            for j in 0..dim {
                let dxh = dor[j] * gd[j];
                dxr[j] = inv_stds[r] * (dxh - mean_dxhat as f32 - xhr[j] * mean_dxhat_xhat as f32);
            }
        }
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "gamma"), &mut self.gamma);
        f(&join(prefix, "beta"), &mut self.beta);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "gamma"), &self.gamma);
        f(&join(prefix, "beta"), &self.beta);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bn_training_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::normal([4, 2, 3, 3], 3.0, 2.0, &mut rng);
        let y = bn.forward(x, true);
        // Per channel: mean ≈ 0, var ≈ 1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let base = (s * 2 + ch) * 9;
                vals.extend_from_slice(&y.data()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        // Train on shifted data to move running stats.
        for _ in 0..50 {
            let x = init::normal([8, 1, 2, 2], 5.0, 1.0, &mut rng);
            bn.forward(x, true);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.5);
        // Eval on the same distribution ≈ normalized output.
        let x = init::normal([8, 1, 2, 2], 5.0, 1.0, &mut rng);
        let y = bn.forward(x, false);
        assert!(y.mean().abs() < 0.5);
    }

    #[test]
    fn bn_training_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = init::normal([2, 2, 2, 2], 1.0, 1.5, &mut rng);
        let seed = init::normal([2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        // Non-trivial γ/β.
        bn.gamma.value = Tensor::from_vec([2], vec![1.3, 0.7]).unwrap();
        bn.beta.value = Tensor::from_vec([2], vec![0.2, -0.1]).unwrap();
        bn.forward(x.clone(), true);
        // Reset running stats influence by re-creating for FD loss below.
        let dx = {
            let mut bn2 = BatchNorm2d::new(2);
            bn2.gamma.value = bn.gamma.value.clone();
            bn2.beta.value = bn.beta.value.clone();
            bn2.forward(x.clone(), true);
            bn2.backward(seed.clone())
        };
        let loss = |xx: &Tensor| {
            let mut bn2 = BatchNorm2d::new(2);
            bn2.gamma.value = bn.gamma.value.clone();
            bn2.beta.value = bn.beta.value.clone();
            bn2.forward(xx.clone(), true).dot(&seed)
        };
        let eps = 1e-3f32;
        for idx in [0usize, 3, 9, 15] {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fd = ((loss(&p) - loss(&m)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - dx.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} vs {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn layernorm_rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., 10., 20., 30., 40.]).unwrap();
        let y = ln.forward(x, false);
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::normal([3, 5], 0.5, 2.0, &mut rng);
        let seed = init::normal([3, 5], 0.0, 1.0, &mut rng);
        let mut ln = LayerNorm::new(5);
        ln.gamma.value = init::normal([5], 1.0, 0.2, &mut rng);
        ln.forward(x.clone(), true);
        let dx = {
            let mut ln2 = LayerNorm::new(5);
            ln2.gamma.value = ln.gamma.value.clone();
            ln2.forward(x.clone(), true);
            ln2.backward(seed.clone())
        };
        let loss = |xx: &Tensor| {
            let mut ln2 = LayerNorm::new(5);
            ln2.gamma.value = ln.gamma.value.clone();
            ln2.forward(xx.clone(), false).dot(&seed)
        };
        let eps = 1e-3f32;
        for idx in 0..x.numel() {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fd = ((loss(&p) - loss(&m)) / (2.0 * eps as f64)) as f32;
            assert!((fd - dx.data()[idx]).abs() < 2e-2, "idx {idx}");
        }
    }

    #[test]
    fn bn_eval_backward_is_affine() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full([1, 1, 2, 2], 2.0);
        bn.forward(x, false);
        let dx = bn.backward(Tensor::full([1, 1, 2, 2], 1.0));
        // γ=1, running_var=1 → dx = 1/sqrt(1+eps).
        for &v in dx.data() {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }
}
