//! Composite CNN blocks: residual blocks, squeeze-excite, patch embedding.

use crate::conv_layer::Conv2d;
use crate::dense::Linear;
use crate::layer::{join, ActKind, Layer, Sequential};
use crate::param::{Param, ParamVisitor, ParamVisitorRef};
use clado_tensor::{ops, Shape, Tensor};
use rand::Rng;

/// A residual block: `act(main(x) + shortcut(x))`.
///
/// `shortcut = None` denotes the identity connection; `post_act = None`
/// skips the post-addition activation (used by MobileNet inverted
/// residuals, which are linear at the block output).
#[derive(Clone)]
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    post_act: Option<ActKind>,
    cache: Option<(Tensor, Option<Tensor>)>, // (pre-activation sum, input when identity shortcut)
}

impl ResidualBlock {
    /// Creates a residual block.
    pub fn new(main: Sequential, shortcut: Option<Sequential>, post_act: Option<ActKind>) -> Self {
        Self {
            main,
            shortcut,
            post_act,
            cache: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let main_out = self.main.forward(x.clone(), training);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(x, training),
            None => x,
        };
        let sum = &main_out + &short_out;
        let out = match self.post_act {
            Some(ActKind::Relu) => ops::relu_forward(&sum),
            Some(ActKind::Gelu) => ops::gelu_forward(&sum),
            Some(ActKind::HardSwish) => ops::hardswish_forward(&sum),
            None => sum.clone(),
        };
        let _ = training;
        self.cache = Some((sum, None));
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let (sum, _) = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let d_sum = match self.post_act {
            Some(ActKind::Relu) => ops::relu_backward(&sum, &d_out),
            Some(ActKind::Gelu) => ops::gelu_backward(&sum, &d_out),
            Some(ActKind::HardSwish) => ops::hardswish_backward(&sum, &d_out),
            None => d_out,
        };
        let d_main = self.main.backward(d_sum.clone());
        let d_short = match &mut self.shortcut {
            Some(s) => s.backward(d_sum),
            None => d_sum,
        };
        &d_main + &d_short
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        self.main.visit_params(prefix, f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(&join(prefix, "downsample"), f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        self.main.visit_params_ref(prefix, f);
        if let Some(s) = &self.shortcut {
            s.visit_params_ref(&join(prefix, "downsample"), f);
        }
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params_fast(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params_fast(f);
        }
    }
}

/// Squeeze-and-excitation: channel gating via two small FC layers
/// (MobileNetV3's `block.2.fc1`/`fc2` in the paper's layer list).
#[derive(Clone)]
pub struct SqueezeExcite {
    fc1: Linear,
    fc2: Linear,
    cache: Option<SeCache>,
    /// Pre-ReLU hidden activations, needed by the ReLU backward.
    relu_input: Option<Tensor>,
}

#[derive(Clone)]
struct SeCache {
    input: Tensor,
    gates: Tensor, // [N, C] after sigmoid
}

impl SqueezeExcite {
    /// Creates an SE block over `channels` with the given reduction ratio.
    ///
    /// # Panics
    ///
    /// Panics if `channels / reduction` is zero.
    pub fn new(channels: usize, reduction: usize, rng: &mut impl Rng) -> Self {
        let hidden = channels / reduction;
        assert!(
            hidden > 0,
            "reduction {reduction} too large for {channels} channels"
        );
        Self {
            fc1: Linear::new(channels, hidden, rng),
            fc2: Linear::new(hidden, channels, rng),
            cache: None,
            relu_input: None,
        }
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let pooled = clado_tensor::global_avg_pool_forward(&x); // [N, C]
        let h = self.fc1.forward(pooled, training);
        let h = ops::relu_forward(&h);
        let g = self.fc2.forward(h.clone(), training);
        let gates = ops::sigmoid_forward(&g);
        // Scale channels.
        let sh = x.shape();
        let d = sh.dims();
        let (n, c, hh, ww) = (d[0], d[1], d[2], d[3]);
        let mut out = x.clone();
        for s in 0..n {
            for ch in 0..c {
                let gate = gates.data()[s * c + ch];
                let base = (s * c + ch) * hh * ww;
                for v in &mut out.data_mut()[base..base + hh * ww] {
                    *v *= gate;
                }
            }
        }
        let _ = training;
        self.cache = Some(SeCache { input: x, gates });
        self.relu_input = Some(h);
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let relu_in = self.relu_input.take().expect("cache consistency");
        let sh = cache.input.shape();
        let d = sh.dims();
        let (n, c, hh, ww) = (d[0], d[1], d[2], d[3]);
        // dx (direct path) and d_gates.
        let mut dx = d_out.clone();
        let mut d_gates = Tensor::zeros([n, c]);
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hh * ww;
                let gate = cache.gates.data()[s * c + ch];
                let mut dg = 0.0f32;
                for i in base..base + hh * ww {
                    dg += d_out.data()[i] * cache.input.data()[i];
                    dx.data_mut()[i] = d_out.data()[i] * gate;
                }
                d_gates.data_mut()[s * c + ch] = dg;
            }
        }
        // Through sigmoid → fc2 → relu → fc1 → global-avg-pool.
        let d_g = ops::sigmoid_backward_from_output(&cache.gates, &d_gates);
        let d_h = self.fc2.backward(d_g);
        let d_h = ops::relu_backward(&relu_in, &d_h);
        let d_pooled = self.fc1.backward(d_h);
        let d_from_pool = clado_tensor::global_avg_pool_backward(&d_pooled, sh);
        dx += &d_from_pool;
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        self.fc1.visit_params(&join(prefix, "fc1"), f);
        self.fc2.visit_params(&join(prefix, "fc2"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        self.fc1.visit_params_ref(&join(prefix, "fc1"), f);
        self.fc2.visit_params_ref(&join(prefix, "fc2"), f);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params_fast(f);
        self.fc2.visit_params_fast(f);
    }
}

/// Patch embedding: a stride-`p` convolution followed by flattening the
/// spatial grid into tokens `[N, T, D]`, plus a learned positional
/// embedding.
#[derive(Clone)]
pub struct PatchEmbed {
    conv: Conv2d,
    pos: crate::param::Param,
    tokens: usize,
    cache_shape: Option<Shape>,
}

impl PatchEmbed {
    /// Creates a patch embedding for `in_channels`×`img`×`img` inputs with
    /// square patches of side `patch` and embedding dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `patch` does not divide `img`.
    pub fn new(
        in_channels: usize,
        img: usize,
        patch: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(
            img % patch,
            0,
            "patch size {patch} must divide image size {img}"
        );
        let grid = img / patch;
        let tokens = grid * grid;
        let spec = clado_tensor::Conv2dSpec::new(in_channels, dim, patch, patch, 0);
        let pos = clado_tensor::init::normal([tokens, dim], 0.0, 0.02, rng);
        Self {
            conv: Conv2d::new(spec, true, rng),
            pos: crate::param::Param::new(pos, crate::param::ParamRole::Norm),
            tokens,
            cache_shape: None,
        }
    }

    /// Number of tokens produced per sample.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Layer for PatchEmbed {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let y = self.conv.forward(x, training); // [N, D, g, g]
        let sh = y.shape();
        let d = sh.dims();
        let (n, dim, g1, g2) = (d[0], d[1], d[2], d[3]);
        let t = g1 * g2;
        debug_assert_eq!(t, self.tokens);
        // [N, D, T] → [N, T, D] transpose.
        let mut out = Tensor::zeros([n, t, dim]);
        for s in 0..n {
            for c in 0..dim {
                for tok in 0..t {
                    out.data_mut()[(s * t + tok) * dim + c] = y.data()[(s * dim + c) * t + tok];
                }
            }
        }
        // Add positional embedding.
        for s in 0..n {
            for tok in 0..t {
                let base = (s * t + tok) * dim;
                let pbase = tok * dim;
                for j in 0..dim {
                    out.data_mut()[base + j] += self.pos.value.data()[pbase + j];
                }
            }
        }
        let _ = training;
        self.cache_shape = Some(sh);
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let sh = self
            .cache_shape
            .take()
            .expect("backward requires a training forward");
        let d = sh.dims();
        let (n, dim, g1, g2) = (d[0], d[1], d[2], d[3]);
        let t = g1 * g2;
        // Positional-embedding gradient.
        for s in 0..n {
            for tok in 0..t {
                let base = (s * t + tok) * dim;
                let pbase = tok * dim;
                for j in 0..dim {
                    self.pos.grad.data_mut()[pbase + j] += d_out.data()[base + j];
                }
            }
        }
        // Transpose back to [N, D, g, g] and through the conv.
        let mut dy = Tensor::zeros(sh);
        for s in 0..n {
            for c in 0..dim {
                for tok in 0..t {
                    dy.data_mut()[(s * dim + c) * t + tok] = d_out.data()[(s * t + tok) * dim + c];
                }
            }
        }
        self.conv.backward(dy)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        self.conv.visit_params(&join(prefix, "projection"), f);
        f(&join(prefix, "position_embeddings"), &mut self.pos);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        self.conv.visit_params_ref(&join(prefix, "projection"), f);
        f(&join(prefix, "position_embeddings"), &self.pos);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv.visit_params_fast(f);
        f(&mut self.pos);
    }
}

/// Mean pooling over tokens: `[N, T, D] → [N, D]` (classifier head input;
/// replaces the class token for simplicity).
#[derive(Debug, Default, Clone)]
pub struct TokenMeanPool {
    cache: Option<Shape>,
}

impl TokenMeanPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for TokenMeanPool {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        let sh = x.shape();
        assert_eq!(sh.ndim(), 3, "TokenMeanPool expects [N, T, D], got {sh}");
        let (n, t, d) = (sh.dim(0), sh.dim(1), sh.dim(2));
        let mut out = Tensor::zeros([n, d]);
        let inv = 1.0 / t as f32;
        for s in 0..n {
            for tok in 0..t {
                let base = (s * t + tok) * d;
                for j in 0..d {
                    out.data_mut()[s * d + j] += x.data()[base + j] * inv;
                }
            }
        }
        let _ = training;
        self.cache = Some(sh);
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let sh = self
            .cache
            .take()
            .expect("backward requires a training forward");
        let (n, t, d) = (sh.dim(0), sh.dim(1), sh.dim(2));
        let inv = 1.0 / t as f32;
        let mut dx = Tensor::zeros(sh);
        for s in 0..n {
            for tok in 0..t {
                let base = (s * t + tok) * d;
                for j in 0..d {
                    dx.data_mut()[base + j] = d_out.data()[s * d + j] * inv;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut ParamVisitorRef) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Sequential};
    use clado_tensor::{init, Conv2dSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv(cin: usize, cout: usize, rng: &mut StdRng) -> Conv2d {
        Conv2d::new(Conv2dSpec::new(cin, cout, 3, 1, 1), false, rng)
    }

    #[test]
    fn residual_identity_block_shapes_and_gradient_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let main = Sequential::new()
            .push("conv1", conv(4, 4, &mut rng))
            .push("relu", Activation::new(ActKind::Relu))
            .push("conv2", conv(4, 4, &mut rng));
        let mut block = ResidualBlock::new(main, None, Some(ActKind::Relu));
        let x = init::normal([2, 4, 5, 5], 0.0, 1.0, &mut rng);
        let y = block.forward(x.clone(), true);
        assert_eq!(y.shape(), x.shape());
        let dx = block.backward(Tensor::full(y.shape(), 1.0));
        assert_eq!(dx.shape(), x.shape());
        // Identity path guarantees some gradient reaches the input.
        assert!(dx.norm() > 0.0);
    }

    #[test]
    fn residual_block_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let main = Sequential::new().push("conv1", conv(2, 2, &mut rng));
        let mut block = ResidualBlock::new(main, None, Some(ActKind::Relu));
        let x = init::normal([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let seed = init::normal([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        block.forward(x.clone(), true);
        let dx = block.backward(seed.clone());
        let eps = 1e-3f32;
        for idx in [0usize, 7, 15, 30] {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fp = block.forward(p, false).dot(&seed);
            let fm = block.forward(m, false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((fd - dx.data()[idx]).abs() < 3e-2, "idx {idx}");
        }
    }

    #[test]
    fn squeeze_excite_gates_channels() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut se = SqueezeExcite::new(4, 2, &mut rng);
        let x = init::normal([1, 4, 3, 3], 0.0, 1.0, &mut rng);
        let y = se.forward(x.clone(), false);
        assert_eq!(y.shape(), x.shape());
        // Gates are in (0, 1): output magnitude never exceeds input.
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!(a.abs() <= b.abs() + 1e-6);
        }
    }

    #[test]
    fn squeeze_excite_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut se = SqueezeExcite::new(2, 1, &mut rng);
        let x = init::normal([1, 2, 2, 2], 0.0, 1.0, &mut rng);
        let seed = init::normal([1, 2, 2, 2], 0.0, 1.0, &mut rng);
        se.forward(x.clone(), true);
        let dx = se.backward(seed.clone());
        let eps = 1e-3f32;
        for idx in 0..x.numel() {
            let mut p = x.clone();
            p.data_mut()[idx] += eps;
            let mut m = x.clone();
            m.data_mut()[idx] -= eps;
            let fp = se.forward(p, false).dot(&seed);
            let fm = se.forward(m, false).dot(&seed);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - dx.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} vs {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn patch_embed_tokenizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pe = PatchEmbed::new(3, 8, 4, 16, &mut rng);
        assert_eq!(pe.tokens(), 4);
        let x = init::normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = pe.forward(x, true);
        assert_eq!(y.shape().dims(), &[2, 4, 16]);
        let dx = pe.backward(Tensor::zeros([2, 4, 16]));
        assert_eq!(dx.shape().dims(), &[2, 3, 8, 8]);
    }

    #[test]
    fn token_mean_pool_roundtrip() {
        let mut tp = TokenMeanPool::new();
        let x = Tensor::from_vec([1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = tp.forward(x, true);
        assert_eq!(y.data(), &[2.0, 3.0]);
        let dx = tp.backward(Tensor::from_vec([1, 2], vec![2.0, 4.0]).unwrap());
        assert_eq!(dx.data(), &[1.0, 2.0, 1.0, 2.0]);
    }
}
