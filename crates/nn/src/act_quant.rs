//! Activation fake-quantization.
//!
//! The paper's experimental setup quantizes activations to 8 bits alongside
//! the mixed-precision weights. [`ActQuant`] implements per-tensor symmetric
//! activation quantization with running-absmax calibration and a
//! straight-through-estimator backward (gradient passes where the
//! activation was inside the clip range).

use crate::layer::{join, Layer};
use crate::param::{Param, ParamRole, ParamVisitor, ParamVisitorRef};
use clado_tensor::Tensor;

/// Momentum of the running absmax estimate during calibration.
const CALIB_MOMENTUM: f32 = 0.1;

/// A fake-quantization layer for activations.
///
/// In training mode it *calibrates*: tracks a running estimate of the
/// activation absmax and quantizes with the current estimate. In evaluation
/// mode it applies the frozen estimate. The scale is stored as a buffer, so
/// it serializes with the model.
#[derive(Clone)]
pub struct ActQuant {
    bits: u8,
    absmax: Param,                // 1-element buffer
    cache: Option<(Tensor, f32)>, // (input, scale) for the STE backward
}

impl ActQuant {
    /// Creates an activation quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u8) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "activation bits must be in 2..=16, got {bits}"
        );
        Self {
            bits,
            absmax: Param::new(Tensor::zeros([1]), ParamRole::Buffer),
            cache: None,
        }
    }

    /// Quantization bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The current absmax estimate.
    pub fn absmax(&self) -> f32 {
        self.absmax.value.data()[0]
    }

    fn qmax(&self) -> f32 {
        ((1i32 << (self.bits - 1)) - 1) as f32
    }
}

impl Layer for ActQuant {
    fn forward(&mut self, x: Tensor, training: bool) -> Tensor {
        if training {
            let batch_absmax = x.abs_max();
            let est = &mut self.absmax.value.data_mut()[0];
            *est = if *est == 0.0 {
                batch_absmax
            } else {
                (1.0 - CALIB_MOMENTUM) * *est + CALIB_MOMENTUM * batch_absmax
            };
        }
        let absmax = self.absmax.value.data()[0];
        if absmax == 0.0 {
            self.cache = Some((x.clone(), 0.0));
            return x;
        }
        let qmax = self.qmax();
        let scale = absmax / qmax;
        let inv = 1.0 / scale;
        let out = x.map(|v| (v * inv).round().clamp(-qmax - 1.0, qmax) * scale);
        self.cache = Some((x, scale));
        out
    }

    fn backward(&mut self, d_out: Tensor) -> Tensor {
        let (x, scale) = self
            .cache
            .take()
            .expect("backward requires a preceding forward");
        if scale == 0.0 {
            return d_out;
        }
        let qmax = self.qmax();
        let (lo, hi) = (-(qmax + 1.0) * scale, qmax * scale);
        // Straight-through estimator with clip masking.
        x.zip(&d_out, |xi, g| if xi >= lo && xi <= hi { g } else { 0.0 })
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor) {
        f(&join(prefix, "absmax"), &mut self.absmax);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut ParamVisitorRef) {
        f(&join(prefix, "absmax"), &self.absmax);
    }

    fn visit_params_fast(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.absmax);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_tracks_absmax() {
        let mut aq = ActQuant::new(8);
        let x = Tensor::from_vec([4], vec![0.5, -2.0, 1.0, 0.1]).unwrap();
        aq.forward(x.clone(), true);
        assert!(
            (aq.absmax() - 2.0).abs() < 1e-6,
            "first batch seeds the estimate"
        );
        // Second batch with smaller absmax nudges the estimate down.
        let y = Tensor::from_vec([4], vec![0.1, -1.0, 0.2, 0.0]).unwrap();
        aq.forward(y, true);
        assert!(aq.absmax() < 2.0 && aq.absmax() > 1.0);
    }

    #[test]
    fn eight_bit_quantization_is_nearly_transparent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut aq = ActQuant::new(8);
        let x = init::normal([256], 0.0, 1.0, &mut rng);
        aq.forward(x.clone(), true); // calibrate
        let y = aq.forward(x.clone(), false);
        let err = (&y - &x).abs_max();
        assert!(
            err < x.abs_max() / 100.0,
            "8-bit activation error too large: {err}"
        );
    }

    #[test]
    fn low_bit_quantization_snaps_to_grid() {
        let mut aq = ActQuant::new(2);
        let x = Tensor::from_vec([5], vec![-1.0, -0.4, 0.0, 0.4, 1.0]).unwrap();
        aq.forward(x.clone(), true);
        let y = aq.forward(x, false);
        // 2-bit: levels {-2,-1,0,1}·scale with scale = absmax/1.
        let scale = aq.absmax();
        for &v in y.data() {
            let level = v / scale;
            assert!((level - level.round()).abs() < 1e-5, "{v} off-grid");
        }
    }

    #[test]
    fn ste_backward_masks_clipped_inputs() {
        let mut aq = ActQuant::new(2);
        // Seed absmax = 1 → clip range [-2, 1].
        aq.forward(Tensor::from_vec([1], vec![1.0]).unwrap(), true);
        let x = Tensor::from_vec([3], vec![0.5, 5.0, -5.0]).unwrap();
        aq.forward(x, false);
        let dx = aq.backward(Tensor::full([3], 1.0));
        assert_eq!(dx.data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_calibration_is_identity() {
        let mut aq = ActQuant::new(4);
        let x = Tensor::from_vec([2], vec![0.3, -0.7]).unwrap();
        // Eval before any calibration: absmax 0 → pass-through.
        let y = aq.forward(x.clone(), false);
        assert_eq!(y.data(), x.data());
        let dx = aq.backward(Tensor::full([2], 2.0));
        assert_eq!(dx.data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "activation bits")]
    fn invalid_bits_panic() {
        ActQuant::new(1);
    }
}
