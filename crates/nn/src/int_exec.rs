//! Integer execution mode: pre-quantized weights that dense/conv layers
//! run through the real int8 / packed-int4 GEMM instead of float.
//!
//! The rest of the MPQ machinery *plans* bit-assignments by probing
//! fake-quantized float weights. Installing an [`IntExecWeight`] on a
//! layer's weight [`crate::Param`] switches that layer's eval-mode forward
//! to genuine integer arithmetic:
//!
//! 1. Weights are quantized **once** with the same MSE-calibrated scales
//!    as `clado_quant::quantize_weights`, so the stored levels dequantize
//!    bit-for-bit to the fake-quant reference (`q·s == Q(w)`).
//! 2. Activations are quantized dynamically per tensor (symmetric absmax)
//!    at each forward.
//! 3. Products accumulate exactly in `i32` and requantize back to f32 at
//!    the layer boundary; biases and everything downstream stay float.
//!
//! Bit-widths of 5–8 run as int8; 1–4 pack two levels per byte (int4
//! storage). Widths above 8 and affine schemes fall back to float
//! execution (the layer simply keeps `int_exec = None`).

use clado_quant::{calibrate_symmetric, BitWidth, QuantScheme};
use clado_tensor::igemm::{igemm_i4_a_bt, igemm_i8_a_bt, pack_i4, quantize_i8, requantize, Scales};
use clado_tensor::Tensor;

/// Quantized level storage for one weight tensor.
#[derive(Debug, Clone)]
enum IntWeightData {
    /// One signed level per element, row-major `[rows, cols]`.
    I8(Vec<i8>),
    /// Rows packed two nibbles per byte; each row occupies
    /// `cols.div_ceil(2)` bytes.
    I4(Vec<u8>),
}

/// Per-tensor or per-output-channel weight scales.
#[derive(Debug, Clone)]
enum WeightScales {
    PerTensor(f32),
    PerChannel(Vec<f32>),
}

/// A weight tensor prepared for integer execution: quantized levels plus
/// the scales needed to requantize i32 accumulators back to f32.
///
/// Rows are output channels (dimension 0 of the weight tensor); columns
/// are the flattened reduction axis. In every integer GEMM the weight is
/// the `Bᵀ` operand, so output channel = output column, which is what
/// [`IntExecWeight::requantize_into`] assumes.
#[derive(Debug, Clone)]
pub struct IntExecWeight {
    bits: u8,
    rows: usize,
    cols: usize,
    data: IntWeightData,
    scales: WeightScales,
}

impl IntExecWeight {
    /// Quantizes `value` to `bits` for integer execution, calibrating
    /// scales exactly like `clado_quant::quantize_weights` (same MSE grid,
    /// same rounding), so the stored levels dequantize to the fake-quant
    /// reference bit-for-bit.
    ///
    /// Returns `None` when integer execution cannot represent the
    /// configuration: more than 8 bits, or an affine (zero-point) scheme.
    pub fn prepare(value: &Tensor, bits: BitWidth, scheme: QuantScheme) -> Option<Self> {
        if bits.bits() > 8 || scheme == QuantScheme::PerChannelAffine {
            return None;
        }
        let rows = value.shape().dim(0);
        let cols = value.numel() / rows;
        let (qmin, qmax) = bits.signed_levels();
        let w = value.data();
        let (q, scales) = match scheme {
            QuantScheme::PerTensorSymmetric => {
                let params = calibrate_symmetric(w, bits);
                (
                    quantize_i8(w, params.scale, qmin, qmax),
                    WeightScales::PerTensor(params.scale),
                )
            }
            QuantScheme::PerChannelSymmetric => {
                let mut q = Vec::with_capacity(w.len());
                let mut per_channel = Vec::with_capacity(rows);
                for c in 0..rows {
                    let slice = &w[c * cols..(c + 1) * cols];
                    let params = calibrate_symmetric(slice, bits);
                    q.extend(quantize_i8(slice, params.scale, qmin, qmax));
                    per_channel.push(params.scale);
                }
                (q, WeightScales::PerChannel(per_channel))
            }
            QuantScheme::PerChannelAffine => unreachable!("filtered above"),
        };
        let data = if bits.bits() <= 4 {
            let mut packed = Vec::with_capacity(rows * cols.div_ceil(2));
            for row in q.chunks(cols) {
                packed.extend(pack_i4(row));
            }
            IntWeightData::I4(packed)
        } else {
            IntWeightData::I8(q)
        };
        Some(Self {
            bits: bits.bits(),
            rows,
            cols,
            data,
            scales,
        })
    }

    /// The bit-width this weight executes at.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Output channels (weight rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Flattened reduction length (weight columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `acc[m × nrows] = qa[m × cols] · Wq[row0..row0+nrows]ᵀ` with exact
    /// i32 accumulation, over a contiguous row range of the weight (conv
    /// groups pass their slice; dense layers pass the full range).
    ///
    /// # Panics
    ///
    /// Panics if the row range or buffer lengths are inconsistent.
    pub fn matmul_a_bt(&self, qa: &[i8], m: usize, row0: usize, nrows: usize, acc: &mut [i32]) {
        assert!(row0 + nrows <= self.rows, "weight row range out of bounds");
        match &self.data {
            IntWeightData::I8(q) => {
                let b = &q[row0 * self.cols..(row0 + nrows) * self.cols];
                igemm_i8_a_bt(qa, b, acc, m, self.cols, nrows);
            }
            IntWeightData::I4(packed) => {
                let row_bytes = self.cols.div_ceil(2);
                let b = &packed[row0 * row_bytes..(row0 + nrows) * row_bytes];
                igemm_i4_a_bt(qa, b, acc, m, self.cols, nrows);
            }
        }
    }

    /// Requantizes an accumulator produced by [`IntExecWeight::matmul_a_bt`]
    /// over the same row range: `out[i][j] = acc[i][j] · a_scale · s_{row0+j}`.
    ///
    /// # Panics
    ///
    /// Panics on buffer length mismatches.
    pub fn requantize_into(
        &self,
        acc: &[i32],
        nrows: usize,
        row0: usize,
        a_scale: f32,
        out: &mut [f32],
    ) {
        match &self.scales {
            WeightScales::PerTensor(s) => {
                requantize(acc, nrows, a_scale, Scales::PerTensor(*s), out)
            }
            WeightScales::PerChannel(s) => requantize(
                acc,
                nrows,
                a_scale,
                Scales::PerChannel(&s[row0..row0 + nrows]),
                out,
            ),
        }
    }

    /// Dequantizes the stored levels back to f32 — bit-for-bit equal to
    /// `clado_quant::quantize_weights` on the source tensor (up to the
    /// sign of zero, which the integer domain normalizes to `+0.0`).
    pub fn dequantize(&self) -> Vec<f32> {
        let levels: Vec<i8> = match &self.data {
            IntWeightData::I8(q) => q.clone(),
            IntWeightData::I4(packed) => {
                let row_bytes = self.cols.div_ceil(2);
                let mut out = Vec::with_capacity(self.rows * self.cols);
                for r in 0..self.rows {
                    out.extend(clado_tensor::igemm::unpack_i4(
                        &packed[r * row_bytes..(r + 1) * row_bytes],
                        self.cols,
                    ));
                }
                out
            }
        };
        levels
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let s = match &self.scales {
                    WeightScales::PerTensor(s) => *s,
                    WeightScales::PerChannel(s) => s[i / self.cols],
                };
                q as f32 * s
            })
            .collect()
    }
}

/// Dynamic per-tensor activation scale: symmetric absmax over 127 levels.
/// Returns `0.0` for an all-zero tensor (quantizes to all-zero levels).
pub fn dynamic_act_scale(x: &[f32]) -> f32 {
    let absmax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    absmax / 127.0
}

/// Quantizes activations with a dynamic per-tensor scale, returning the
/// levels and the scale.
pub fn quantize_activations(x: &[f32]) -> (Vec<i8>, f32) {
    let scale = dynamic_act_scale(x);
    (quantize_i8(x, scale, -127, 127), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_quant::quantize_weights;

    fn weight(shape: [usize; 2], seed: u64) -> Tensor {
        let mut s = seed | 1;
        let data: Vec<f32> = (0..shape[0] * shape[1])
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn dequantize_matches_fake_quant_reference() {
        let w = weight([6, 17], 11);
        for bits in [2u8, 4, 8] {
            for scheme in [
                QuantScheme::PerTensorSymmetric,
                QuantScheme::PerChannelSymmetric,
            ] {
                let ie = IntExecWeight::prepare(&w, BitWidth::of(bits), scheme).unwrap();
                let reference = quantize_weights(&w, BitWidth::of(bits), scheme);
                for (i, (&got, &want)) in ie.dequantize().iter().zip(reference.data()).enumerate() {
                    if want == 0.0 {
                        assert_eq!(got, 0.0, "{bits}b {scheme:?} idx {i}");
                    } else {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{bits}b {scheme:?} idx {i}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unsupported_configs_fall_back_to_float() {
        let w = weight([2, 4], 3);
        assert!(
            IntExecWeight::prepare(&w, BitWidth::of(16), QuantScheme::PerTensorSymmetric).is_none()
        );
        assert!(
            IntExecWeight::prepare(&w, BitWidth::of(8), QuantScheme::PerChannelAffine).is_none()
        );
    }

    #[test]
    fn low_bits_pack_to_nibbles() {
        let w = weight([4, 5], 7);
        let ie =
            IntExecWeight::prepare(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric).unwrap();
        assert!(matches!(ie.data, IntWeightData::I4(_)));
        assert_eq!(ie.bits(), 2);
        // Dequantized int4 storage still matches the reference.
        let reference = quantize_weights(&w, BitWidth::of(2), QuantScheme::PerTensorSymmetric);
        for (&got, &want) in ie.dequantize().iter().zip(reference.data()) {
            assert!(got == want, "{got} vs {want}");
        }
    }

    #[test]
    fn activation_quantization_is_symmetric() {
        let x = vec![1.0f32, -2.0, 0.5, 2.0];
        let (q, s) = quantize_activations(&x);
        assert_eq!(s, 2.0 / 127.0);
        assert_eq!(q[1], -127);
        assert_eq!(q[3], 127);
        let (qz, sz) = quantize_activations(&[0.0; 4]);
        assert_eq!(sz, 0.0);
        assert_eq!(qz, vec![0; 4]);
    }
}
