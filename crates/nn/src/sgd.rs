//! Stochastic gradient descent with momentum and weight decay.

use crate::network::Network;
use crate::param::ParamRole;
use clado_tensor::Tensor;
use std::collections::HashMap;

/// SGD optimizer with classical momentum and decoupled L2 weight decay on
/// weight tensors (norm parameters and biases are not decayed, the usual
/// convention).
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay applied to `ParamRole::Weight` tensors.
    pub weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is non-positive or any coefficient is negative.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            momentum >= 0.0 && weight_decay >= 0.0,
            "coefficients must be non-negative"
        );
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Applies one update step from the accumulated gradients, then zeroes
    /// the gradients.
    pub fn step(&mut self, network: &mut Network) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        network.visit_params(&mut |name, p| {
            if p.role == ParamRole::Buffer {
                return;
            }
            let mut grad = p.grad.clone();
            if weight_decay > 0.0 && p.role == ParamRole::Weight {
                grad.axpy(weight_decay, &p.value);
            }
            let update = if momentum > 0.0 {
                let v = velocity
                    .entry(name.to_string())
                    .or_insert_with(|| Tensor::zeros(p.value.shape()));
                v.scale(momentum);
                v.axpy(1.0, &grad);
                v.clone()
            } else {
                grad
            };
            p.value.axpy(-lr, &update);
            p.zero_grad();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Linear;
    use crate::layer::Sequential;
    use crate::loss::cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(Sequential::new().push("fc", Linear::new(4, 2, &mut rng)), 2)
    }

    #[test]
    fn sgd_reduces_loss_on_separable_data() {
        let mut net = toy_network();
        let mut sgd = Sgd::new(0.5, 0.9, 0.0);
        // Two linearly separable points.
        let x = Tensor::from_vec([2, 4], vec![1., 0., 0., 0., 0., 1., 0., 0.]).unwrap();
        let labels = [0usize, 1];
        let mut losses = Vec::new();
        for _ in 0..30 {
            let logits = net.forward(x.clone(), true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            losses.push(loss);
            net.backward(grad);
            sgd.step(&mut net);
        }
        assert!(
            losses[29] < losses[0] * 0.2,
            "{:?}",
            (losses[0], losses[29])
        );
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut net = toy_network();
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        // Constant gradient of 1 on a weight should accelerate.
        let w0 = net.weight(0).data()[0];
        for _ in 0..2 {
            net.visit_params(&mut |_, p| {
                p.grad.data_mut().fill(1.0);
            });
            sgd.step(&mut net);
        }
        // Step 1: -0.1, step 2: -0.1·(1 + 0.9) → total -0.29.
        let w2 = net.weight(0).data()[0];
        assert!((w2 - (w0 - 0.29)).abs() < 1e-5, "{w0} -> {w2}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = toy_network();
        let mut sgd = Sgd::new(0.1, 0.0, 0.1);
        let w0 = net.weight(0).data()[0];
        sgd.step(&mut net); // zero gradient, decay only
        let w1 = net.weight(0).data()[0];
        assert!((w1 - w0 * (1.0 - 0.01)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_panics() {
        Sgd::new(0.0, 0.9, 0.0);
    }
}
