//! Whole-network gradient checks: finite differences against backprop for
//! randomly composed architectures, covering the layer-composition paths
//! the CLADO probes rely on.

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use clado_nn::{
    cross_entropy, cross_entropy_loss, ActKind, Activation, BatchNorm2d, Conv2d, GlobalAvgPool,
    Linear, MaxPool2d, Network, Sequential,
};
use clado_tensor::{init, Conv2dSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds one of several small architectures from a seed.
fn build(arch: u8, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let root = match arch % 3 {
        0 => Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), true, &mut rng),
            )
            .push("relu", Activation::new(ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(4, 3, &mut rng)),
        1 => Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(2, 4, 3, 2, 1), false, &mut rng),
            )
            .push("bn", BatchNorm2d::new(4))
            .push("hs", Activation::new(ActKind::HardSwish))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(4, 3, &mut rng)),
        _ => Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(2, 4, 3, 1, 1), true, &mut rng),
            )
            .push("gelu", Activation::new(ActKind::Gelu))
            .push("mp", MaxPool2d::new(2, 2))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(4, 3, &mut rng)),
    };
    Network::new(root, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Backprop weight gradients of the cross-entropy loss match central
    /// finite differences for every architecture variant.
    #[test]
    fn network_weight_gradients_match_finite_differences(arch in 0u8..3, seed in 0u64..100) {
        let mut net = build(arch, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let x = init::normal([3, 2, 6, 6], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2];

        // Analytic gradients. (BatchNorm in training mode: the FD loss below
        // re-runs training mode so both sides differentiate the same fn.)
        net.zero_grad();
        let logits = net.forward(x.clone(), true);
        let (_, grad) = cross_entropy(&logits, &labels);
        net.backward(grad);
        let layers = net.quantizable_layers().len();
        let names: Vec<String> = net
            .quantizable_layers()
            .iter()
            .map(|l| format!("{}.weight", l.name))
            .collect();
        let mut grads = vec![None; layers];
        net.visit_params(&mut |name, p| {
            if let Some(pos) = names.iter().position(|n| n == name) {
                grads[pos] = Some(p.grad.clone());
            }
        });

        // Directional-derivative check per layer: far more robust than
        // single-coordinate secants, which drown in f32 noise and the kinks
        // of piecewise-linear ops (ReLU/MaxPool/HardSwish).
        let eps = 3e-4f32;
        for layer in 0..layers {
            let w = net.weight(layer);
            let g = grads[layer].as_ref().expect("gradient collected");
            let dir = init::normal(w.shape(), 0.0, 1.0, &mut rng);
            let analytic = g.dot(&dir);
            let mut wp = w.clone();
            wp.axpy(eps, &dir);
            net.set_weight(layer, &wp);
            let lp = cross_entropy_loss(&net.forward(x.clone(), true), &labels);
            let mut wm = w.clone();
            wm.axpy(-eps, &dir);
            net.set_weight(layer, &wm);
            let lm = cross_entropy_loss(&net.forward(x.clone(), true), &labels);
            net.set_weight(layer, &w);
            let fd = (lp - lm) / (2.0 * eps as f64);
            prop_assert!(
                (fd - analytic).abs() < 3e-2 + 0.05 * analytic.abs(),
                "arch {arch} layer {layer}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    /// Snapshot/restore and perturb round-trips are exact.
    #[test]
    fn perturb_restore_roundtrip_is_exact(arch in 0u8..3, seed in 0u64..100) {
        let mut net = build(arch, seed);
        let snap = net.snapshot_weights();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..snap.len() {
            let delta = init::normal(snap[i].shape(), 0.0, 0.1, &mut rng);
            net.perturb_weight(i, &delta);
        }
        net.restore_weights(&snap);
        for (i, w) in snap.iter().enumerate() {
            let restored = net.weight(i);
            prop_assert_eq!(restored.data(), w.data());
        }
    }
}
