//! End-to-end tests of the distributed sweep over loopback TCP:
//! bitwise parity with the single-process engine, lease eviction for
//! dead and hung workers, fingerprint/version rejection, malformed-frame
//! robustness, and crash-safe resume (including journal interop with
//! the single-process engine).
//!
//! Every test takes the fault-injection `test_guard`, which serializes
//! the suite: the fault registry is process-global, so a fault armed
//! for one test must never fire inside another's workers.

use clado_core::{
    load_sensitivities, measure_sensitivities, save_sensitivities, MeasureError, SensitivityMatrix,
    SensitivityOptions, ShardContext,
};
use clado_dist::{
    protocol, run_worker, Coordinator, CoordinatorOptions, DistError, JobSpec, Message,
    WorkerOptions,
};
use clado_models::{DataSplit, SynthVision, SynthVisionConfig};
use clado_nn::Network;
use clado_quant::{BitWidthSet, QuantScheme};
use clado_telemetry::faultinject::{self, test_guard, FaultSpec};
use clado_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn setup() -> (Network, DataSplit) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = Network::new(
        clado_nn::Sequential::new()
            .push(
                "conv1",
                clado_nn::Conv2d::new(clado_tensor::Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push(
                "conv2",
                clado_nn::Conv2d::new(clado_tensor::Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push("pool", clado_nn::GlobalAvgPool::new())
            .push("fc", clado_nn::Linear::new(6, 4, &mut rng)),
        4,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 4,
        img: 8,
        train: 48,
        val: 32,
        seed: 9,
        noise: 0.2,
        label_noise: 0.0,
    });
    let set = data.train.subset(&(0..16).collect::<Vec<_>>());
    (net, set)
}

fn bits() -> BitWidthSet {
    BitWidthSet::new(&[2, 8])
}

fn context(net: &Network, set: &DataSplit) -> ShardContext {
    ShardContext::new(
        net,
        set.len(),
        &bits(),
        QuantScheme::PerTensorSymmetric,
        64,
        true,
    )
}

fn job(fingerprint: u64) -> JobSpec {
    JobSpec {
        model: "synthetic".into(),
        set_size: 16,
        set_seed: 0,
        batch_size: 64,
        bits: vec![2, 8],
        scheme: 0,
        use_prefix_cache: true,
        fingerprint,
        trace_id: 0,
        estimator: 0,
        probe_budget: 0,
        estimator_seed: 0,
    }
}

fn coordinator_options() -> CoordinatorOptions {
    CoordinatorOptions {
        idle_timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    }
}

/// Spawns `n` worker threads against `addr`, each reconstructing the
/// synthetic job from clones. Returns their join handles.
fn spawn_workers(
    addr: &str,
    n: usize,
    net: &Network,
    set: &DataSplit,
    opts: &WorkerOptions,
) -> Vec<std::thread::JoinHandle<Result<clado_dist::WorkerReport, DistError>>> {
    (0..n)
        .map(|_| {
            let addr = addr.to_string();
            let net = net.clone();
            let set = set.clone();
            let opts = opts.clone();
            std::thread::spawn(move || run_worker(&addr, move |_job| Ok((net, set)), &opts))
        })
        .collect()
}

fn reference_matrix(net: &Network, set: &DataSplit) -> SensitivityMatrix {
    let mut net = net.clone();
    measure_sensitivities(&mut net, set, &bits(), &SensitivityOptions::default())
        .expect("single-process reference")
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(
        a.base_loss.to_bits(),
        b.base_loss.to_bits(),
        "{label}: base loss"
    );
    let dim = a.matrix().dim();
    assert_eq!(dim, b.matrix().dim(), "{label}: dimension");
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v})"
            );
        }
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clado-dist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn distributed_sweep_matches_single_process_bitwise() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let ctx = context(&net, &set);
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job(context(&net, &set).fingerprint()),
        coordinator_options(),
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 3, &net, &set, &WorkerOptions::default());
    let outcome = coordinator.run().expect("distributed sweep");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert_bitwise_equal(&outcome.matrix, &reference, "3 workers");
    assert_eq!(
        outcome.matrix.stats.evaluations,
        reference.stats.evaluations
    );
    assert_eq!(outcome.evictions, 0);
    assert_eq!(outcome.rejected, 0);
    assert_eq!(outcome.resumed, 0);
    assert!(!outcome.workers.is_empty());
    let shard_total: u64 = outcome.workers.iter().map(|w| w.shards).sum();
    assert_eq!(shard_total, 6, "every shard reported by exactly one worker");
    assert!(outcome.straggler_seconds >= 0.0);
}

/// Same seed + budget ⇒ a 2-worker distributed estimation sweep is
/// bitwise identical to the single-process estimator, for both a
/// completion-based estimator (sketched: the coordinator runs the same
/// ALS the single-process path does) and the adaptive two-round one
/// (each pair shard's refinement is self-contained, so sharding cannot
/// change it).
#[test]
fn distributed_estimation_matches_single_process_bitwise() {
    use clado_estim::{
        estimate_sensitivities, estimation_fingerprint, EstimatorKind, EstimatorOptions,
        DEFAULT_ESTIMATOR_SEED,
    };
    let _guard = test_guard();
    let (net, set) = setup();
    // Mandatory base+diagonal is 1 + |𝔹|I = 7 probes here; 13 leaves
    // six probes of pair headroom so selection genuinely happens.
    let budget = 13usize;
    for kind in [EstimatorKind::Sketched, EstimatorKind::Adaptive] {
        let single = estimate_sensitivities(
            &mut net.clone(),
            &set,
            &bits(),
            &EstimatorOptions {
                probe_budget: budget,
                ..EstimatorOptions::new(kind)
            },
        )
        .expect("single-process estimate");
        let ctx = context(&net, &set);
        let mut job = job(estimation_fingerprint(
            &ctx,
            kind,
            budget,
            DEFAULT_ESTIMATOR_SEED,
        ));
        job.estimator = kind.tag();
        job.probe_budget = budget as u64;
        job.estimator_seed = DEFAULT_ESTIMATOR_SEED;
        let coordinator =
            Coordinator::bind("127.0.0.1:0", ctx, job, coordinator_options()).expect("bind");
        let addr = coordinator.local_addr().to_string();
        let workers = spawn_workers(&addr, 2, &net, &set, &WorkerOptions::default());
        let outcome = coordinator.run().expect("distributed estimation");
        for handle in workers {
            handle.join().expect("worker thread").expect("worker run");
        }
        assert_bitwise_equal(&outcome.matrix, &single.matrix, kind.name());
        assert_eq!(
            outcome.matrix.stats.provenance, single.matrix.stats.provenance,
            "{kind}: distributed provenance matches single-process"
        );
        assert_eq!(outcome.evictions, 0, "{kind}");
        assert_eq!(outcome.rejected, 0, "{kind}");
    }
}

/// Hutchinson estimation is diagonal-only and cannot be grid-sharded:
/// the coordinator refuses the job up front instead of producing a
/// half-meaningful sweep.
#[test]
fn coordinator_rejects_hutchinson_and_unknown_estimators() {
    use clado_estim::EstimatorKind;
    let _guard = test_guard();
    let (net, set) = setup();
    for tag in [EstimatorKind::Hutchinson.tag(), 200u8] {
        let mut bad = job(context(&net, &set).fingerprint());
        bad.estimator = tag;
        let coordinator = Coordinator::bind(
            "127.0.0.1:0",
            context(&net, &set),
            bad,
            coordinator_options(),
        )
        .expect("bind");
        match coordinator.run() {
            Err(DistError::BadJob(why)) => {
                assert!(
                    why.contains("hutchinson") || why.contains("unknown estimator"),
                    "unexpected reason: {why}"
                );
            }
            other => panic!("expected BadJob, got {other:?}"),
        }
    }
}

#[cfg(debug_assertions)]
#[test]
fn dead_worker_mid_lease_is_evicted_and_sweep_still_matches() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let ctx = context(&net, &set);
    // Exactly one worker thread dies the moment it takes its second
    // lease (skip 1 so the sweep is mid-flight), with the lease held.
    faultinject::arm("dist.worker.shard", FaultSpec::panic().skip(1).times(1));
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            heartbeat_timeout: Duration::from_millis(500),
            ..coordinator_options()
        },
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(
        &addr,
        3,
        &net,
        &set,
        &WorkerOptions {
            heartbeat_interval: Duration::from_millis(50),
            ..Default::default()
        },
    );
    let outcome = coordinator.run().expect("sweep survives a dead worker");
    let results: Vec<_> = workers.into_iter().map(|h| h.join()).collect();
    let panicked = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(panicked, 1, "exactly one worker thread died");
    assert!(
        faultinject::hits("dist.worker.shard") >= 2,
        "skip=1 + fire=1"
    );
    assert!(
        outcome.evictions >= 1,
        "the dead worker's lease was evicted and requeued"
    );
    assert_bitwise_equal(&outcome.matrix, &reference, "after worker death");
    assert_eq!(
        outcome.matrix.stats.evaluations,
        reference.stats.evaluations
    );
}

#[test]
fn hung_worker_is_evicted_by_heartbeat_deadline() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let ctx = context(&net, &set);
    let fp = ctx.fingerprint();
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job(fp),
        CoordinatorOptions {
            heartbeat_timeout: Duration::from_millis(300),
            ..coordinator_options()
        },
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();

    // A "hung" worker: completes the handshake, takes a lease, then
    // goes silent — no heartbeats, no result. The coordinator must
    // evict it at the deadline and reassign the shard.
    let hung = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            let mut s = &stream;
            protocol::send(
                &mut s,
                &Message::Hello {
                    protocol: clado_dist::PROTOCOL_VERSION,
                    pid: 0,
                },
            )
            .expect("hello");
            let Message::Job(_) = protocol::recv(&mut s).expect("job") else {
                panic!("expected job");
            };
            protocol::send(
                &mut s,
                &Message::Ready {
                    fingerprint: fp,
                    clock_us: 0,
                },
            )
            .expect("ready");
            protocol::send(&mut s, &Message::LeaseRequest).expect("lease request");
            match protocol::recv(&mut s).expect("lease reply") {
                Message::Lease { .. } => {}
                other => panic!("expected a lease, got kind {}", other.kind()),
            }
            // Hold the lease silently past the heartbeat deadline.
            std::thread::sleep(Duration::from_millis(1500));
        })
    };
    // Give the hung worker a head start so it takes the first lease.
    std::thread::sleep(Duration::from_millis(100));
    let workers = spawn_workers(
        &addr,
        1,
        &net,
        &set,
        &WorkerOptions {
            heartbeat_interval: Duration::from_millis(50),
            ..Default::default()
        },
    );
    let outcome = coordinator.run().expect("sweep survives a hung worker");
    hung.join().expect("hung worker thread");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert!(outcome.evictions >= 1, "the hung lease was evicted");
    assert_bitwise_equal(&outcome.matrix, &reference, "after hung-worker eviction");
}

#[test]
fn fingerprint_mismatch_worker_is_rejected() {
    let _guard = test_guard();
    let (net, set) = setup();
    let ctx = context(&net, &set);
    let fp = ctx.fingerprint();
    let coordinator =
        Coordinator::bind("127.0.0.1:0", ctx, job(fp), coordinator_options()).expect("bind");
    let addr = coordinator.local_addr().to_string();

    // An impostor with a different configuration fingerprint must be
    // refused with a Reject frame naming both fingerprints.
    let impostor = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            let mut s = &stream;
            protocol::send(
                &mut s,
                &Message::Hello {
                    protocol: clado_dist::PROTOCOL_VERSION,
                    pid: 1,
                },
            )
            .expect("hello");
            let Message::Job(_) = protocol::recv(&mut s).expect("job") else {
                panic!("expected job");
            };
            protocol::send(
                &mut s,
                &Message::Ready {
                    fingerprint: fp ^ 0xFFFF,
                    clock_us: 0,
                },
            )
            .expect("ready");
            match protocol::recv(&mut s).expect("reject reply") {
                Message::Reject { reason } => {
                    assert!(
                        reason.contains("fingerprint mismatch"),
                        "reject reason: {reason}"
                    );
                }
                other => panic!("expected Reject, got kind {}", other.kind()),
            }
        })
    };
    // A worker announcing an incompatible protocol version is also
    // turned away before any job state is exchanged.
    let old_version = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            let mut s = &stream;
            protocol::send(
                &mut s,
                &Message::Hello {
                    protocol: 99,
                    pid: 2,
                },
            )
            .expect("hello");
            match protocol::recv(&mut s).expect("reject reply") {
                Message::Reject { reason } => {
                    assert!(reason.contains("version"), "reject reason: {reason}");
                }
                other => panic!("expected Reject, got kind {}", other.kind()),
            }
        })
    };
    let workers = spawn_workers(&addr, 1, &net, &set, &WorkerOptions::default());
    let outcome = coordinator.run().expect("sweep completes");
    impostor.join().expect("impostor thread");
    old_version.join().expect("old-version thread");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert_eq!(outcome.rejected, 2, "both impostors were rejected");
    let reference = reference_matrix(&net, &set);
    assert_bitwise_equal(&outcome.matrix, &reference, "after rejected impostors");
}

#[test]
fn malformed_frames_never_disturb_the_sweep() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let ctx = context(&net, &set);
    let telemetry = Telemetry::new();
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            telemetry: telemetry.clone(),
            ..coordinator_options()
        },
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();

    // A rogue's gallery of malformed clients: garbage bytes, a
    // truncated frame, an oversized length header, and a corrupted
    // version field. Each must be dropped without panicking the
    // coordinator or corrupting the sweep.
    let mut good_frame = Vec::new();
    clado_dist::frame::write_frame(
        &mut good_frame,
        Message::LeaseRequest.kind(),
        &Message::LeaseRequest.encode(),
    )
    .expect("encode");
    let mut oversized = good_frame.clone();
    oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut bad_version = good_frame.clone();
    bad_version[4] = 0xFF;
    let payloads: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        good_frame[..7].to_vec(),
        oversized,
        bad_version,
    ];
    let rogues: Vec<_> = payloads
        .into_iter()
        .map(|bytes| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                use std::io::Write;
                let mut stream = TcpStream::connect(&addr).expect("connect");
                stream.write_all(&bytes).expect("write garbage");
                // Close immediately; the coordinator should classify and
                // drop without waiting for its heartbeat deadline.
            })
        })
        .collect();
    let workers = spawn_workers(&addr, 2, &net, &set, &WorkerOptions::default());
    let outcome = coordinator.run().expect("sweep completes despite rogues");
    for rogue in rogues {
        rogue.join().expect("rogue thread");
    }
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert_bitwise_equal(&outcome.matrix, &reference, "after malformed frames");
    assert!(
        telemetry.counter_value("dist.protocol_errors") >= 3,
        "malformed clients were counted: {}",
        telemetry.counter_value("dist.protocol_errors")
    );
}

#[test]
fn killed_coordinator_resumes_losslessly_from_partial_journal() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let dir = temp_dir("resume");

    // First pass: full distributed run with journaling.
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        context(&net, &set),
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            checkpoint_dir: Some(dir.clone()),
            ..coordinator_options()
        },
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2, &net, &set, &WorkerOptions::default());
    let first = coordinator.run().expect("journaled sweep");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert_bitwise_equal(&first.matrix, &reference, "journaled distributed run");

    // Simulate the coordinator dying mid-sweep by deleting half the
    // committed shard files, then resume.
    let mut shards: Vec<_> = std::fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "clsj"))
        .collect();
    shards.sort();
    assert_eq!(shards.len(), 6, "one committed shard file per shard");
    for lost in shards.iter().rev().take(3) {
        std::fs::remove_file(lost).expect("delete shard");
    }

    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        context(&net, &set),
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..coordinator_options()
        },
    )
    .expect("bind for resume");
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2, &net, &set, &WorkerOptions::default());
    let resumed = coordinator.run().expect("resumed sweep");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    assert!(resumed.resumed > 0, "some probes came from the journal");
    assert!(
        resumed.matrix.stats.evaluations < reference.stats.evaluations,
        "resume re-evaluated only the lost shards"
    );
    assert_bitwise_equal(&resumed.matrix, &reference, "resumed distributed run");

    // A non-empty journal without resume stays a hard error, exactly
    // like the single-process engine.
    let err = Coordinator::bind(
        "127.0.0.1:0",
        context(&net, &set),
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            ..coordinator_options()
        },
    )
    .expect("bind")
    .run()
    .expect_err("non-empty journal without resume must be refused");
    assert!(matches!(err, DistError::Journal(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_resume_finishes_a_single_process_checkpoint() {
    let _guard = test_guard();
    let (net, set) = setup();
    let dir = temp_dir("interop");

    // A *single-process* run journals the full sweep...
    let mut net1 = net.clone();
    let reference = measure_sensitivities(
        &mut net1,
        &set,
        &bits(),
        &SensitivityOptions {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .expect("single-process journaled run");

    // ...and a distributed coordinator resumes it: zero re-evaluation,
    // bitwise-identical matrix. CLSJ journals are interchangeable
    // between the two engines.
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        context(&net, &set),
        job(context(&net, &set).fingerprint()),
        CoordinatorOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..coordinator_options()
        },
    )
    .expect("bind");
    let outcome = coordinator
        .run()
        .expect("fully-journaled sweep completes with no workers at all");
    assert_eq!(outcome.matrix.stats.evaluations, 0, "nothing re-evaluated");
    assert_eq!(outcome.resumed, reference.stats.evaluations);
    assert_bitwise_equal(&outcome.matrix, &reference, "single-process → distributed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn save_load_round_trip_preserves_distributed_matrix() {
    let _guard = test_guard();
    let (net, set) = setup();
    let ctx = context(&net, &set);
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job(context(&net, &set).fingerprint()),
        coordinator_options(),
    )
    .expect("bind");
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2, &net, &set, &WorkerOptions::default());
    let outcome = coordinator.run().expect("sweep");
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
    let path = std::env::temp_dir().join(format!("clado-dist-io-{}.clsm", std::process::id()));
    save_sensitivities(&outcome.matrix, &path).expect("save");
    let loaded = load_sensitivities(&path).expect("load");
    assert_bitwise_equal(&loaded, &outcome.matrix, "clsm round trip");
    std::fs::remove_file(&path).ok();
}

#[test]
fn assembly_reports_missing_probes_when_sweep_is_incomplete() {
    let _guard = test_guard();
    let (net, set) = setup();
    let ctx = context(&net, &set);
    let err = ctx
        .assemble(&std::collections::HashMap::new())
        .expect_err("no records");
    assert!(matches!(err, MeasureError::MissingProbes { .. }), "{err}");
}
