//! Property tests for the wire protocol: every message type round-trips
//! through encode → frame → read → decode for arbitrary field values.
//!
//! Loss values include NaN (quarantined probes store a canonical NaN),
//! so messages are compared by their *re-encoded bytes* rather than
//! `PartialEq` — bit-exact equality is the property the journal and the
//! determinism invariant actually rely on.

use clado_core::{ProbeId, ProbeRecord, ShardRunStats, ShardSpec};
use clado_dist::protocol::{self, JobSpec, Message};
use clado_telemetry::{ManifestValue, TraceEvent, PH_COMPLETE, PH_INSTANT};
use proptest::prelude::*;

/// Round-trips `msg` through a full frame write + read + decode and
/// checks the decoded message re-encodes to identical bytes.
fn round_trip(msg: &Message) -> Result<(), TestCaseError> {
    let mut wire = Vec::new();
    protocol::send(&mut wire, msg).map_err(|e| TestCaseError::fail(format!("send: {e}")))?;
    let decoded = protocol::recv(&mut wire.as_slice())
        .map_err(|e| TestCaseError::fail(format!("recv: {e}")))?;
    prop_assert_eq!(decoded.kind(), msg.kind(), "kind changed in transit");
    prop_assert_eq!(
        decoded.encode(),
        msg.encode(),
        "re-encoded bytes differ for kind {}",
        msg.kind()
    );
    Ok(())
}

fn shard_spec(tag: u8, index: u32) -> ShardSpec {
    match tag % 3 {
        0 => ShardSpec::Base,
        1 => ShardSpec::Diag { layer: index },
        _ => ShardSpec::Pair { outer: index },
    }
}

fn probe_id(tag: u8, a: u32, b: u32, c: u32, d: u32) -> ProbeId {
    match tag % 3 {
        0 => ProbeId::Base,
        1 => ProbeId::Diag { layer: a, bit: b },
        _ => ProbeId::Pair {
            layer_i: a,
            bit_m: b,
            layer_j: c,
            bit_n: d,
        },
    }
}

/// Loss values spanning the awkward corners of f64: zeros, subnormals,
/// infinities, and NaN (index 0 maps the raw bits straight through, so
/// arbitrary bit patterns — including signalling NaNs — are covered too).
fn loss_from(selector: u8, raw: u64) -> f64 {
    match selector % 8 {
        0 => f64::from_bits(raw),
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => 0.0,
        5 => -0.0,
        6 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => raw as f64 / 1e6,
    }
}

fn trace_event(
    tag: u8,
    ts_us: u64,
    dur_us: u64,
    tid: u32,
    arg_sel: u8,
    arg_raw: u64,
) -> TraceEvent {
    let value = match arg_sel % 4 {
        0 => ManifestValue::Str(format!("λ-{arg_raw:x}")),
        1 => ManifestValue::Int(arg_raw as i64),
        2 => ManifestValue::Float(loss_from(arg_sel, arg_raw)),
        _ => ManifestValue::Bool(arg_raw % 2 == 1),
    };
    TraceEvent {
        name: format!("span.{}", tag % 4),
        ph: if tag.is_multiple_of(2) {
            PH_COMPLETE
        } else {
            PH_INSTANT
        },
        ts_us,
        dur_us,
        pid: 0,
        tid,
        args: vec![("k".to_string(), value)],
    }
}

fn record(tag: u8, idx: (u32, u32, u32, u32), sel: u8, raw: u64, q: u8) -> ProbeRecord {
    ProbeRecord {
        id: probe_id(tag, idx.0, idx.1, idx.2, idx.3),
        loss: loss_from(sel, raw),
        quarantined: q % 2 == 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hello_round_trips(protocol_version in 0u16..=u16::MAX, pid in 0u32..=u32::MAX) {
        round_trip(&Message::Hello { protocol: protocol_version, pid })?;
    }

    #[test]
    fn job_round_trips(
        (model_len, set_size, set_seed) in (0usize..=64, 0u64..u64::MAX, 0u64..u64::MAX),
        (batch_size, fingerprint) in (0u64..u64::MAX, 0u64..u64::MAX),
        bits in prop::collection::vec(1u8..=32, 0..=8),
        scheme in 0u8..=2,
        cache_flag in 0u8..=1,
        model_byte in 0u8..=255,
        trace_id in 0u64..u64::MAX,
        estimator in 0u8..=4,
        probe_budget in 0u64..u64::MAX,
        estimator_seed in 0u64..u64::MAX,
    ) {
        // Model names exercise multi-byte UTF-8, not just ASCII.
        let model: String = std::iter::repeat_n('λ', model_len % 8)
            .chain(std::iter::once(char::from(model_byte % 26 + b'a')))
            .collect();
        round_trip(&Message::Job(JobSpec {
            model,
            set_size,
            set_seed,
            batch_size,
            bits,
            scheme,
            use_prefix_cache: cache_flag == 1,
            fingerprint,
            trace_id,
            estimator,
            probe_budget,
            estimator_seed,
        }))?;
    }

    #[test]
    fn ready_and_reject_round_trip(
        fingerprint in 0u64..u64::MAX,
        clock_us in 0u64..u64::MAX,
        reason_len in 0usize..=128,
        reason_byte in 0u8..=25,
    ) {
        round_trip(&Message::Ready { fingerprint, clock_us })?;
        let reason: String =
            std::iter::repeat_n(char::from(reason_byte + b'a'), reason_len).collect();
        round_trip(&Message::Reject { reason })?;
    }

    #[test]
    fn control_messages_round_trip(retry_ms in 0u32..=u32::MAX, lease in 0u64..u64::MAX) {
        round_trip(&Message::LeaseRequest)?;
        round_trip(&Message::Idle { retry_ms })?;
        round_trip(&Message::Shutdown)?;
        round_trip(&Message::Heartbeat { lease })?;
        round_trip(&Message::JobDone)?;
    }

    #[test]
    fn lease_round_trips(
        lease in 0u64..u64::MAX,
        span_id in 0u64..u64::MAX,
        tag in 0u8..=2,
        index in 0u32..=u32::MAX,
    ) {
        round_trip(&Message::Lease { lease, span_id, shard: shard_spec(tag, index) })?;
    }

    #[test]
    fn shard_done_round_trips(
        (lease, shard_tag, shard_index) in (0u64..u64::MAX, 0u8..=2, 0u32..=1024),
        records in prop::collection::vec(
            (
                (0u8..=2, 0u32..=1024, 0u32..=7),
                (0u32..=1024, 0u32..=7),
                (0u8..=7, 0u64..u64::MAX, 0u8..=1),
            ),
            0..=32,
        ),
        stats in (
            (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
            (0u64..u64::MAX, 0u64..u64::MAX),
            (0u8..=7, 0u64..u64::MAX),
        ),
        events in prop::collection::vec(
            (
                (0u8..=254, 0u64..u64::MAX, 0u64..u64::MAX),
                (0u32..u32::MAX, 0u8..=254, 0u64..u64::MAX),
            ),
            0..=8,
        ),
    ) {
        let records: Vec<ProbeRecord> = records
            .into_iter()
            .map(|((tag, a, b), (c, d), (sel, raw, q))| record(tag, (a, b, c, d), sel, raw, q))
            .collect();
        let events: Vec<TraceEvent> = events
            .into_iter()
            .map(|((tag, ts, dur), (tid, sel, raw))| trace_event(tag, ts, dur, tid, sel, raw))
            .collect();
        let ((full_evals, cache_hits, cache_builds), (retried, quarantined), (sel, raw)) = stats;
        round_trip(&Message::ShardDone {
            lease,
            shard: shard_spec(shard_tag, shard_index),
            records,
            stats: ShardRunStats {
                full_evals,
                cache_hits,
                cache_builds,
                retried,
                quarantined,
                seconds: loss_from(sel, raw),
            },
            events,
        })?;
    }

    #[test]
    fn decoding_is_total_over_arbitrary_payloads(
        kind in 1u16..=11,
        payload in prop::collection::vec(0u8..=255, 0..=256),
    ) {
        // Decoding never panics; it either produces a message that
        // re-encodes canonically or a typed error.
        if let Ok(msg) = Message::decode(kind, &payload) {
            prop_assert_eq!(msg.kind(), kind);
            let bytes = msg.encode();
            let again = Message::decode(kind, &bytes)
                .map_err(|e| TestCaseError::fail(format!("canonical re-decode: {e}")))?;
            prop_assert_eq!(again.encode(), bytes, "canonical encoding is a fixed point");
        }
    }
}
