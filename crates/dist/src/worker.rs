//! The sweep worker: connects to a coordinator, reconstructs the job
//! locally, and evaluates leased shards until told to shut down.
//!
//! The worker's main thread is synchronous — request a lease, evaluate
//! it, report it — while a side thread sends `Heartbeat` frames every
//! [`WorkerOptions::heartbeat_interval`] so the coordinator can tell a
//! slow shard from a dead worker. Writes from the two threads are
//! serialized through a mutex; the main thread is the only reader.

use crate::error::DistError;
use crate::frame::{FrameError, PROTOCOL_VERSION};
use crate::protocol::{self, scheme_from_u8, JobSpec, Message};
use clado_core::ShardContext;
use clado_estim::{estimation_fingerprint, resolved_probe_budget, EstimatorKind, ProbePlanner};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::BitWidthSet;
use clado_telemetry::{faultpoint, Telemetry};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the worker waits for a coordinator reply before giving up
/// (replies are immediate in a healthy exchange; this only bounds a
/// wedged coordinator).
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Options controlling a worker run.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Interval between liveness frames while the main thread measures.
    /// Must be comfortably below the coordinator's heartbeat timeout.
    pub heartbeat_interval: Duration,
    /// Total window for connecting (with retries) to the coordinator —
    /// workers often start before the coordinator finishes binding.
    pub connect_timeout: Duration,
    /// Maximum connection retries after the first failed attempt.
    /// Delays grow 100 ms → 1.6 s (capped, ±25% jitter), so the default
    /// of 5 spans roughly three seconds — fleet startup order doesn't
    /// matter. Whichever of the retry budget and [`Self::connect_timeout`]
    /// runs out first ends the attempt.
    pub connect_retries: u32,
    /// Telemetry sink for spans and counters.
    pub telemetry: Telemetry,
    /// Print coarse progress to stderr.
    pub verbose: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(10),
            connect_retries: 5,
            telemetry: Telemetry::disabled(),
            verbose: false,
        }
    }
}

/// What a worker accomplished before shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Shards evaluated and reported.
    pub shards: u64,
    /// Probe records contributed.
    pub probes: u64,
    /// Busy time: summed shard-evaluation wall time.
    pub seconds: f64,
}

/// A connection whose writes are serialized across threads (main loop +
/// heartbeat). Reads stay single-threaded on the main loop.
struct Conn {
    stream: TcpStream,
    write: Mutex<()>,
}

impl Conn {
    fn send(&self, msg: &Message) -> Result<(), FrameError> {
        let _guard = self.write.lock().unwrap_or_else(|p| p.into_inner());
        let mut w: &TcpStream = &self.stream;
        protocol::send(&mut w, msg)?;
        w.flush()?;
        Ok(())
    }

    fn recv(&self) -> Result<Message, FrameError> {
        let mut r: &TcpStream = &self.stream;
        protocol::recv(&mut r)
    }
}

/// Stops and joins the heartbeat thread on every exit path — including
/// a panic unwinding out of the lease loop, where leaving the thread
/// running would hold the socket open and stall the coordinator's
/// eviction until its heartbeat deadline.
struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Backoff before retry `attempt` (0-based): 100 ms doubling to a
/// 1.6 s cap, with ±25% jitter derived deterministically from
/// (pid, attempt) so a restarted fleet doesn't reconnect in lockstep.
fn backoff_delay(attempt: u32) -> Duration {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 1_600;
    let nominal = (BASE_MS << attempt.min(10)).min(CAP_MS);
    let mut seed = [0u8; 8];
    seed[..4].copy_from_slice(&std::process::id().to_le_bytes());
    seed[4..].copy_from_slice(&attempt.to_le_bytes());
    let jitter_span = nominal / 2; // ±25% around the nominal delay
    let jitter = crate::frame::fnv1a(&seed) % (jitter_span + 1);
    Duration::from_millis(nominal - jitter_span / 2 + jitter)
}

/// Prepares an estimation job (`job.estimator != 0`): resolves the
/// estimator kind, rebuilds the deterministic probe plan locally (the
/// base and diagonal probes it measures are bitwise identical on every
/// node, so every worker derives the *same* plan from just the tag,
/// budget, and seed in the job), and returns the estimator fingerprint
/// this worker must echo in `Ready`. Exact jobs return no planner and
/// the plain configuration fingerprint.
fn prepare_estimation(
    ctx: &ShardContext,
    network: &mut Network,
    set: &DataSplit,
    telemetry: &Telemetry,
    job: &JobSpec,
) -> Result<(Option<ProbePlanner>, u64), DistError> {
    if job.estimator == 0 {
        return Ok((None, ctx.fingerprint()));
    }
    let kind = match EstimatorKind::from_tag(job.estimator) {
        Some(EstimatorKind::Hutchinson) => {
            return Err(DistError::BadJob(
                "hutchinson estimation is diagonal-only and not grid-shardable; \
                 run it single-process"
                    .into(),
            ))
        }
        Some(kind) => kind,
        None => {
            return Err(DistError::BadJob(format!(
                "unknown estimator tag {}",
                job.estimator
            )))
        }
    };
    let budget = resolved_probe_budget(ctx, job.probe_budget as usize);
    let fp = estimation_fingerprint(ctx, kind, job.probe_budget as usize, job.estimator_seed);
    let _s = telemetry.span("dist.work.plan");
    let (planner, _fresh, _stats) = ProbePlanner::build(
        ctx,
        network,
        set,
        telemetry,
        kind,
        budget,
        job.estimator_seed,
        &HashMap::new(),
    )?;
    Ok((Some(planner), fp))
}

fn connect_with_retry(addr: &str, window: Duration, retries: u32) -> Result<TcpStream, DistError> {
    let deadline = Instant::now() + window;
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if attempt >= retries {
                    return Err(DistError::Io(e));
                }
                let delay = backoff_delay(attempt);
                attempt += 1;
                let now = Instant::now();
                if now >= deadline {
                    return Err(DistError::Io(e));
                }
                std::thread::sleep(delay.min(deadline - now));
            }
        }
    }
}

/// Runs a worker against the coordinator at `addr` until the sweep
/// completes (or fails). `provider` reconstructs the model and
/// sensitivity set from the received [`JobSpec`] — the CLI passes the
/// pretrained-model loader; tests and benches pass synthetic builders.
///
/// # Errors
///
/// [`DistError::Rejected`] when the coordinator refuses the handshake
/// (version or fingerprint mismatch), [`DistError::Provider`] when the
/// job cannot be reconstructed, and [`DistError::Frame`]/[`DistError::Io`]
/// when the coordinator link drops mid-sweep.
pub fn run_worker<F>(
    addr: &str,
    provider: F,
    opts: &WorkerOptions,
) -> Result<WorkerReport, DistError>
where
    F: FnOnce(&JobSpec) -> Result<(Network, DataSplit), String>,
{
    let telemetry = opts.telemetry.clone();
    let _root = telemetry.span("dist.work");
    let stream = connect_with_retry(addr, opts.connect_timeout, opts.connect_retries)?;
    stream.set_nodelay(true).map_err(DistError::Io)?;
    stream
        .set_read_timeout(Some(REPLY_TIMEOUT))
        .map_err(DistError::Io)?;
    let conn = Arc::new(Conn {
        stream,
        write: Mutex::new(()),
    });

    conn.send(&Message::Hello {
        protocol: PROTOCOL_VERSION,
        pid: std::process::id(),
    })?;
    let job = match conn.recv()? {
        Message::Job(job) => job,
        Message::Reject { reason } => return Err(DistError::Rejected(reason)),
        other => {
            return Err(
                FrameError::Malformed(format!("expected Job, got kind {}", other.kind())).into(),
            )
        }
    };
    if job.bits.is_empty() {
        return Err(FrameError::Malformed("job carries no bit-widths".into()).into());
    }
    let scheme = scheme_from_u8(job.scheme)?;
    // A nonzero trace id means the coordinator is tracing: record local
    // events (tagged with the shared id) and ship them in ShardDone.
    if job.trace_id != 0 {
        telemetry.set_trace_id(job.trace_id);
        telemetry.set_trace_enabled(true);
    }

    // Liveness side channel, started *before* the (potentially slow)
    // model reconstruction: any frame resets the coordinator's
    // heartbeat deadline, so neither a long model load nor a long shard
    // looks like a dead worker.
    let stop = Arc::new(AtomicBool::new(false));
    let current_lease = Arc::new(AtomicU64::new(0));
    let _heartbeat = {
        let conn = Arc::clone(&conn);
        let stop_flag = Arc::clone(&stop);
        let lease = Arc::clone(&current_lease);
        let interval = opts.heartbeat_interval;
        HeartbeatGuard {
            stop: Arc::clone(&stop),
            handle: Some(std::thread::spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let msg = Message::Heartbeat {
                        lease: lease.load(Ordering::Relaxed),
                    };
                    if conn.send(&msg).is_err() {
                        break;
                    }
                }
            })),
        }
    };

    let (mut network, set) = {
        let _s = telemetry.span("dist.work.load");
        provider(&job).map_err(DistError::Provider)?
    };
    let bits = BitWidthSet::new(&job.bits);
    let ctx = ShardContext::new(
        &network,
        set.len(),
        &bits,
        scheme,
        job.batch_size as usize,
        job.use_prefix_cache,
    );
    let (planner, fingerprint) = prepare_estimation(&ctx, &mut network, &set, &telemetry, &job)?;
    if opts.verbose && fingerprint != job.fingerprint {
        eprintln!(
            "dist: local fingerprint {fingerprint:#018x} differs from job \
             {:#018x}; expecting rejection",
            job.fingerprint
        );
    }
    conn.send(&Message::Ready {
        fingerprint,
        clock_us: telemetry.now_us(),
    })?;

    let mut report = WorkerReport::default();
    lease_loop(
        &conn,
        &ctx,
        planner.as_ref(),
        &mut network,
        &set,
        &telemetry,
        &current_lease,
        &mut report,
        opts.verbose,
    )
    .map(|_| report)
}

/// Why the lease loop handed control back to the caller.
enum JobEnd {
    /// `JobDone` (v3): the job is over, the connection is not.
    JobOver,
    /// `Shutdown`: disconnect and exit.
    Shutdown,
}

/// The worker-driven lease/evaluate/report cycle shared by
/// [`run_worker`] (one job per connection) and [`run_pool_worker`]
/// (many jobs per connection).
#[allow(clippy::too_many_arguments)]
fn lease_loop(
    conn: &Conn,
    ctx: &ShardContext,
    planner: Option<&ProbePlanner>,
    network: &mut Network,
    set: &DataSplit,
    telemetry: &Telemetry,
    current_lease: &AtomicU64,
    report: &mut WorkerReport,
    verbose: bool,
) -> Result<JobEnd, DistError> {
    let roundtrip = telemetry.histogram("dist.roundtrip");
    loop {
        let rt_start = Instant::now();
        conn.send(&Message::LeaseRequest)?;
        let reply = conn.recv()?;
        roundtrip.record(rt_start.elapsed());
        match reply {
            Message::Lease {
                lease,
                span_id,
                shard,
            } => {
                current_lease.store(lease, Ordering::Relaxed);
                // Debug-build fail point: a worker process armed with
                // `dist.worker.shard=abort` dies here, mid-lease,
                // exactly like a SIGKILL.
                faultpoint!("dist.worker.shard", std::process::abort());
                let (records, stats) = {
                    let _s = telemetry.span_with_args(
                        "dist.work.shard",
                        vec![
                            ("lease".to_string(), (lease as i64).into()),
                            ("span_id".to_string(), (span_id as i64).into()),
                            ("shard".to_string(), shard.to_string().into()),
                        ],
                    );
                    // Estimation jobs route every shard through the
                    // probe plan: base/diag shards replay the records
                    // the planner already measured, pair shards run
                    // only their selected probes.
                    match planner {
                        Some(p) => p.run_shard(ctx, network, set, shard, telemetry),
                        None => ctx.run_shard(network, set, shard, telemetry),
                    }
                };
                current_lease.store(0, Ordering::Relaxed);
                report.shards += 1;
                report.probes += records.len() as u64;
                report.seconds += stats.seconds;
                telemetry.counter("dist.shards_evaluated").incr();
                if verbose {
                    eprintln!(
                        "dist: evaluated {shard} ({} probes, {:.2}s)",
                        records.len(),
                        stats.seconds
                    );
                }
                // Ship the trace events accumulated while this shard
                // ran (the buffer is empty when tracing is off).
                clado_telemetry::flush_thread_local();
                let events = telemetry.take_trace_events();
                conn.send(&Message::ShardDone {
                    lease,
                    shard,
                    records,
                    stats,
                    events,
                })?;
            }
            Message::Idle { retry_ms } => {
                std::thread::sleep(Duration::from_millis(u64::from(retry_ms)));
            }
            Message::JobDone => return Ok(JobEnd::JobOver),
            Message::Shutdown => return Ok(JobEnd::Shutdown),
            Message::Reject { reason } => return Err(DistError::Rejected(reason)),
            other => {
                return Err(FrameError::Malformed(format!(
                    "unexpected coordinator message kind {}",
                    other.kind()
                ))
                .into())
            }
        }
    }
}

/// Runs a pooled worker: like [`run_worker`], but the connection
/// outlives a single job. When the coordinator (the `clado serve`
/// daemon) ends one job with `JobDone`, the worker keeps the socket
/// warm and awaits the next `Job`; `Shutdown` — or the daemon closing
/// the socket while the worker is between jobs — ends the session
/// cleanly. The provider is consulted once per distinct job spec:
/// repeat specs (ignoring the per-request trace id) reuse the
/// previously reconstructed model and sensitivity set, which is what
/// makes a warm pool cheap to hit.
///
/// # Errors
///
/// Same taxonomy as [`run_worker`]; additionally, a mid-job disconnect
/// is an error while a between-jobs disconnect is a clean exit.
pub fn run_pool_worker<F>(
    addr: &str,
    mut provider: F,
    opts: &WorkerOptions,
) -> Result<WorkerReport, DistError>
where
    F: FnMut(&JobSpec) -> Result<(Network, DataSplit), String>,
{
    let telemetry = opts.telemetry.clone();
    let _root = telemetry.span("dist.work.pool");
    let stream = connect_with_retry(addr, opts.connect_timeout, opts.connect_retries)?;
    stream.set_nodelay(true).map_err(DistError::Io)?;
    stream
        .set_read_timeout(Some(REPLY_TIMEOUT))
        .map_err(DistError::Io)?;
    let conn = Arc::new(Conn {
        stream,
        write: Mutex::new(()),
    });
    conn.send(&Message::Hello {
        protocol: PROTOCOL_VERSION,
        pid: std::process::id(),
    })?;

    // One heartbeat thread for the whole connection (lease 0 between
    // jobs): the daemon's heartbeat machinery is what detects a dead
    // pooled worker, so the liveness signal must not pause between jobs.
    let stop = Arc::new(AtomicBool::new(false));
    let current_lease = Arc::new(AtomicU64::new(0));
    let _heartbeat = {
        let conn = Arc::clone(&conn);
        let stop_flag = Arc::clone(&stop);
        let lease = Arc::clone(&current_lease);
        let interval = opts.heartbeat_interval;
        HeartbeatGuard {
            stop: Arc::clone(&stop),
            handle: Some(std::thread::spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let msg = Message::Heartbeat {
                        lease: lease.load(Ordering::Relaxed),
                    };
                    if conn.send(&msg).is_err() {
                        break;
                    }
                }
            })),
        }
    };

    let mut cached: Option<(JobSpec, Network, DataSplit)> = None;
    let mut report = WorkerReport::default();
    loop {
        // Await the next job. Read timeouts are routine here — the pool
        // may sit idle between requests — and the heartbeat thread keeps
        // the link alive meanwhile.
        let job = match conn.recv() {
            Ok(Message::Job(job)) => job,
            Ok(Message::Shutdown) => return Ok(report),
            Ok(Message::Reject { reason }) => return Err(DistError::Rejected(reason)),
            Ok(other) => {
                return Err(FrameError::Malformed(format!(
                    "expected Job, got kind {}",
                    other.kind()
                ))
                .into())
            }
            Err(e) if e.is_timeout() => continue,
            Err(e) if e.is_disconnect() => return Ok(report),
            Err(e) => return Err(e.into()),
        };
        if job.bits.is_empty() {
            return Err(FrameError::Malformed("job carries no bit-widths".into()).into());
        }
        let scheme = scheme_from_u8(job.scheme)?;
        if job.trace_id != 0 {
            telemetry.set_trace_id(job.trace_id);
            telemetry.set_trace_enabled(true);
        }

        let key = JobSpec {
            trace_id: 0,
            ..job.clone()
        };
        let fresh = !matches!(&cached, Some((k, _, _)) if *k == key);
        if fresh {
            let _s = telemetry.span("dist.work.load");
            let (network, set) = provider(&job).map_err(DistError::Provider)?;
            cached = Some((key, network, set));
        } else {
            telemetry.counter("dist.pool.model_reuse").incr();
        }
        let Some((_, network, set)) = cached.as_mut() else {
            unreachable!("cache populated above");
        };
        let bits = BitWidthSet::new(&job.bits);
        let ctx = ShardContext::new(
            network,
            set.len(),
            &bits,
            scheme,
            job.batch_size as usize,
            job.use_prefix_cache,
        );
        let (planner, fingerprint) = prepare_estimation(&ctx, network, set, &telemetry, &job)?;
        conn.send(&Message::Ready {
            fingerprint,
            clock_us: telemetry.now_us(),
        })?;
        match lease_loop(
            &conn,
            &ctx,
            planner.as_ref(),
            network,
            set,
            &telemetry,
            &current_lease,
            &mut report,
            opts.verbose,
        )? {
            JobEnd::JobOver => {
                telemetry.counter("dist.pool.jobs_completed").incr();
            }
            JobEnd::Shutdown => return Ok(report),
        }
    }
}
