//! The sweep coordinator: leases shards to workers over TCP, evicts
//! dead or hung leases, journals completed shards, and assembles Ω.
//!
//! # Lease/heartbeat state machine
//!
//! Each accepted connection gets its own thread with a read timeout of
//! [`CoordinatorOptions::heartbeat_timeout`]. *Any* frame from the
//! worker resets the deadline; workers send `Heartbeat` from a side
//! thread while the main thread evaluates, so a healthy worker on an
//! arbitrarily slow shard never times out. A read timeout, a closed
//! socket, or a malformed frame all end the connection the same way:
//! every lease held by that worker is requeued at the *front* of the
//! pending queue (so reassignment is prompt) and the eviction is
//! counted. A shard is only marked complete when its `ShardDone` frame
//! arrives and its records are committed to the CLSJ journal, so
//! leases can be evicted and reassigned any number of times without
//! losing or double-counting work.
//!
//! # Crash safety
//!
//! Completed shards flow through the same atomic CLSJ commit path the
//! in-process engine uses (write-tmp → fsync → rename → fsync-dir), one
//! commit per shard. A SIGKILLed coordinator therefore leaves a journal
//! a later `--resume` run loads losslessly — whether that run is
//! distributed again or a plain single-process `measure_sensitivities`.

use crate::error::DistError;
use crate::frame::FrameError;
use crate::protocol::{self, JobSpec, Message};
use clado_core::journal::load_journal;
use clado_core::{
    JournalError, JournalWriter, OmegaProvenance, ProbeId, ProbeRecord, SensitivityMatrix,
    SensitivityStats, ShardContext, ShardRunStats, ShardSpec,
};
use clado_estim::{
    complete_partial, estimation_fingerprint, resolved_probe_budget, EstimatorKind,
    DEFAULT_ALS_ITERS, DEFAULT_ALS_RANK,
};
use clado_telemetry::{ManifestValue, Telemetry, TraceEvent};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Milliseconds a worker is told to wait when no shard is leasable.
const IDLE_RETRY_MS: u32 = 50;

/// Options controlling a coordinator run.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// A worker that sends no frame for this long loses its leases.
    pub heartbeat_timeout: Duration,
    /// Directory for the crash-safe CLSJ shard journal; `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from an existing journal in the checkpoint directory.
    pub resume: bool,
    /// Telemetry sink for spans, counters, and per-worker gauges.
    pub telemetry: Telemetry,
    /// Print coarse progress to stderr.
    pub verbose: bool,
    /// Fail with [`DistError::NoWorkers`] when work remains but no
    /// worker has been connected for this long; `None` waits forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(3),
            checkpoint_dir: None,
            resume: false,
            telemetry: Telemetry::disabled(),
            verbose: false,
            idle_timeout: None,
        }
    }
}

/// Per-worker accounting, reported in the outcome and the run manifest.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Coordinator-assigned worker id (connection order).
    pub id: u64,
    /// The worker's OS process id from its `Hello`.
    pub pid: u32,
    /// Shards this worker completed.
    pub shards: u64,
    /// Probe records this worker contributed.
    pub probes: u64,
    /// Busy time: summed shard-evaluation wall time.
    pub seconds: f64,
}

/// The result of a completed distributed sweep.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// The assembled sensitivity matrix — bitwise identical to a
    /// single-process [`clado_core::measure_sensitivities`] run of the
    /// same configuration (or, for an estimation job, to
    /// `clado_estim::estimate_sensitivities` under the same estimator,
    /// budget, and seed).
    pub matrix: SensitivityMatrix,
    /// Per-worker accounting, ordered by worker id.
    pub workers: Vec<WorkerSummary>,
    /// Leases evicted (and their shards requeued) from dead or hung
    /// workers.
    pub evictions: u64,
    /// Workers refused during the handshake (version or fingerprint
    /// mismatch).
    pub rejected: u64,
    /// Probe records restored from the journal instead of re-measured.
    pub resumed: usize,
    /// Busy seconds of the slowest worker (the straggler).
    pub straggler_seconds: f64,
}

#[derive(Default)]
struct AggStats {
    full_evals: u64,
    cache_hits: u64,
    cache_builds: u64,
    retried: u64,
}

struct Scheduler {
    pending: VecDeque<ShardSpec>,
    leases: HashMap<u64, (ShardSpec, u64)>, // lease id → (shard, worker id)
    next_lease: u64,
    next_span_id: u64,
    /// When the first shard lease was granted (run start → this is the
    /// fleet spin-up / handshake phase; this → end is steady state).
    first_lease_at: Option<Instant>,
    done: HashSet<ShardSpec>,
    total_shards: usize,
    records: HashMap<ProbeId, ProbeRecord>,
    writer: Option<JournalWriter>,
    fatal: Option<DistError>,
    evictions: u64,
    rejected: u64,
    protocol_errors: u64,
    connected: usize,
    workers: BTreeMap<u64, WorkerSummary>,
    agg: AggStats,
}

impl Scheduler {
    fn complete(&self) -> bool {
        self.fatal.is_some() || self.done.len() == self.total_shards
    }

    /// Requeues every lease held by `worker` (front of the queue, so a
    /// reassignment happens before fresh work).
    fn evict_worker(&mut self, worker: u64) -> u64 {
        let held: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, (_, w))| *w == worker)
            .map(|(&l, _)| l)
            .collect();
        for lease in &held {
            if let Some((shard, _)) = self.leases.remove(lease) {
                if !self.done.contains(&shard) {
                    self.pending.push_front(shard);
                }
                self.evictions += 1;
            }
        }
        held.len() as u64
    }
}

/// A sensitivity-sweep coordinator bound to a TCP address.
///
/// Construct with [`Coordinator::bind`], learn the bound address via
/// [`Coordinator::local_addr`] (to hand to workers), then
/// [`Coordinator::run`] to drive the sweep to completion.
pub struct Coordinator {
    listener: TcpListener,
    ctx: ShardContext,
    job: JobSpec,
    opts: CoordinatorOptions,
}

impl Coordinator {
    /// Binds the coordinator socket. Use address `127.0.0.1:0` to let
    /// the OS pick a free port.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: &str,
        ctx: ShardContext,
        job: JobSpec,
        opts: CoordinatorOptions,
    ) -> Result<Self, DistError> {
        let listener = TcpListener::bind(addr).map_err(DistError::Io)?;
        Ok(Self {
            listener,
            ctx,
            job,
            opts,
        })
    }

    /// The address workers should connect to.
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// successfully bound listener).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Drives the sweep: accepts workers, leases shards, journals
    /// completions, and assembles the final matrix once every shard is
    /// done. Returns when the sweep completes or fails.
    ///
    /// # Errors
    ///
    /// [`DistError::Journal`] for checkpoint failures (completed shards
    /// stay on disk), [`DistError::Measure`] for assembly failures, and
    /// [`DistError::NoWorkers`] when the idle timeout expires with work
    /// remaining.
    pub fn run(self) -> Result<DistOutcome, DistError> {
        let start = Instant::now();
        let telemetry = self.opts.telemetry.clone();
        // Adopt the job's trace id so events from this run and the
        // workers' shipped events correlate under one id.
        if self.job.trace_id != 0 {
            telemetry.set_trace_id(self.job.trace_id);
            telemetry.set_trace_enabled(true);
        }
        let _root = telemetry.span("dist.coordinate");
        // Estimation jobs resolve their estimator once; the journal and
        // the worker handshake both key on the estimator fingerprint
        // (configuration ⊕ kind ⊕ resolved budget ⊕ seed), so an
        // estimation sweep can never mix records with an exact one or
        // with another estimator's.
        let estimator = match self.job.estimator {
            0 => None,
            tag => match EstimatorKind::from_tag(tag) {
                Some(EstimatorKind::Hutchinson) => {
                    return Err(DistError::BadJob(
                        "hutchinson estimation is diagonal-only and not grid-shardable; \
                         run it single-process"
                            .into(),
                    ))
                }
                Some(kind) => Some(kind),
                None => return Err(DistError::BadJob(format!("unknown estimator tag {tag}"))),
            },
        };
        let fp = match estimator {
            Some(kind) => estimation_fingerprint(
                &self.ctx,
                kind,
                self.job.probe_budget as usize,
                self.job.estimator_seed,
            ),
            None => self.ctx.fingerprint(),
        };

        // Load (or refuse) the checkpoint journal exactly like the
        // in-process engine: same fingerprint, same not-empty guard.
        let mut records: HashMap<ProbeId, ProbeRecord> = HashMap::new();
        let mut writer = None;
        let mut resumed = 0usize;
        if let Some(dir) = &self.opts.checkpoint_dir {
            let state = load_journal(dir, fp)?;
            if !self.opts.resume && (state.shards + state.corrupt_shards) > 0 {
                return Err(JournalError::NotEmpty { dir: dir.clone() }.into());
            }
            if self.opts.resume {
                resumed = state.records.len();
                records = state.records;
            }
            writer = Some(JournalWriter::open(dir, fp, state.next_seq)?);
        }

        let shards = self.ctx.shards();
        let total_shards = shards.len();
        let mut pending = VecDeque::new();
        let mut done = HashSet::new();
        for shard in shards {
            // In estimation mode a pair shard only carries its selected
            // probes, so resume completeness is "any record present":
            // CLSJ shard commits are atomic (a corrupt shard is dropped
            // wholly) and workers ship each shard's whole selection in
            // one ShardDone. A pair shard whose selection was empty is
            // simply re-leased — workers return it instantly.
            let complete = match (estimator, shard) {
                (Some(_), ShardSpec::Pair { outer }) => records
                    .keys()
                    .any(|id| matches!(id, ProbeId::Pair { layer_i, .. } if *layer_i == outer)),
                _ => self
                    .ctx
                    .shard_probes(shard)
                    .iter()
                    .all(|id| records.contains_key(id)),
            };
            if complete {
                done.insert(shard);
            } else {
                pending.push_back(shard);
            }
        }
        if self.opts.verbose {
            eprintln!(
                "dist: {} shards ({} resumed complete), {} journaled probes",
                total_shards,
                done.len(),
                resumed
            );
        }
        telemetry.counter("dist.resumed_probes").add(resumed as u64);

        let sched = Mutex::new(Scheduler {
            pending,
            leases: HashMap::new(),
            next_lease: 1,
            next_span_id: 1,
            first_lease_at: None,
            done,
            total_shards,
            records,
            writer,
            fatal: None,
            evictions: 0,
            rejected: 0,
            protocol_errors: 0,
            connected: 0,
            workers: BTreeMap::new(),
            agg: AggStats::default(),
        });

        self.listener.set_nonblocking(true).map_err(DistError::Io)?;
        std::thread::scope(|scope| {
            let mut next_worker = 0u64;
            let mut idle_since = Instant::now();
            loop {
                {
                    let g = sched.lock().expect("scheduler lock");
                    if g.complete() {
                        break;
                    }
                    if g.connected > 0 {
                        idle_since = Instant::now();
                    }
                }
                if let Some(limit) = self.opts.idle_timeout {
                    if idle_since.elapsed() > limit {
                        sched.lock().expect("scheduler lock").fatal =
                            Some(DistError::NoWorkers { waited: limit });
                        break;
                    }
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let id = next_worker;
                        next_worker += 1;
                        let sched = &sched;
                        let job = &self.job;
                        let telemetry = telemetry.clone();
                        let hb = self.opts.heartbeat_timeout;
                        let verbose = self.opts.verbose;
                        scope.spawn(move || {
                            serve_worker(stream, id, sched, job, fp, hb, telemetry, verbose);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        sched.lock().expect("scheduler lock").fatal = Some(DistError::Io(e));
                        break;
                    }
                }
            }
            // A worker that connected while the last shard was finishing
            // can still sit un-accepted in the listener backlog; dropping
            // the listener would reset it mid-handshake. Accept whatever
            // is queued so each such worker gets a handshake and a
            // graceful Shutdown at its first lease request.
            if sched.lock().expect("scheduler lock").fatal.is_none() {
                while let Ok((stream, _peer)) = self.listener.accept() {
                    let id = next_worker;
                    next_worker += 1;
                    let sched = &sched;
                    let job = &self.job;
                    let telemetry = telemetry.clone();
                    let hb = self.opts.heartbeat_timeout;
                    let verbose = self.opts.verbose;
                    scope.spawn(move || {
                        serve_worker(stream, id, sched, job, fp, hb, telemetry, verbose);
                    });
                }
            }
            // Connection threads drain on their own: idle workers get a
            // Shutdown at their next lease request; silent ones hit the
            // heartbeat deadline. The scope joins them all.
        });

        let mut g = sched.into_inner().expect("scheduler mutex");
        if let Some(e) = g.fatal.take() {
            return Err(e);
        }
        // Estimation sweeps assemble the partial grid and complete it
        // exactly like the single-process path (same kind, ALS
        // defaults, and seed), so the distributed estimate is bitwise
        // identical to `clado_estim::estimate_sensitivities`.
        let (matrix, base_loss, quarantined) = match estimator {
            Some(kind) => {
                let assembly = self.ctx.assemble_partial(&g.records)?;
                let completed = complete_partial(
                    kind,
                    &assembly.g,
                    &assembly.observed,
                    DEFAULT_ALS_RANK,
                    DEFAULT_ALS_ITERS,
                    self.job.estimator_seed,
                );
                (completed, assembly.base_loss, assembly.quarantined)
            }
            None => self.ctx.assemble(&g.records)?,
        };
        let workers: Vec<WorkerSummary> = g.workers.into_values().collect();
        let straggler_seconds = workers.iter().map(|w| w.seconds).fold(0.0f64, f64::max);
        telemetry.counter("dist.evictions").add(g.evictions);
        telemetry.counter("dist.rejected_workers").add(g.rejected);
        telemetry
            .counter("dist.protocol_errors")
            .add(g.protocol_errors);
        telemetry.set_gauge("dist.straggler_seconds", straggler_seconds);
        // Split wall time into fleet spin-up (bind → first lease grant,
        // dominated by connects, handshakes, and worker model builds)
        // vs. steady-state shard service, so operators do not read
        // startup cost as a sharding regression.
        let total_seconds = start.elapsed().as_secs_f64();
        let startup_seconds = g
            .first_lease_at
            .map(|t| t.duration_since(start).as_secs_f64())
            .unwrap_or(total_seconds);
        telemetry.set_gauge("dist.startup_seconds", startup_seconds);
        telemetry.set_gauge(
            "dist.steady_seconds",
            (total_seconds - startup_seconds).max(0.0),
        );
        for w in &workers {
            telemetry.set_gauge(&format!("dist.worker.{}.probes", w.id), w.probes as f64);
            telemetry.set_gauge(&format!("dist.worker.{}.shards", w.id), w.shards as f64);
            telemetry.set_gauge(&format!("dist.worker.{}.busy_seconds", w.id), w.seconds);
        }
        let stats = SensitivityStats {
            evaluations: (g.agg.full_evals + g.agg.cache_hits) as usize,
            seconds: start.elapsed().as_secs_f64(),
            threads_used: workers.len().max(1),
            prefix_cache_builds: g.agg.cache_builds as usize,
            prefix_cache_hits: g.agg.cache_hits as usize,
            full_evals: g.agg.full_evals as usize,
            resumed,
            retried: g.agg.retried as usize,
            quarantined,
            provenance: match estimator {
                Some(kind) => OmegaProvenance::estimated(
                    kind.tag(),
                    resolved_probe_budget(&self.ctx, self.job.probe_budget as usize) as u64,
                    self.job.estimator_seed,
                ),
                None => OmegaProvenance::exact(),
            },
        };
        let matrix = SensitivityMatrix::from_parts(
            matrix,
            self.ctx.num_layers(),
            self.ctx.bits().clone(),
            base_loss,
            stats,
        );
        Ok(DistOutcome {
            matrix,
            workers,
            evictions: g.evictions,
            rejected: g.rejected,
            resumed,
            straggler_seconds,
        })
    }
}

/// Runs the handshake: `Hello` → `Job` → `Ready`, rejecting version and
/// fingerprint mismatches. Returns the worker's pid and the worker's
/// trace clock at `Ready` (for re-basing shipped trace events).
fn handshake(
    stream: &mut &TcpStream,
    job: &JobSpec,
    fp: u64,
) -> Result<(u32, u64), (FrameError, bool)> {
    let pid = match protocol::recv(stream) {
        Ok(Message::Hello { protocol, pid }) => {
            if protocol != crate::frame::PROTOCOL_VERSION {
                let _ = protocol::send(
                    stream,
                    &Message::Reject {
                        reason: format!(
                            "protocol version {protocol} unsupported (want {})",
                            crate::frame::PROTOCOL_VERSION
                        ),
                    },
                );
                return Err((FrameError::UnsupportedVersion(protocol), true));
            }
            pid
        }
        Ok(_) => return Err((FrameError::Malformed("expected Hello".into()), false)),
        Err(e) => return Err((e, false)),
    };
    if let Err(e) = protocol::send(stream, &Message::Job(job.clone())) {
        return Err((e, false));
    }
    // Workers heartbeat while reconstructing the job (model loading can
    // be slow), so liveness frames are expected before Ready.
    let ready = loop {
        match protocol::recv(stream) {
            Ok(Message::Heartbeat { .. }) => {}
            other => break other,
        }
    };
    match ready {
        Ok(Message::Ready {
            fingerprint,
            clock_us,
        }) if fingerprint == fp => Ok((pid, clock_us)),
        Ok(Message::Ready { fingerprint, .. }) => {
            let _ = protocol::send(
                stream,
                &Message::Reject {
                    reason: format!(
                        "config fingerprint mismatch (worker {fingerprint:#018x}, \
                         coordinator {fp:#018x})"
                    ),
                },
            );
            Err((
                FrameError::Malformed("worker fingerprint mismatch".into()),
                true,
            ))
        }
        Ok(_) => Err((FrameError::Malformed("expected Ready".into()), false)),
        Err(e) => Err((e, false)),
    }
}

/// Serves one worker connection to completion. Never panics on worker
/// input; every exit path evicts whatever the worker still held.
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    stream: TcpStream,
    id: u64,
    sched: &Mutex<Scheduler>,
    job: &JobSpec,
    fp: u64,
    heartbeat_timeout: Duration,
    telemetry: Telemetry,
    verbose: bool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(heartbeat_timeout));
    // Both directions are bounded during the handshake so a peer that
    // connects but never sends (or never drains) a frame cannot pin
    // this thread; the expired wait surfaces as the typed
    // `HandshakeTimeout` rather than a silent disconnect.
    let _ = stream.set_write_timeout(Some(heartbeat_timeout));
    let mut stream_ref = &stream;
    let (pid, worker_clock_us) = {
        let _s = telemetry.span("dist.handshake");
        match handshake(&mut stream_ref, job, fp) {
            Ok(done) => done,
            Err((err, was_reject)) => {
                let err = err.or_handshake_timeout();
                let mut g = sched.lock().expect("scheduler lock");
                if was_reject {
                    g.rejected += 1;
                } else if matches!(err, FrameError::HandshakeTimeout) {
                    telemetry.counter("dist.handshake_timeouts").incr();
                } else if !err.is_disconnect() {
                    g.protocol_errors += 1;
                }
                if verbose {
                    eprintln!("dist: worker {id} failed handshake: {err}");
                }
                return;
            }
        }
    };
    // Post-handshake writes (leases, shutdowns) go back to blocking:
    // slow-reading workers are policed by the heartbeat deadline.
    let _ = stream.set_write_timeout(None);
    {
        let mut g = sched.lock().expect("scheduler lock");
        g.connected += 1;
        g.workers.insert(
            id,
            WorkerSummary {
                id,
                pid,
                shards: 0,
                probes: 0,
                seconds: 0.0,
            },
        );
    }
    telemetry.counter("dist.workers_connected").incr();
    // Per-worker clock offset: the worker reports its trace clock at
    // Ready; adding this offset re-bases its event timestamps onto the
    // coordinator's timeline (network latency errs the offset late by
    // at most one frame round-trip).
    let clock_offset_us = telemetry.now_us() as i64 - worker_clock_us as i64;
    telemetry.set_process_label(pid, &format!("worker-{id}"));
    if verbose {
        eprintln!("dist: worker {id} (pid {pid}) connected");
    }

    loop {
        match protocol::recv(&mut stream_ref) {
            Ok(Message::LeaseRequest) => {
                let reply = {
                    let mut g = sched.lock().expect("scheduler lock");
                    if g.complete() {
                        Message::Shutdown
                    } else if let Some(shard) = g.pending.pop_front() {
                        let lease = g.next_lease;
                        g.next_lease += 1;
                        let span_id = if telemetry.trace_enabled() {
                            let s = g.next_span_id;
                            g.next_span_id += 1;
                            s
                        } else {
                            0
                        };
                        g.leases.insert(lease, (shard, id));
                        if g.first_lease_at.is_none() {
                            g.first_lease_at = Some(Instant::now());
                        }
                        Message::Lease {
                            lease,
                            span_id,
                            shard,
                        }
                    } else {
                        Message::Idle {
                            retry_ms: IDLE_RETRY_MS,
                        }
                    }
                };
                if let Message::Lease {
                    lease,
                    span_id,
                    shard,
                } = &reply
                {
                    telemetry.instant(
                        "dist.lease_grant",
                        &[
                            ("worker", ManifestValue::Int(id as i64)),
                            ("lease", ManifestValue::Int(*lease as i64)),
                            ("span_id", ManifestValue::Int(*span_id as i64)),
                            ("shard", ManifestValue::Str(shard.to_string())),
                        ],
                    );
                }
                let is_shutdown = matches!(reply, Message::Shutdown);
                if protocol::send(&mut stream_ref, &reply).is_err() || is_shutdown {
                    break;
                }
            }
            Ok(Message::Heartbeat { lease }) => {
                telemetry.instant(
                    "dist.heartbeat",
                    &[
                        ("worker", ManifestValue::Int(id as i64)),
                        ("lease", ManifestValue::Int(lease as i64)),
                    ],
                );
            }
            Ok(Message::ShardDone {
                lease,
                shard,
                records,
                stats,
                events,
            }) => {
                ingest_worker_events(&telemetry, events, pid, clock_offset_us);
                telemetry.instant(
                    "dist.shard_done",
                    &[
                        ("worker", ManifestValue::Int(id as i64)),
                        ("lease", ManifestValue::Int(lease as i64)),
                        ("shard", ManifestValue::Str(shard.to_string())),
                        ("probes", ManifestValue::Int(records.len() as i64)),
                    ],
                );
                let mut g = sched.lock().expect("scheduler lock");
                handle_done(&mut g, id, lease, shard, &records, &stats, &telemetry);
                if verbose {
                    eprintln!(
                        "dist: worker {id} finished {shard} ({}/{} shards)",
                        g.done.len(),
                        g.total_shards
                    );
                }
            }
            Ok(other) => {
                // Protocol violation: drop the connection, requeue.
                let mut g = sched.lock().expect("scheduler lock");
                g.protocol_errors += 1;
                if verbose {
                    eprintln!(
                        "dist: worker {id} sent unexpected {:?}; dropping connection",
                        other.kind()
                    );
                }
                break;
            }
            Err(e) => {
                if !e.is_disconnect() {
                    let mut g = sched.lock().expect("scheduler lock");
                    g.protocol_errors += 1;
                }
                if verbose {
                    eprintln!("dist: worker {id} connection ended: {e}");
                }
                break;
            }
        }
    }

    let mut g = sched.lock().expect("scheduler lock");
    g.connected -= 1;
    let evicted = g.evict_worker(id);
    drop(g);
    if evicted > 0 {
        telemetry.counter("dist.lease_evictions").add(evicted);
        telemetry.instant(
            "dist.eviction",
            &[
                ("worker", ManifestValue::Int(id as i64)),
                ("requeued", ManifestValue::Int(evicted as i64)),
            ],
        );
        if verbose {
            eprintln!("dist: worker {id} lost; requeued {evicted} leased shard(s)");
        }
    }
}

/// Re-bases worker trace events onto the coordinator's clock, stamps
/// the originating pid, and merges them into the coordinator's buffer.
fn ingest_worker_events(
    telemetry: &Telemetry,
    mut events: Vec<TraceEvent>,
    pid: u32,
    clock_offset_us: i64,
) {
    if events.is_empty() {
        return;
    }
    for e in &mut events {
        e.pid = pid;
        e.ts_us = e.ts_us.saturating_add_signed(clock_offset_us);
    }
    telemetry.ingest_trace_events(events);
}

/// Integrates one completed shard: journals fresh records atomically,
/// marks the shard done, and updates per-worker accounting. Duplicate
/// completions (a shard finished by a re-leased worker after an earlier
/// eviction) are ignored record-by-record, so commits stay idempotent.
fn handle_done(
    g: &mut Scheduler,
    worker: u64,
    lease: u64,
    shard: ShardSpec,
    records: &[ProbeRecord],
    stats: &ShardRunStats,
    telemetry: &Telemetry,
) {
    g.leases.remove(&lease);
    if g.done.contains(&shard) {
        return;
    }
    let mut fresh = 0u64;
    for rec in records {
        if !g.records.contains_key(&rec.id) {
            if let Some(w) = g.writer.as_mut() {
                w.append(*rec);
            }
            g.records.insert(rec.id, *rec);
            fresh += 1;
        }
    }
    if let Some(w) = g.writer.as_mut() {
        if let Err(e) = w.commit() {
            g.fatal = Some(DistError::Journal(e));
            return;
        }
    }
    g.done.insert(shard);
    g.agg.full_evals += stats.full_evals;
    g.agg.cache_hits += stats.cache_hits;
    g.agg.cache_builds += stats.cache_builds;
    g.agg.retried += stats.retried;
    if let Some(w) = g.workers.get_mut(&worker) {
        w.shards += 1;
        w.probes += records.len() as u64;
        w.seconds += stats.seconds;
    }
    telemetry.counter("dist.shards_completed").incr();
    telemetry.counter("dist.probes").add(fresh);
    telemetry
        .histogram("dist.shard_service")
        .record_us((stats.seconds * 1e6) as u64);
}
