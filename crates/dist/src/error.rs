//! Top-level error type for the distributed sweep.

use crate::frame::FrameError;
use clado_core::{JournalError, MeasureError};
use std::fmt;
use std::io;
use std::time::Duration;

/// A failure of the distributed coordinator or worker.
#[derive(Debug)]
pub enum DistError {
    /// Socket setup failed (bind, connect, accept).
    Io(io::Error),
    /// A wire-protocol failure on an essential connection (e.g. the
    /// worker's link to its coordinator).
    Frame(FrameError),
    /// The checkpoint journal failed; completed shards stay on disk.
    Journal(JournalError),
    /// Ω assembly failed (missing probes, non-finite base loss).
    Measure(MeasureError),
    /// The coordinator refused this worker (version or fingerprint
    /// mismatch).
    Rejected(String),
    /// The worker's model provider could not reconstruct the job.
    Provider(String),
    /// The job specification is invalid (unknown estimator tag, or an
    /// estimator that cannot be grid-sharded).
    BadJob(String),
    /// Work remained but no worker was connected for the configured
    /// idle window.
    NoWorkers {
        /// How long the coordinator waited.
        waited: Duration,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "distributed socket error: {e}"),
            Self::Frame(e) => write!(f, "distributed protocol error: {e}"),
            Self::Journal(e) => write!(f, "{e}"),
            Self::Measure(e) => write!(f, "{e}"),
            Self::Rejected(reason) => write!(f, "coordinator rejected this worker: {reason}"),
            Self::Provider(why) => write!(f, "worker could not reconstruct the job: {why}"),
            Self::BadJob(why) => write!(f, "invalid job specification: {why}"),
            Self::NoWorkers { waited } => write!(
                f,
                "work remained but no worker connected for {:.0?}",
                waited
            ),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            Self::Journal(e) => Some(e),
            Self::Measure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for DistError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

impl From<JournalError> for DistError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

impl From<MeasureError> for DistError {
    fn from(e: MeasureError) -> Self {
        Self::Measure(e)
    }
}
