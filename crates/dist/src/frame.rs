//! Length-prefixed binary framing for the coordinator/worker wire.
//!
//! Every message travels as one frame:
//!
//! ```text
//! magic "CLDP" (4) | version u16 LE | kind u16 LE | payload_len u32 LE
//! | payload (payload_len bytes) | FNV-1a checksum u64 LE
//! ```
//!
//! The checksum covers the header and payload, so a flipped bit anywhere
//! surfaces as [`FrameError::BadChecksum`] rather than a garbled decode.
//! Every malformed input — wrong magic, unsupported version, oversized
//! length, truncation mid-frame, checksum mismatch — maps to a typed
//! [`FrameError`]; nothing in this module panics on untrusted bytes.

use clado_telemetry::faultinject;
use std::fmt;
use std::io::{self, Read, Write};

/// Wire-protocol version carried in every frame header and in the
/// `Hello` handshake. Bump on any incompatible change to the framing or
/// message encodings.
///
/// v2: trace-context propagation — `Job.trace_id`, `Ready.clock_us`,
/// `Lease.span_id`, and trace events appended to `ShardDone`.
///
/// v3: serving — pooled workers that outlive a single job (`JobDone`
/// keeps the connection open between jobs), typed handshake timeouts,
/// and the `clado serve` request/response frames layered on the same
/// envelope.
///
/// v4: budgeted estimation — `Job.{estimator, probe_budget,
/// estimator_seed}` let a coordinator shard a sub-quadratic Ω estimation
/// sweep; workers rebuild the probe plan locally from those three
/// fields.
pub const PROTOCOL_VERSION: u16 = 4;

/// Upper bound on a frame payload. The largest legitimate message is a
/// `ShardDone` for one pairwise shard (26 bytes per probe); 4 MiB leaves
/// three orders of magnitude of headroom while keeping a corrupt or
/// hostile length field from provoking a huge allocation.
pub const MAX_PAYLOAD: u32 = 4 << 20;

const MAGIC: [u8; 4] = *b"CLDP";
const HEADER_BYTES: usize = 4 + 2 + 2 + 4;

/// A failure reading, writing, or decoding a wire frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The connection closed mid-frame.
    Truncated,
    /// The frame did not start with the `CLDP` magic.
    BadMagic([u8; 4]),
    /// The frame header carried an unsupported protocol version.
    UnsupportedVersion(u16),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The frame checksum did not match its contents.
    BadChecksum,
    /// The frame kind is not a known message type.
    UnknownKind(u16),
    /// The payload failed to decode as its declared message type.
    Malformed(String),
    /// The peer connected but sent no complete handshake frame within
    /// the handshake window (a silent or wedged peer must not occupy an
    /// accept slot indefinitely).
    HandshakeTimeout,
    /// An I/O error (including read timeouts) on the underlying stream.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Truncated => write!(f, "connection closed mid-frame"),
            Self::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            Self::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            Self::BadChecksum => write!(f, "frame checksum mismatch"),
            Self::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            Self::Malformed(why) => write!(f, "malformed message payload: {why}"),
            Self::HandshakeTimeout => {
                write!(f, "peer sent no handshake frame within the timeout")
            }
            Self::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl FrameError {
    /// Whether the error means the peer went away (or stalled past its
    /// read timeout) rather than spoke garbage.
    pub fn is_disconnect(&self) -> bool {
        match self {
            Self::Closed | Self::Truncated => true,
            Self::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }

    /// Whether the error is a read/write timeout on the underlying
    /// stream (the peer is silent, not gone). The handshake paths remap
    /// these to the typed [`FrameError::HandshakeTimeout`].
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }

    /// Converts stream timeouts into the typed handshake rejection,
    /// leaving every other error untouched.
    pub fn or_handshake_timeout(self) -> Self {
        if self.is_timeout() {
            Self::HandshakeTimeout
        } else {
            self
        }
    }
}

/// FNV-1a over raw bytes (the frame checksum; the journal fingerprint
/// uses the same function over u64 fields).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Writes one frame and flushes the stream.
pub fn write_frame(w: &mut impl Write, kind: u16, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::Oversized {
            len: payload.len() as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len() + 8);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    buf.extend_from_slice(&kind.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    // Debug-build wire fault points (armed via `CLADO_FAULTPOINTS`, see
    // `clado_telemetry::faultinject`): deterministic protocol-level
    // failures injected at the single choke point every frame passes
    // through. All four compile to nothing in release builds.
    //
    // * `wire.write.delay` (trigger, arg=ms) — stall the write, so the
    //   peer's read timeout fires against a live but silent writer.
    // * `wire.write.corrupt` (trigger) — flip one checksum bit; the
    //   reader must surface `BadChecksum`, never a garbled decode.
    // * `wire.write.truncate` (trigger) — ship half the frame and break
    //   the pipe, as if the writer died mid-`write_all`.
    // * `wire.write.drop` (trigger, skip=k) — reset the connection
    //   without writing, dropping the link after k healthy frames.
    if let Some(ms) = faultinject::fire_arg("wire.write.delay") {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    if faultinject::fire("wire.write.corrupt") {
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
    }
    if faultinject::fire("wire.write.truncate") {
        w.write_all(&buf[..buf.len() / 2])?;
        w.flush()?;
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "fault injected at `wire.write.truncate`",
        )));
    }
    if faultinject::fire("wire.write.drop") {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "fault injected at `wire.write.drop`",
        )));
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Fills `buf` from the reader; distinguishes a clean close before the
/// first byte (`Ok(false)`) from truncation mid-read (error).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<bool, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && at_boundary {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return if got == 0 && at_boundary {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame, validating magic, version, length bound, and
/// checksum. Returns the message kind and payload.
pub fn read_frame(r: &mut impl Read) -> Result<(u16, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    if !read_full(r, &mut header, true)? {
        return Err(FrameError::Closed);
    }
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic(
            header[..4].try_into().expect("4 bytes"),
        ));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let kind = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let mut rest = vec![0u8; len as usize + 8];
    read_full(r, &mut rest, false)?;
    let (payload, sum_bytes) = rest.split_at(len as usize);
    let declared = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    let mut check = Vec::with_capacity(HEADER_BYTES + payload.len());
    check.extend_from_slice(&header);
    check.extend_from_slice(payload);
    if fnv1a(&check) != declared {
        return Err(FrameError::BadChecksum);
    }
    Ok((kind, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(kind: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).expect("encode");
        out
    }

    #[test]
    fn round_trip_preserves_kind_and_payload() {
        for payload in [&b""[..], b"x", &[0u8; 4096][..]] {
            let bytes = frame(7, payload);
            let (kind, got) = read_frame(&mut Cursor::new(&bytes)).expect("decode");
            assert_eq!(kind, 7);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn empty_stream_is_a_clean_close() {
        let err = read_frame(&mut Cursor::new(&[] as &[u8])).unwrap_err();
        assert!(matches!(err, FrameError::Closed), "{err}");
        assert!(err.is_disconnect());
    }

    #[test]
    fn truncation_anywhere_mid_frame_is_typed() {
        let bytes = frame(3, b"hello world");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = frame(1, b"payload");
        bytes[0] = b'X';
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = frame(1, b"payload");
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(
            matches!(err, FrameError::UnsupportedVersion(0xFFFF)),
            "{err}"
        );
    }

    #[test]
    fn pre_serve_v1_and_v2_frames_are_rejected() {
        // v1 (no trace context) and v2 (no pooling/serve frames) peers
        // must be refused at the frame layer before any payload
        // decoding is attempted.
        for old in [1u16, 2] {
            let mut bytes = frame(1, b"payload");
            bytes[4..6].copy_from_slice(&old.to_le_bytes());
            let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
            assert!(
                matches!(err, FrameError::UnsupportedVersion(v) if v == old),
                "{err}"
            );
        }
    }

    #[test]
    fn timeouts_map_to_the_typed_handshake_rejection() {
        let timeout = FrameError::Io(io::Error::from(io::ErrorKind::WouldBlock));
        assert!(timeout.is_timeout());
        assert!(matches!(
            timeout.or_handshake_timeout(),
            FrameError::HandshakeTimeout
        ));
        let garbage = FrameError::BadChecksum;
        assert!(!garbage.is_timeout());
        assert!(matches!(
            garbage.or_handshake_timeout(),
            FrameError::BadChecksum
        ));
        // A silent peer is not a disconnected one: the typed rejection
        // must be surfaced (and counted), not swallowed.
        assert!(!FrameError::HandshakeTimeout.is_disconnect());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = frame(1, b"payload");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
    }

    #[test]
    fn oversized_writes_are_refused() {
        let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
        let err = write_frame(&mut Vec::new(), 1, &payload).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        let reference = frame(9, b"sensitive bits");
        // Flip one bit in each byte of header-tail, payload, and checksum.
        for i in 6..reference.len() {
            if (8..12).contains(&i) {
                continue; // length corruption is covered separately
            }
            let mut bytes = reference.clone();
            bytes[i] ^= 0x01;
            let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
            assert!(
                matches!(err, FrameError::BadChecksum | FrameError::Truncated),
                "byte {i}: {err}"
            );
        }
    }

    #[test]
    fn garbage_prefix_never_panics() {
        for len in 0..64usize {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = read_frame(&mut Cursor::new(&junk));
        }
    }

    #[cfg(debug_assertions)]
    mod wire_faults {
        use super::*;
        use clado_telemetry::faultinject::{arm, test_guard, FaultSpec};
        use std::time::Instant;

        #[test]
        fn truncate_ships_half_the_frame_and_breaks_the_pipe() {
            let _guard = test_guard();
            arm("wire.write.truncate", FaultSpec::trigger().times(1));
            let mut out = Vec::new();
            let err = write_frame(&mut out, 5, b"truncate me").unwrap_err();
            assert!(matches!(&err, FrameError::Io(e)
                if e.kind() == io::ErrorKind::BrokenPipe));
            assert!(err.is_disconnect());
            assert!(!out.is_empty() && out.len() < frame(5, b"truncate me").len());
            // The reader sees the typed mid-frame truncation…
            let read = read_frame(&mut Cursor::new(&out)).unwrap_err();
            assert!(matches!(read, FrameError::Truncated), "{read}");
            // …and the window is spent: the next write recovers cleanly.
            let healthy = frame(5, b"truncate me");
            let (kind, payload) = read_frame(&mut Cursor::new(&healthy)).expect("recovered");
            assert_eq!((kind, payload.as_slice()), (5, &b"truncate me"[..]));
        }

        #[test]
        fn corrupt_flips_a_checksum_bit_that_the_reader_types() {
            let _guard = test_guard();
            arm("wire.write.corrupt", FaultSpec::trigger().times(1));
            let mut out = Vec::new();
            write_frame(&mut out, 6, b"corrupt me").expect("write succeeds");
            let err = read_frame(&mut Cursor::new(&out)).unwrap_err();
            assert!(matches!(err, FrameError::BadChecksum), "{err}");
            // Window exhausted: the retransmitted frame decodes.
            let healthy = frame(6, b"corrupt me");
            assert!(read_frame(&mut Cursor::new(&healthy)).is_ok());
        }

        #[test]
        fn delay_stalls_the_write_by_the_armed_milliseconds() {
            let _guard = test_guard();
            arm("wire.write.delay", FaultSpec::trigger().times(1).arg(60));
            let start = Instant::now();
            let mut out = Vec::new();
            write_frame(&mut out, 7, b"slow").expect("stalled write still lands");
            assert!(start.elapsed().as_millis() >= 60, "{:?}", start.elapsed());
            assert!(read_frame(&mut Cursor::new(&out)).is_ok());
        }

        #[test]
        fn drop_after_k_frames_resets_without_writing() {
            let _guard = test_guard();
            arm("wire.write.drop", FaultSpec::trigger().skip(2).times(1));
            let mut out = Vec::new();
            write_frame(&mut out, 8, b"one").expect("frame 1 passes");
            write_frame(&mut out, 8, b"two").expect("frame 2 passes");
            let before = out.len();
            let err = write_frame(&mut out, 8, b"three").unwrap_err();
            assert!(matches!(&err, FrameError::Io(e)
                if e.kind() == io::ErrorKind::ConnectionReset));
            assert!(err.is_disconnect());
            assert_eq!(out.len(), before, "the dropped frame wrote nothing");
            // The two healthy frames are intact on the wire.
            let mut cursor = Cursor::new(&out);
            assert_eq!(read_frame(&mut cursor).expect("frame 1").1, b"one");
            assert_eq!(read_frame(&mut cursor).expect("frame 2").1, b"two");
        }
    }
}
