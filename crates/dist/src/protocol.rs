//! Wire messages of the coordinator/worker protocol.
//!
//! The conversation is worker-driven after the handshake:
//!
//! ```text
//! worker → Hello { protocol, pid }
//! coord  → Job(JobSpec)                (or Reject on a version mismatch)
//! worker → Ready { fingerprint, clock_us }
//! coord  →                             (Reject + close on fingerprint mismatch)
//! loop:
//!   worker → LeaseRequest
//!   coord  → Lease { lease, span_id, shard } | Idle { retry_ms } | Shutdown
//!   worker → Heartbeat { lease }        (from a side thread, any time)
//!   worker → ShardDone { lease, shard, records, stats, events }
//! ```
//!
//! Protocol v2 carries trace context end to end: the coordinator mints
//! a `trace_id` in the `JobSpec`, hands a per-shard `span_id` with each
//! lease, and workers ship their local trace events (timestamps on the
//! worker clock; `clock_us` from `Ready` lets the coordinator re-base
//! them) back inside `ShardDone`.
//!
//! Protocol v3 adds `JobDone`: a coordinator that pools warm workers
//! across jobs (the `clado serve` daemon) ends one job without ending
//! the connection — the worker returns to awaiting the next `Job`
//! instead of exiting. `Shutdown` still means "disconnect and exit".
//!
//! Every decode failure is a typed [`FrameError`]; unknown kinds, short
//! payloads, trailing bytes, and out-of-range enum tags are all rejected
//! without panicking.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::wire::{put_bytes, put_u16, put_u32, put_u64, Reader};
use clado_core::{ProbeId, ProbeRecord, ShardRunStats, ShardSpec};
use clado_quant::QuantScheme;
use clado_telemetry::{ManifestValue, TraceEvent};
use std::io::{Read, Write};

/// The measurement job a coordinator hands each worker: everything a
/// worker needs to reconstruct the coordinator's model, sensitivity set,
/// and probe grid locally.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Model identifier (a `clado` model kind, e.g. `resnet20`).
    pub model: String,
    /// Sensitivity-set size requested (clamped to the train split).
    pub set_size: u64,
    /// Sensitivity-set sampling seed.
    pub set_seed: u64,
    /// Probe batch size.
    pub batch_size: u64,
    /// Bit-width candidates, low to high.
    pub bits: Vec<u8>,
    /// Quantization scheme (see [`scheme_to_u8`]).
    pub scheme: u8,
    /// Whether workers reuse cached prefix activations.
    pub use_prefix_cache: bool,
    /// The coordinator's config fingerprint; workers echo their own in
    /// `Ready` and mismatches are rejected.
    pub fingerprint: u64,
    /// Trace correlation id minted by the coordinator (0 = tracing
    /// off). Workers tag their local trace events with it.
    pub trace_id: u64,
    /// Estimator tag for a budgeted sweep (`0` = exact measurement; see
    /// `clado_core::OmegaProvenance` for the tag space). Workers rebuild
    /// the same probe plan locally from this tag plus the budget and
    /// seed below.
    pub estimator: u8,
    /// Requested probe budget for an estimation job (`0` with a nonzero
    /// estimator means the default 25% of the full sweep; must be `0`
    /// for exact jobs).
    pub probe_budget: u64,
    /// Probe-selection seed for an estimation job (ignored for exact
    /// jobs).
    pub estimator_seed: u64,
}

/// One message of the protocol. See the module docs for the exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker greeting: protocol version and OS process id.
    Hello {
        /// The worker's [`crate::PROTOCOL_VERSION`].
        protocol: u16,
        /// The worker's OS process id (for operator-facing summaries).
        pid: u32,
    },
    /// The measurement job (coordinator → worker).
    Job(JobSpec),
    /// Worker's post-reconstruction report with its own fingerprint.
    Ready {
        /// Fingerprint of the worker's locally-built configuration.
        fingerprint: u64,
        /// The worker's trace clock (µs since its telemetry epoch) at
        /// send time; the coordinator derives a per-worker clock offset
        /// from it to re-base shipped trace events.
        clock_us: u64,
    },
    /// The coordinator refuses this worker and will close the connection.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Worker asks for a shard lease.
    LeaseRequest,
    /// A leased shard (coordinator → worker).
    Lease {
        /// Lease id to echo in `Heartbeat` and `ShardDone`.
        lease: u64,
        /// Trace span id for this shard's execution (0 = tracing off);
        /// the worker tags its shard span with it.
        span_id: u64,
        /// The shard to evaluate.
        shard: ShardSpec,
    },
    /// Nothing to lease right now; ask again after `retry_ms`.
    Idle {
        /// Suggested retry delay in milliseconds.
        retry_ms: u32,
    },
    /// The sweep is complete (or aborted); the worker should exit.
    Shutdown,
    /// Worker liveness signal while evaluating (any frame resets the
    /// coordinator's heartbeat deadline; this one exists to flow while
    /// the main worker thread is busy measuring).
    Heartbeat {
        /// The lease being worked on (0 when idle).
        lease: u64,
    },
    /// A completed shard: every probe record plus evaluation stats.
    ShardDone {
        /// The lease this shard was evaluated under.
        lease: u64,
        /// The shard that was evaluated.
        shard: ShardSpec,
        /// All probe records of the shard, in evaluation order.
        records: Vec<ProbeRecord>,
        /// Evaluation statistics for the shard.
        stats: ShardRunStats,
        /// The worker's trace events accumulated since the last
        /// `ShardDone` (empty when tracing is off). Timestamps are on
        /// the worker's clock; the coordinator re-bases them.
        events: Vec<TraceEvent>,
    },
    /// The current job is over but the connection is not (v3, pooled
    /// workers): the worker should await the next `Job` instead of
    /// exiting. Sent in reply to a `LeaseRequest` once every shard of
    /// the job is accounted for.
    JobDone,
}

const KIND_HELLO: u16 = 1;
const KIND_JOB: u16 = 2;
const KIND_READY: u16 = 3;
const KIND_REJECT: u16 = 4;
const KIND_LEASE_REQUEST: u16 = 5;
const KIND_LEASE: u16 = 6;
const KIND_IDLE: u16 = 7;
const KIND_SHUTDOWN: u16 = 8;
const KIND_HEARTBEAT: u16 = 9;
const KIND_SHARD_DONE: u16 = 10;
const KIND_JOB_DONE: u16 = 11;

/// Maps a [`QuantScheme`] to its wire byte.
pub fn scheme_to_u8(scheme: QuantScheme) -> u8 {
    match scheme {
        QuantScheme::PerTensorSymmetric => 0,
        QuantScheme::PerChannelSymmetric => 1,
        QuantScheme::PerChannelAffine => 2,
    }
}

/// Maps a wire byte back to its [`QuantScheme`].
///
/// # Errors
///
/// [`FrameError::Malformed`] on an unknown byte.
pub fn scheme_from_u8(byte: u8) -> Result<QuantScheme, FrameError> {
    match byte {
        0 => Ok(QuantScheme::PerTensorSymmetric),
        1 => Ok(QuantScheme::PerChannelSymmetric),
        2 => Ok(QuantScheme::PerChannelAffine),
        other => Err(FrameError::Malformed(format!(
            "unknown quantization scheme byte {other}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Domain encoders on top of the shared wire primitives.

fn put_shard(out: &mut Vec<u8>, s: ShardSpec) {
    match s {
        ShardSpec::Base => {
            out.push(0);
            put_u32(out, 0);
        }
        ShardSpec::Diag { layer } => {
            out.push(1);
            put_u32(out, layer);
        }
        ShardSpec::Pair { outer } => {
            out.push(2);
            put_u32(out, outer);
        }
    }
}

/// 26-byte probe-record layout, identical to the CLSJ on-disk record.
fn put_record(out: &mut Vec<u8>, rec: &ProbeRecord) {
    let (kind, a, b, c, d) = match rec.id {
        ProbeId::Base => (0u8, 0u32, 0u32, 0u32, 0u32),
        ProbeId::Diag { layer, bit } => (1, layer, bit, 0, 0),
        ProbeId::Pair {
            layer_i,
            bit_m,
            layer_j,
            bit_n,
        } => (2, layer_i, bit_m, layer_j, bit_n),
    };
    out.push(kind);
    for v in [a, b, c, d] {
        put_u32(out, v);
    }
    put_u64(out, rec.loss.to_bits());
    out.push(u8::from(rec.quarantined));
}

const ARG_STR: u8 = 0;
const ARG_INT: u8 = 1;
const ARG_FLOAT: u8 = 2;
const ARG_BOOL: u8 = 3;

fn put_event(out: &mut Vec<u8>, e: &TraceEvent) {
    put_bytes(out, e.name.as_bytes());
    out.push(e.ph);
    put_u64(out, e.ts_us);
    put_u64(out, e.dur_us);
    put_u32(out, e.tid);
    out.push(e.args.len().min(u8::MAX as usize) as u8);
    for (key, value) in e.args.iter().take(u8::MAX as usize) {
        put_bytes(out, key.as_bytes());
        match value {
            ManifestValue::Str(s) => {
                out.push(ARG_STR);
                put_bytes(out, s.as_bytes());
            }
            ManifestValue::Int(i) => {
                out.push(ARG_INT);
                put_u64(out, *i as u64);
            }
            ManifestValue::Float(f) => {
                out.push(ARG_FLOAT);
                put_u64(out, f.to_bits());
            }
            ManifestValue::Bool(b) => {
                out.push(ARG_BOOL);
                out.push(u8::from(*b));
            }
        }
    }
}

fn put_stats(out: &mut Vec<u8>, s: &ShardRunStats) {
    for v in [
        s.full_evals,
        s.cache_hits,
        s.cache_builds,
        s.retried,
        s.quarantined,
        s.seconds.to_bits(),
    ] {
        put_u64(out, v);
    }
}

// ---------------------------------------------------------------------
// Domain decoders on top of [`Reader`] — every read is bounds-checked
// and typed.

fn read_shard(c: &mut Reader<'_>, what: &str) -> Result<ShardSpec, FrameError> {
    let tag = c.u8(what)?;
    let arg = c.u32(what)?;
    match tag {
        0 => Ok(ShardSpec::Base),
        1 => Ok(ShardSpec::Diag { layer: arg }),
        2 => Ok(ShardSpec::Pair { outer: arg }),
        other => Err(FrameError::Malformed(format!(
            "{what}: shard tag {other} out of range"
        ))),
    }
}

fn read_record(c: &mut Reader<'_>) -> Result<ProbeRecord, FrameError> {
    let kind = c.u8("record kind")?;
    let a = c.u32("record field")?;
    let b = c.u32("record field")?;
    let cc = c.u32("record field")?;
    let d = c.u32("record field")?;
    let id = match kind {
        0 => ProbeId::Base,
        1 => ProbeId::Diag { layer: a, bit: b },
        2 => ProbeId::Pair {
            layer_i: a,
            bit_m: b,
            layer_j: cc,
            bit_n: d,
        },
        other => {
            return Err(FrameError::Malformed(format!(
                "record kind {other} out of range"
            )))
        }
    };
    let loss = f64::from_bits(c.u64("record loss")?);
    let quarantined = c.bool("record quarantine flag")?;
    Ok(ProbeRecord {
        id,
        loss,
        quarantined,
    })
}

fn read_event(c: &mut Reader<'_>) -> Result<TraceEvent, FrameError> {
    let name = c.string("event.name")?;
    let ph = c.u8("event.ph")?;
    if ph != clado_telemetry::PH_COMPLETE && ph != clado_telemetry::PH_INSTANT {
        return Err(FrameError::Malformed(format!("event.ph {ph} out of range")));
    }
    let ts_us = c.u64("event.ts_us")?;
    let dur_us = c.u64("event.dur_us")?;
    let tid = c.u32("event.tid")?;
    let n_args = c.u8("event.arg_count")? as usize;
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        let key = c.string("event.arg_key")?;
        let value = match c.u8("event.arg_tag")? {
            ARG_STR => ManifestValue::Str(c.string("event.arg_str")?),
            ARG_INT => ManifestValue::Int(c.u64("event.arg_int")? as i64),
            ARG_FLOAT => ManifestValue::Float(f64::from_bits(c.u64("event.arg_float")?)),
            ARG_BOOL => ManifestValue::Bool(c.bool("event.arg_bool")?),
            other => {
                return Err(FrameError::Malformed(format!(
                    "event arg tag {other} out of range"
                )))
            }
        };
        args.push((key, value));
    }
    Ok(TraceEvent {
        name,
        ph,
        ts_us,
        dur_us,
        pid: 0, // stamped by the coordinator on ingest
        tid,
        args,
    })
}

fn read_stats(c: &mut Reader<'_>) -> Result<ShardRunStats, FrameError> {
    Ok(ShardRunStats {
        full_evals: c.u64("stats.full_evals")?,
        cache_hits: c.u64("stats.cache_hits")?,
        cache_builds: c.u64("stats.cache_builds")?,
        retried: c.u64("stats.retried")?,
        quarantined: c.u64("stats.quarantined")?,
        seconds: f64::from_bits(c.u64("stats.seconds")?),
    })
}

impl Message {
    /// The frame kind of this message.
    pub fn kind(&self) -> u16 {
        match self {
            Self::Hello { .. } => KIND_HELLO,
            Self::Job(_) => KIND_JOB,
            Self::Ready { .. } => KIND_READY,
            Self::Reject { .. } => KIND_REJECT,
            Self::LeaseRequest => KIND_LEASE_REQUEST,
            Self::Lease { .. } => KIND_LEASE,
            Self::Idle { .. } => KIND_IDLE,
            Self::Shutdown => KIND_SHUTDOWN,
            Self::Heartbeat { .. } => KIND_HEARTBEAT,
            Self::ShardDone { .. } => KIND_SHARD_DONE,
            Self::JobDone => KIND_JOB_DONE,
        }
    }

    /// Encodes the message payload (the frame layer adds the envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Hello { protocol, pid } => {
                put_u16(&mut out, *protocol);
                put_u32(&mut out, *pid);
            }
            Self::Job(job) => {
                put_bytes(&mut out, job.model.as_bytes());
                put_u64(&mut out, job.set_size);
                put_u64(&mut out, job.set_seed);
                put_u64(&mut out, job.batch_size);
                put_bytes(&mut out, &job.bits);
                out.push(job.scheme);
                out.push(u8::from(job.use_prefix_cache));
                put_u64(&mut out, job.fingerprint);
                put_u64(&mut out, job.trace_id);
                out.push(job.estimator);
                put_u64(&mut out, job.probe_budget);
                put_u64(&mut out, job.estimator_seed);
            }
            Self::Ready {
                fingerprint,
                clock_us,
            } => {
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *clock_us);
            }
            Self::Reject { reason } => put_bytes(&mut out, reason.as_bytes()),
            Self::LeaseRequest | Self::Shutdown | Self::JobDone => {}
            Self::Lease {
                lease,
                span_id,
                shard,
            } => {
                put_u64(&mut out, *lease);
                put_u64(&mut out, *span_id);
                put_shard(&mut out, *shard);
            }
            Self::Idle { retry_ms } => put_u32(&mut out, *retry_ms),
            Self::Heartbeat { lease } => put_u64(&mut out, *lease),
            Self::ShardDone {
                lease,
                shard,
                records,
                stats,
                events,
            } => {
                put_u64(&mut out, *lease);
                put_shard(&mut out, *shard);
                put_u32(&mut out, records.len() as u32);
                for rec in records {
                    put_record(&mut out, rec);
                }
                put_stats(&mut out, stats);
                put_u32(&mut out, events.len() as u32);
                for e in events {
                    put_event(&mut out, e);
                }
            }
        }
        out
    }

    /// Decodes a frame payload of the given kind.
    ///
    /// # Errors
    ///
    /// [`FrameError::UnknownKind`] for an unrecognized kind;
    /// [`FrameError::Malformed`] for any payload that is short, has
    /// trailing bytes, or carries out-of-range tags.
    pub fn decode(kind: u16, payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Reader::new(payload);
        let msg = match kind {
            KIND_HELLO => Self::Hello {
                protocol: c.u16("hello.protocol")?,
                pid: c.u32("hello.pid")?,
            },
            KIND_JOB => Self::Job(JobSpec {
                model: c.string("job.model")?,
                set_size: c.u64("job.set_size")?,
                set_seed: c.u64("job.set_seed")?,
                batch_size: c.u64("job.batch_size")?,
                bits: c.bytes("job.bits")?.to_vec(),
                scheme: c.u8("job.scheme")?,
                use_prefix_cache: c.bool("job.use_prefix_cache")?,
                fingerprint: c.u64("job.fingerprint")?,
                trace_id: c.u64("job.trace_id")?,
                estimator: c.u8("job.estimator")?,
                probe_budget: c.u64("job.probe_budget")?,
                estimator_seed: c.u64("job.estimator_seed")?,
            }),
            KIND_READY => Self::Ready {
                fingerprint: c.u64("ready.fingerprint")?,
                clock_us: c.u64("ready.clock_us")?,
            },
            KIND_REJECT => Self::Reject {
                reason: c.string("reject.reason")?,
            },
            KIND_LEASE_REQUEST => Self::LeaseRequest,
            KIND_LEASE => Self::Lease {
                lease: c.u64("lease.id")?,
                span_id: c.u64("lease.span_id")?,
                shard: read_shard(&mut c, "lease.shard")?,
            },
            KIND_IDLE => Self::Idle {
                retry_ms: c.u32("idle.retry_ms")?,
            },
            KIND_SHUTDOWN => Self::Shutdown,
            KIND_HEARTBEAT => Self::Heartbeat {
                lease: c.u64("heartbeat.lease")?,
            },
            KIND_SHARD_DONE => {
                let lease = c.u64("done.lease")?;
                let shard = read_shard(&mut c, "done.shard")?;
                let count = c.u32("done.record_count")? as usize;
                // 26 bytes per record: an absurd count is caught here
                // rather than via a giant allocation.
                if count > payload.len() {
                    return Err(FrameError::Malformed(format!(
                        "done.record_count {count} exceeds payload size"
                    )));
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(read_record(&mut c)?);
                }
                let stats = read_stats(&mut c)?;
                let event_count = c.u32("done.event_count")? as usize;
                // Each event is at least ~30 bytes; reject absurd
                // counts before allocating.
                if event_count > payload.len() {
                    return Err(FrameError::Malformed(format!(
                        "done.event_count {event_count} exceeds payload size"
                    )));
                }
                let mut events = Vec::with_capacity(event_count);
                for _ in 0..event_count {
                    events.push(read_event(&mut c)?);
                }
                Self::ShardDone {
                    lease,
                    shard,
                    records,
                    stats,
                    events,
                }
            }
            KIND_JOB_DONE => Self::JobDone,
            other => return Err(FrameError::UnknownKind(other)),
        };
        c.finish("message")?;
        Ok(msg)
    }
}

/// Sends one message as a frame.
pub fn send(w: &mut impl Write, msg: &Message) -> Result<(), FrameError> {
    write_frame(w, msg.kind(), &msg.encode())
}

/// Receives and decodes one message.
pub fn recv(r: &mut impl Read) -> Result<Message, FrameError> {
    let (kind, payload) = read_frame(r)?;
    Message::decode(kind, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        Message::decode(msg.kind(), &msg.encode()).expect("decode")
    }

    #[test]
    fn every_message_kind_round_trips() {
        let msgs = vec![
            Message::Hello {
                protocol: 1,
                pid: 4242,
            },
            Message::Job(JobSpec {
                model: "resnet20".into(),
                set_size: 64,
                set_seed: 7,
                batch_size: 64,
                bits: vec![2, 4, 8],
                scheme: 0,
                use_prefix_cache: true,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                trace_id: 0x1234_5678_9ABC_DEF0,
                estimator: 3,
                probe_budget: 250,
                estimator_seed: 0xE571,
            }),
            Message::Ready {
                fingerprint: u64::MAX,
                clock_us: 123_456,
            },
            Message::Reject {
                reason: "config fingerprint mismatch".into(),
            },
            Message::LeaseRequest,
            Message::Lease {
                lease: 3,
                span_id: 77,
                shard: ShardSpec::Pair { outer: 11 },
            },
            Message::Idle { retry_ms: 50 },
            Message::Shutdown,
            Message::JobDone,
            Message::Heartbeat { lease: 9 },
            Message::ShardDone {
                lease: 3,
                shard: ShardSpec::Diag { layer: 2 },
                records: vec![
                    ProbeRecord {
                        id: ProbeId::Diag { layer: 2, bit: 0 },
                        loss: 1.25,
                        quarantined: false,
                    },
                    ProbeRecord {
                        id: ProbeId::Diag { layer: 2, bit: 1 },
                        loss: f64::NAN,
                        quarantined: true,
                    },
                ],
                stats: ShardRunStats {
                    full_evals: 1,
                    cache_hits: 1,
                    cache_builds: 1,
                    retried: 1,
                    quarantined: 1,
                    seconds: 0.25,
                },
                events: vec![
                    TraceEvent {
                        name: "dist.work.shard".into(),
                        ph: clado_telemetry::PH_COMPLETE,
                        ts_us: 1000,
                        dur_us: 250,
                        pid: 0,
                        tid: 2,
                        args: vec![
                            ("lease".into(), ManifestValue::Int(3)),
                            ("label".into(), ManifestValue::Str("diag λ".into())),
                            ("cached".into(), ManifestValue::Bool(true)),
                            ("loss".into(), ManifestValue::Float(-0.5)),
                        ],
                    },
                    TraceEvent {
                        name: "tick".into(),
                        ph: clado_telemetry::PH_INSTANT,
                        ts_us: 1100,
                        dur_us: 0,
                        pid: 0,
                        tid: 2,
                        args: Vec::new(),
                    },
                ],
            },
        ];
        for msg in &msgs {
            let back = round_trip(msg);
            // NaN losses make direct equality unusable; compare the
            // re-encoded bytes, which are bit-exact.
            assert_eq!(back.encode(), msg.encode(), "{msg:?}");
            assert_eq!(back.kind(), msg.kind());
        }
    }

    #[test]
    fn unknown_kind_is_typed() {
        let err = Message::decode(999, &[]).unwrap_err();
        assert!(matches!(err, FrameError::UnknownKind(999)), "{err}");
    }

    #[test]
    fn short_and_trailing_payloads_are_malformed() {
        let good = Message::Heartbeat { lease: 1 }.encode();
        let err = Message::decode(KIND_HEARTBEAT, &good[..4]).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        let mut long = good.clone();
        long.push(0);
        let err = Message::decode(KIND_HEARTBEAT, &long).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn out_of_range_tags_are_malformed() {
        // Shard tag 3 in a Lease.
        let mut lease = Vec::new();
        put_u64(&mut lease, 1);
        lease.push(3);
        put_u32(&mut lease, 0);
        let err = Message::decode(KIND_LEASE, &lease).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        // Boolean byte 2 in a Job.
        let mut job = Message::Job(JobSpec {
            model: "m".into(),
            set_size: 1,
            set_seed: 1,
            batch_size: 1,
            bits: vec![8],
            scheme: 0,
            use_prefix_cache: false,
            fingerprint: 0,
            trace_id: 0,
            estimator: 0,
            probe_budget: 0,
            estimator_seed: 0,
        })
        .encode();
        // The flag sits before fingerprint (8), trace_id (8), estimator
        // (1), probe_budget (8), and estimator_seed (8).
        let flag_at = job.len() - 34;
        job[flag_at] = 2;
        let err = Message::decode(KIND_JOB, &job).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn out_of_range_event_fields_are_malformed() {
        let base = Message::ShardDone {
            lease: 1,
            shard: ShardSpec::Base,
            records: Vec::new(),
            stats: ShardRunStats::default(),
            events: vec![TraceEvent {
                name: "e".into(),
                ph: clado_telemetry::PH_INSTANT,
                ts_us: 0,
                dur_us: 0,
                pid: 0,
                tid: 0,
                args: vec![("k".into(), ManifestValue::Bool(false))],
            }],
        };
        let good = base.encode();
        assert!(Message::decode(KIND_SHARD_DONE, &good).is_ok());
        // Corrupt the phase byte (follows the 1-byte name "e" with its
        // 4-byte length prefix).
        let name_at = good
            .windows(5)
            .position(|w| w == [1, 0, 0, 0, b'e'])
            .expect("event name");
        let mut bad_ph = good.clone();
        bad_ph[name_at + 5] = b'Z';
        let err = Message::decode(KIND_SHARD_DONE, &bad_ph).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        // Corrupt the trailing arg tag (last two bytes are tag + bool).
        let mut bad_tag = good.clone();
        let tag_at = good.len() - 2;
        bad_tag[tag_at] = 9;
        let err = Message::decode(KIND_SHARD_DONE, &bad_tag).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        // Absurd event counts are rejected without allocation.
        let mut huge = Message::ShardDone {
            lease: 1,
            shard: ShardSpec::Base,
            records: Vec::new(),
            stats: ShardRunStats::default(),
            events: Vec::new(),
        }
        .encode();
        let count_at = huge.len() - 4;
        huge[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Message::decode(KIND_SHARD_DONE, &huge).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn absurd_record_counts_are_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_shard(&mut payload, ShardSpec::Base);
        put_u32(&mut payload, u32::MAX);
        let err = Message::decode(KIND_SHARD_DONE, &payload).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn scheme_bytes_round_trip_and_reject_unknowns() {
        for scheme in [
            QuantScheme::PerTensorSymmetric,
            QuantScheme::PerChannelSymmetric,
            QuantScheme::PerChannelAffine,
        ] {
            assert_eq!(scheme_from_u8(scheme_to_u8(scheme)).unwrap(), scheme);
        }
        assert!(scheme_from_u8(3).is_err());
    }
}
