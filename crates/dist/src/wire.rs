//! Shared little-endian wire-encoding primitives.
//!
//! The coordinator/worker messages ([`crate::protocol`]) and the serve
//! daemon's request/response frames (`clado-serve`) ride the same
//! [`crate::frame`] envelope and encode their payloads with these
//! helpers: length-prefixed byte strings, fixed-width integers, and a
//! bounds-checked [`Reader`] whose every failure is a typed
//! [`FrameError::Malformed`] — decoding untrusted bytes never panics.

use crate::frame::FrameError;

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (NaN-safe round trips).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a boolean as a single `0`/`1` byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32` length prefix followed by the raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// A bounds-checked payload reader. Every accessor names what it was
/// reading so a short payload yields a targeted [`FrameError::Malformed`].
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Total length of the payload being decoded.
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Malformed(format!(
                "truncated payload reading {what}"
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload.
    pub fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload.
    pub fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload.
    pub fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload.
    pub fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload.
    pub fn f64(&mut self, what: &str) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a strict boolean byte.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on a short payload or a byte other
    /// than `0`/`1`.
    pub fn bool(&mut self, what: &str) -> Result<bool, FrameError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FrameError::Malformed(format!(
                "{what}: boolean byte {other} out of range"
            ))),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] when the declared length overruns the
    /// payload.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], FrameError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on overrun or invalid UTF-8.
    pub fn string(&mut self, what: &str) -> Result<String, FrameError> {
        String::from_utf8(self.bytes(what)?.to_vec())
            .map_err(|_| FrameError::Malformed(format!("{what}: invalid UTF-8")))
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] when trailing bytes remain.
    pub fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u16(&mut out, 7);
        put_u32(&mut out, 42);
        put_u64(&mut out, u64::MAX);
        put_f64(&mut out, f64::NAN);
        put_bool(&mut out, true);
        put_bytes(&mut out, b"abc");
        let mut r = Reader::new(&out);
        assert_eq!(r.u16("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 42);
        assert_eq!(r.u64("c").unwrap(), u64::MAX);
        assert_eq!(r.f64("d").unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.bool("e").unwrap());
        assert_eq!(r.bytes("f").unwrap(), b"abc");
        r.finish("msg").unwrap();
    }

    #[test]
    fn short_reads_and_trailing_bytes_are_malformed() {
        let mut out = Vec::new();
        put_u32(&mut out, 9);
        let mut r = Reader::new(&out);
        assert!(r.u64("needs 8").is_err());
        let mut r = Reader::new(&out);
        r.u16("first half").unwrap();
        assert!(matches!(
            r.finish("msg"),
            Err(FrameError::Malformed(m)) if m.contains("trailing")
        ));
        // A length prefix that overruns the payload is typed, too.
        let mut over = Vec::new();
        put_u32(&mut over, 100);
        assert!(Reader::new(&over).bytes("blob").is_err());
    }

    #[test]
    fn non_boolean_bytes_are_rejected() {
        let mut r = Reader::new(&[2u8]);
        assert!(matches!(r.bool("flag"), Err(FrameError::Malformed(_))));
    }
}
