//! # clado-dist
//!
//! Distributed sensitivity sweeps for CLADO: a coordinator/worker
//! subsystem that shards the probe grid of
//! [`clado_core::measure_sensitivities`] across worker *processes* over
//! TCP, built entirely on `std::net`.
//!
//! * **Framing** ([`frame`]): length-prefixed, checksummed binary
//!   frames; every malformed input maps to a typed [`FrameError`].
//! * **Protocol** ([`protocol`]): a versioned handshake carrying the
//!   CLSJ config fingerprint (mismatched workers are rejected), then a
//!   worker-driven lease loop.
//! * **Coordinator** ([`Coordinator`]): leases shards with heartbeat
//!   deadlines, evicts and requeues shards from dead or hung workers,
//!   journals completions through the atomic CLSJ commit path (a killed
//!   coordinator resumes losslessly), and assembles Ω in canonical
//!   probe order — bitwise identical to a single-process run.
//! * **Worker** ([`run_worker`]): reconstructs the job from its spec,
//!   evaluates leased shards with [`clado_core::ShardContext`], and
//!   heartbeats from a side thread while measuring.
//!
//! ## Example (in-process loopback)
//!
//! ```no_run
//! use clado_core::ShardContext;
//! use clado_dist::{Coordinator, CoordinatorOptions, JobSpec, WorkerOptions};
//!
//! # fn demo(ctx: ShardContext, job: JobSpec) -> Result<(), clado_dist::DistError> {
//! let coordinator = Coordinator::bind("127.0.0.1:0", ctx, job, CoordinatorOptions::default())?;
//! let addr = coordinator.local_addr().to_string();
//! std::thread::spawn(move || {
//!     clado_dist::run_worker(
//!         &addr,
//!         |job| panic!("reconstruct model for {job:?}"),
//!         &WorkerOptions::default(),
//!     )
//! });
//! let outcome = coordinator.run()?;
//! println!("Ω assembled from {} workers", outcome.workers.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod coordinator;
mod error;
pub mod frame;
pub mod protocol;
pub mod wire;
mod worker;

pub use coordinator::{Coordinator, CoordinatorOptions, DistOutcome, WorkerSummary};
pub use error::DistError;
pub use frame::{FrameError, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use protocol::{scheme_from_u8, scheme_to_u8, JobSpec, Message};
pub use worker::{run_pool_worker, run_worker, WorkerOptions, WorkerReport};
