//! Unified observability for the CLADO pipeline: hierarchical wall-time
//! spans, counters and gauges, rate-limited progress reporting, and
//! machine-readable run manifests.
//!
//! # Design
//!
//! Everything hangs off a [`Telemetry`] handle — a cheap `Clone` wrapper
//! around an optional shared registry. A *disabled* handle
//! ([`Telemetry::disabled`], also the `Default`) turns every operation
//! into a no-op, so library code can instrument unconditionally and pay
//! nothing when observability is off. Crucially, telemetry only ever
//! *reads clocks and counts integers*: it never participates in the
//! numeric computation, so measured results are bitwise identical with
//! telemetry on or off (test-enforced in `clado-core`).
//!
//! **Spans** are RAII guards keyed by *absolute* dotted paths
//! (`measure.pairwise.suffix_eval`). The hierarchy is derived purely from
//! the path text when a report is rendered, never from runtime nesting
//! state — so a span recorded on a `replica_map` worker thread lands
//! under the same subtree as its logical parent on the main thread.
//! Span completions are buffered in a thread-local list and merged into
//! the shared registry only when the thread's outermost span closes,
//! keeping the hot path free of lock contention. A consequence of
//! path-based hierarchy: children recorded on worker threads accumulate
//! *CPU* time and may sum to more than their parent's wall time; derived
//! self-times are clamped at zero.
//!
//! **Counters** are shared `AtomicU64`s fetched once by name
//! ([`Telemetry::counter`]) and bumped with relaxed ordering from any
//! thread. **Gauges** record one `f64` measurement by name.
//!
//! **Progress** ([`Telemetry::progress`]) is a thread-safe item ticker
//! that prints `done/total`, throughput, and ETA lines to stderr at most
//! twice a second, regardless of how many workers tick it.
//!
//! **Manifests** ([`Telemetry::manifest`]) serialize the whole registry —
//! span tree with total/self times, counters, gauges, caller-supplied
//! config, and version/git info — as JSON with a stable schema
//! (`clado-telemetry-manifest/v1`; see DESIGN.md §Telemetry).
//!
//! **Fail points** ([`faultinject`], [`faultpoint!`]) are deterministic
//! fault-injection hooks compiled to no-ops in release builds; the
//! fault-tolerance test suites use them to kill workers, abort commits,
//! and poison losses at reproducible points of a run.

pub mod faultinject;
mod json;
mod manifest;
mod progress;
mod trace;

pub use json::{parse as parse_json, Json};
pub use manifest::ManifestValue;
pub use progress::Progress;
pub use trace::{Hist, HistSnapshot, SeriesPoint, TraceEvent, PH_COMPLETE, PH_INSTANT};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trace::Histogram;

/// Hard cap on buffered trace events per registry; beyond it events are
/// dropped (and counted) rather than exhausting memory.
const MAX_TRACE_EVENTS: usize = 1 << 20;
/// Thread-local trace buffer flush threshold (events), so long-lived
/// outer spans do not pin unbounded memory.
const TRACE_FLUSH_THRESHOLD: usize = 1024;

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span closed.
    pub count: u64,
    /// Total wall time across all closures.
    pub total: Duration,
}

pub(crate) struct Registry {
    pub(crate) start: Instant,
    pub(crate) spans: Mutex<HashMap<String, SpanStat>>,
    pub(crate) counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<HashMap<String, f64>>,
    pub(crate) progress_enabled: AtomicBool,
    pub(crate) trace_enabled: AtomicBool,
    pub(crate) trace_id: AtomicU64,
    pub(crate) trace_dropped: AtomicU64,
    pub(crate) trace: Mutex<Vec<TraceEvent>>,
    pub(crate) process_labels: Mutex<Vec<(u32, String)>>,
    pub(crate) histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    pub(crate) series: Mutex<HashMap<String, Vec<SeriesPoint>>>,
}

/// Small dense per-process thread ids for trace events (the OS tid is
/// neither stable nor compact).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u32 {
    THREAD_TID.with(|t| *t)
}

/// Handle to a telemetry registry; `Clone` is cheap and all clones share
/// the same registry. The `Default` handle is disabled (all no-ops).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// Creates an enabled registry; the manifest's wall clock starts now.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry {
                start: Instant::now(),
                spans: Mutex::new(HashMap::new()),
                counters: Mutex::new(HashMap::new()),
                gauges: Mutex::new(HashMap::new()),
                progress_enabled: AtomicBool::new(false),
                trace_enabled: AtomicBool::new(false),
                trace_id: AtomicU64::new(0),
                trace_dropped: AtomicU64::new(0),
                trace: Mutex::new(Vec::new()),
                process_labels: Mutex::new(Vec::new()),
                histograms: Mutex::new(HashMap::new()),
                series: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// A handle on which every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall time since the registry was created (zero when disabled).
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|r| r.start.elapsed())
            .unwrap_or_default()
    }

    /// Opens a RAII span guard for the absolute dotted `path`; the
    /// elapsed wall time is recorded when the guard drops. When tracing
    /// is enabled, the drop also emits a complete trace event.
    pub fn span(&self, path: &str) -> Span {
        self.span_inner(path, Vec::new(), None)
    }

    /// Like [`Telemetry::span`], but the trace event (if tracing is on)
    /// carries `args` annotations.
    pub fn span_with_args(&self, path: &str, args: Vec<(String, ManifestValue)>) -> Span {
        self.span_inner(path, args, None)
    }

    /// Like [`Telemetry::span`], but the elapsed µs are additionally
    /// recorded into `hist` — one clock read feeds both.
    pub fn span_timed(&self, path: &str, hist: &Hist) -> Span {
        self.span_inner(path, Vec::new(), hist.cell.clone())
    }

    fn span_inner(
        &self,
        path: &str,
        args: Vec<(String, ManifestValue)>,
        hist: Option<Arc<Histogram>>,
    ) -> Span {
        match &self.inner {
            Some(reg) => {
                LOCAL.with(|l| l.borrow_mut().depth += 1);
                Span {
                    live: Some(SpanLive {
                        registry: Arc::clone(reg),
                        path: path.to_string(),
                        start: Instant::now(),
                        args,
                        hist,
                    }),
                }
            }
            None => Span { live: None },
        }
    }

    /// Fetches (creating on first use) the named counter handle. Keep the
    /// handle and call [`Counter::add`] in hot loops; the name lookup
    /// locks, the adds do not.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|reg| {
                let mut counters = reg.counters.lock().expect("telemetry lock");
                Arc::clone(
                    counters
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(AtomicU64::new(0))),
                )
            }),
        }
    }

    /// One-shot convenience: adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if self.inner.is_some() {
            self.counter(name).add(n);
        }
    }

    /// Records a point-in-time `f64` measurement under `name`
    /// (overwriting any previous value).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(reg) = &self.inner {
            reg.gauges
                .lock()
                .expect("telemetry lock")
                .insert(name.to_string(), value);
        }
    }

    /// Turns stderr progress lines on or off for this registry.
    pub fn set_progress_enabled(&self, on: bool) {
        if let Some(reg) = &self.inner {
            reg.progress_enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Creates a progress reporter for `total` items under `label`.
    /// Silent unless the registry exists and progress is enabled.
    pub fn progress(&self, label: &str, total: u64) -> Progress {
        let on = self
            .inner
            .as_ref()
            .is_some_and(|reg| reg.progress_enabled.load(Ordering::Relaxed));
        Progress::new(label, total, on)
    }

    /// Turns trace-event recording on or off. Off (the default) costs
    /// one relaxed atomic load per span close.
    pub fn set_trace_enabled(&self, on: bool) {
        if let Some(reg) = &self.inner {
            reg.trace_enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Whether trace events are being recorded.
    pub fn trace_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|reg| reg.trace_enabled.load(Ordering::Relaxed))
    }

    /// Sets the 64-bit trace correlation id (minted by the coordinator,
    /// propagated to workers over the wire).
    pub fn set_trace_id(&self, id: u64) {
        if let Some(reg) = &self.inner {
            reg.trace_id.store(id, Ordering::Relaxed);
        }
    }

    /// The trace correlation id (0 = unset).
    pub fn trace_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|reg| reg.trace_id.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Microseconds elapsed since the registry was created — the trace
    /// epoch used for `ts_us` and cross-process clock correlation.
    pub fn now_us(&self) -> u64 {
        self.elapsed().as_micros() as u64
    }

    /// Emits an instant trace event (no-op unless tracing is enabled).
    pub fn instant(&self, name: &str, args: &[(&str, ManifestValue)]) {
        let Some(reg) = &self.inner else { return };
        if !reg.trace_enabled.load(Ordering::Relaxed) {
            return;
        }
        let event = TraceEvent {
            name: name.to_string(),
            ph: PH_INSTANT,
            ts_us: reg.start.elapsed().as_micros() as u64,
            dur_us: 0,
            pid: 0,
            tid: current_tid(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        buffer_trace_event(reg, event);
    }

    /// Names a remote process in the trace output (e.g. `worker-3`).
    pub fn set_process_label(&self, pid: u32, label: &str) {
        if let Some(reg) = &self.inner {
            let mut labels = reg.process_labels.lock().expect("telemetry lock");
            if let Some(slot) = labels.iter_mut().find(|(p, _)| *p == pid) {
                slot.1 = label.to_string();
            } else {
                labels.push((pid, label.to_string()));
            }
        }
    }

    /// Fetches (creating on first use) the named histogram handle.
    /// Keep the handle and call [`Hist::record_us`] in hot loops.
    pub fn histogram(&self, name: &str) -> Hist {
        Hist {
            cell: self.inner.as_ref().map(|reg| {
                let mut hists = reg.histograms.lock().expect("telemetry lock");
                Arc::clone(
                    hists
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new())),
                )
            }),
        }
    }

    /// Percentile snapshots of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistSnapshot)> {
        let mut out: Vec<(String, HistSnapshot)> = match &self.inner {
            Some(reg) => reg
                .histograms
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            None => Vec::new(),
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Appends a `(now, value, label)` point to the named series and,
    /// when tracing is on, mirrors it as an instant trace event.
    pub fn series_push(&self, name: &str, value: f64, label: &str) {
        let Some(reg) = &self.inner else { return };
        let t_us = reg.start.elapsed().as_micros() as u64;
        reg.series
            .lock()
            .expect("telemetry lock")
            .entry(name.to_string())
            .or_default()
            .push(SeriesPoint {
                t_us,
                value,
                label: label.to_string(),
            });
        if reg.trace_enabled.load(Ordering::Relaxed) {
            buffer_trace_event(
                reg,
                TraceEvent {
                    name: name.to_string(),
                    ph: PH_INSTANT,
                    ts_us: t_us,
                    dur_us: 0,
                    pid: 0,
                    tid: current_tid(),
                    args: vec![
                        ("value".to_string(), ManifestValue::Float(value)),
                        ("label".to_string(), ManifestValue::Str(label.to_string())),
                    ],
                },
            );
        }
    }

    /// All series, sorted by name, points in insertion order.
    pub fn series(&self) -> Vec<(String, Vec<SeriesPoint>)> {
        let mut out: Vec<(String, Vec<SeriesPoint>)> = match &self.inner {
            Some(reg) => reg
                .series
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            None => Vec::new(),
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drains the buffered trace events (for shipping over the wire).
    /// Only events already flushed from their threads are visible —
    /// callers must ensure the relevant spans have closed.
    pub fn take_trace_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(reg) => std::mem::take(&mut *reg.trace.lock().expect("telemetry lock")),
            None => Vec::new(),
        }
    }

    /// Merges events from another process into this registry's trace
    /// buffer (the caller has already stamped pid and re-based ts).
    pub fn ingest_trace_events(&self, events: Vec<TraceEvent>) {
        if let Some(reg) = &self.inner {
            let mut trace = reg.trace.lock().expect("telemetry lock");
            for e in events {
                if trace.len() >= MAX_TRACE_EVENTS {
                    reg.trace_dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    trace.push(e);
                }
            }
        }
    }

    /// Writes the buffered events as a Chrome Trace Format file
    /// (Perfetto / `chrome://tracing` loadable). Returns the number of
    /// events written.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let Some(reg) = &self.inner else { return Ok(0) };
        let events = reg.trace.lock().expect("telemetry lock").clone();
        let labels = reg.process_labels.lock().expect("telemetry lock").clone();
        let trace_id = reg.trace_id.load(Ordering::Relaxed);
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        trace::write_chrome_trace(&events, &labels, trace_id, std::process::id(), &mut file)?;
        use std::io::Write as _;
        file.flush()?;
        Ok(events.len())
    }

    /// Number of trace events dropped at the buffer cap.
    pub fn trace_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|reg| reg.trace_dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Reads the named counter (zero if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|reg| {
                reg.counters
                    .lock()
                    .expect("telemetry lock")
                    .get(name)
                    .map(|c| c.load(Ordering::Relaxed))
            })
            .unwrap_or(0)
    }

    /// Reads the named gauge, if it has been set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.as_ref().and_then(|reg| {
            reg.gauges
                .lock()
                .expect("telemetry lock")
                .get(name)
                .copied()
        })
    }

    /// Reads the aggregate stats for one span path, if it ever closed.
    ///
    /// Note: spans buffered on a thread whose outermost span is still
    /// open are not yet visible here.
    pub fn span_stats(&self, path: &str) -> Option<SpanStat> {
        self.inner
            .as_ref()
            .and_then(|reg| reg.spans.lock().expect("telemetry lock").get(path).copied())
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = match &self.inner {
            Some(reg) => reg
                .counters
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            None => Vec::new(),
        };
        out.sort();
        out
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = match &self.inner {
            Some(reg) => reg
                .gauges
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            None => Vec::new(),
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All span stats, sorted by path.
    pub fn spans(&self) -> Vec<(String, SpanStat)> {
        let mut out: Vec<(String, SpanStat)> = match &self.inner {
            Some(reg) => reg
                .spans
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            None => Vec::new(),
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fraction of wall time (since [`Telemetry::new`]) covered by
    /// top-level spans. `1.0` when disabled (nothing is unaccounted).
    pub fn span_coverage(&self) -> f64 {
        if !self.is_enabled() {
            return 1.0;
        }
        let wall = self.elapsed().as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        let roots: f64 = self
            .spans()
            .iter()
            .filter(|(path, _)| !path.contains('.'))
            .map(|(_, stat)| stat.total.as_secs_f64())
            .sum();
        (roots / wall).min(1.0)
    }

    /// Serializes the registry as a manifest JSON document.
    ///
    /// `command` names the operation; `config` carries run parameters
    /// (threads, model, seed, …). Schema: see DESIGN.md §Telemetry.
    pub fn manifest(&self, command: &str, config: &[(&str, ManifestValue)]) -> String {
        manifest::render(self, command, config)
    }

    /// Renders a human-readable summary table (span tree + counters).
    pub fn render_summary(&self) -> String {
        manifest::render_summary(self)
    }
}

/// The crate version baked into manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The git revision baked into manifests ("unknown" outside a checkout).
pub const GIT_HASH: &str = env!("CLADO_GIT_HASH");

struct SpanLive {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
    args: Vec<(String, ManifestValue)>,
    hist: Option<Arc<Histogram>>,
}

/// RAII guard returned by [`Telemetry::span`]; records elapsed wall time
/// into the registry when dropped.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    live: Option<SpanLive>,
}

struct LocalBuf {
    depth: usize,
    entries: Vec<(Arc<Registry>, String, Duration)>,
    trace: Vec<(Arc<Registry>, TraceEvent)>,
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf { depth: 0, entries: Vec::new(), trace: Vec::new() })
    };
}

/// Buffers one trace event thread-locally; flushes straight to the
/// registry when this thread has no open spans (nothing else would
/// trigger the flush), or when the local buffer hits its threshold.
fn buffer_trace_event(reg: &Arc<Registry>, event: TraceEvent) {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        buf.trace.push((Arc::clone(reg), event));
        if buf.depth == 0 || buf.trace.len() >= TRACE_FLUSH_THRESHOLD {
            let trace = std::mem::take(&mut buf.trace);
            flush_trace(trace);
        }
    });
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        if let Some(hist) = &live.hist {
            hist.record_us(elapsed.as_micros() as u64);
        }
        let traced = live.registry.trace_enabled.load(Ordering::Relaxed);
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            if traced {
                let ts_us = live
                    .start
                    .saturating_duration_since(live.registry.start)
                    .as_micros() as u64;
                buf.trace.push((
                    Arc::clone(&live.registry),
                    TraceEvent {
                        name: live.path.clone(),
                        ph: PH_COMPLETE,
                        ts_us,
                        dur_us: elapsed.as_micros() as u64,
                        pid: 0,
                        tid: current_tid(),
                        args: live.args,
                    },
                ));
            }
            buf.entries.push((live.registry, live.path, elapsed));
            buf.depth -= 1;
            if buf.depth == 0 {
                // Outermost span on this thread: merge the whole buffer
                // into the shared registry, one lock per registry.
                let entries = std::mem::take(&mut buf.entries);
                flush(entries);
                if !buf.trace.is_empty() {
                    let trace = std::mem::take(&mut buf.trace);
                    flush_trace(trace);
                }
            } else if buf.trace.len() >= TRACE_FLUSH_THRESHOLD {
                let trace = std::mem::take(&mut buf.trace);
                flush_trace(trace);
            }
        });
    }
}

/// Flushes this thread's buffered span completions and trace events
/// into their registries immediately, without waiting for the
/// outermost span to close. Used by long-lived loops (e.g. the dist
/// worker, which drains its trace buffer into every `ShardDone` while
/// its root span stays open).
pub fn flush_thread_local() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        if !buf.entries.is_empty() {
            let entries = std::mem::take(&mut buf.entries);
            flush(entries);
        }
        if !buf.trace.is_empty() {
            let trace = std::mem::take(&mut buf.trace);
            flush_trace(trace);
        }
    });
}

fn flush(mut entries: Vec<(Arc<Registry>, String, Duration)>) {
    entries.sort_by_key(|(reg, _, _)| Arc::as_ptr(reg) as usize);
    let mut i = 0;
    while i < entries.len() {
        let reg = Arc::clone(&entries[i].0);
        let mut spans = reg.spans.lock().expect("telemetry lock");
        while i < entries.len() && Arc::ptr_eq(&entries[i].0, &reg) {
            let (_, path, elapsed) = &entries[i];
            let stat = spans.entry(path.clone()).or_default();
            stat.count += 1;
            stat.total += *elapsed;
            i += 1;
        }
    }
}

fn flush_trace(events: Vec<(Arc<Registry>, TraceEvent)>) {
    let mut i = 0;
    while i < events.len() {
        let reg = Arc::clone(&events[i].0);
        let mut trace = reg.trace.lock().expect("telemetry lock");
        while i < events.len() && Arc::ptr_eq(&events[i].0, &reg) {
            if trace.len() >= MAX_TRACE_EVENTS {
                reg.trace_dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                trace.push(events[i].1.clone());
            }
            i += 1;
        }
    }
}

/// Shared handle to one named counter; adds are lock-free.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n` (relaxed; ordering never matters for reporting).
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (zero when disabled).
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Runs `f`, re-raising any panic with `context()` prepended to the
/// payload message so diagnostics can name the offending work item
/// (e.g. the `(layer, bit)` pair of a sensitivity probe).
///
/// `context` is only invoked on the panic path.
pub fn with_panic_context<R>(context: impl FnOnce() -> String, f: impl FnOnce() -> R) -> R {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => panic!("{}: {}", context(), panic_message(&*payload)),
    }
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        {
            let _s = t.span("root.child");
        }
        t.add("hits", 3);
        t.set_gauge("g", 1.5);
        assert!(!t.is_enabled());
        assert_eq!(t.counter_value("hits"), 0);
        assert_eq!(t.gauge_value("g"), None);
        assert!(t.spans().is_empty());
        assert_eq!(t.span_coverage(), 1.0);
        assert!(t.manifest("noop", &[]).contains("\"enabled\": false"));
    }

    #[test]
    fn spans_aggregate_count_and_time() {
        let t = Telemetry::new();
        for _ in 0..3 {
            let _s = t.span("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let stat = t.span_stats("work").expect("recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.total >= Duration::from_millis(6));
    }

    #[test]
    fn nested_spans_flush_when_outermost_closes() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("outer.inner");
            }
            // The inner span is buffered thread-locally until `outer`
            // closes; the registry must not see it yet.
            assert!(t.span_stats("outer.inner").is_none());
        }
        assert_eq!(t.span_stats("outer.inner").expect("flushed").count, 1);
        assert_eq!(t.span_stats("outer").expect("flushed").count, 1);
    }

    #[test]
    fn worker_thread_spans_merge_into_the_same_registry() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let _s = t.span("measure.pairwise.suffix_eval");
                    }
                });
            }
        });
        let stat = t
            .span_stats("measure.pairwise.suffix_eval")
            .expect("merged");
        assert_eq!(stat.count, 40);
    }

    #[test]
    fn counters_are_shared_and_thread_safe() {
        let t = Telemetry::new();
        let c = t.counter("evals");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(t.counter_value("evals"), 8000);
        assert_eq!(c.value(), 8000);
        // Fetching the same name again returns the same cell.
        t.counter("evals").add(2);
        assert_eq!(c.value(), 8002);
    }

    #[test]
    fn gauges_overwrite() {
        let t = Telemetry::new();
        t.set_gauge("overhead", 1.02);
        t.set_gauge("overhead", 1.01);
        assert_eq!(t.gauge_value("overhead"), Some(1.01));
        assert_eq!(t.gauges(), vec![("overhead".to_string(), 1.01)]);
    }

    #[test]
    fn span_coverage_tracks_root_spans() {
        let t = Telemetry::new();
        {
            let _s = t.span("phase_a");
            std::thread::sleep(Duration::from_millis(20));
        }
        {
            let _s = t.span("phase_b");
            std::thread::sleep(Duration::from_millis(20));
        }
        let coverage = t.span_coverage();
        assert!(coverage > 0.5, "coverage {coverage}");
        assert!(coverage <= 1.0);
    }

    #[test]
    fn with_panic_context_prepends_item_info() {
        let caught = std::panic::catch_unwind(|| {
            with_panic_context(
                || "probe (layer 3, bit 2)".to_string(),
                || panic!("boom {}", 7),
            )
        });
        let msg = panic_message(&*caught.expect_err("must panic"));
        assert_eq!(msg, "probe (layer 3, bit 2): boom 7");
    }

    #[test]
    fn with_panic_context_passes_results_through() {
        let v = with_panic_context(|| unreachable!(), || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn tracing_off_records_no_events() {
        let t = Telemetry::new();
        {
            let _s = t.span("work");
        }
        t.instant("tick", &[]);
        assert!(t.take_trace_events().is_empty());
        assert!(!t.trace_enabled());
    }

    #[test]
    fn spans_emit_complete_events_when_tracing_enabled() {
        let t = Telemetry::new();
        t.set_trace_enabled(true);
        t.set_trace_id(0xabc);
        {
            let _outer = t.span("outer");
            let _inner = t.span_with_args(
                "outer.inner",
                vec![("lease".to_string(), ManifestValue::Int(7))],
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        t.instant("solver.incumbent", &[("objective", 0.5f64.into())]);
        let events = t.take_trace_events();
        assert_eq!(events.len(), 3);
        let inner = events
            .iter()
            .find(|e| e.name == "outer.inner")
            .expect("inner event");
        assert_eq!(inner.ph, PH_COMPLETE);
        assert!(inner.dur_us >= 2_000, "dur {}", inner.dur_us);
        assert_eq!(
            inner.args,
            vec![("lease".to_string(), ManifestValue::Int(7))]
        );
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        // The inner span nests inside the outer one on the timeline.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us);
        let instant = events
            .iter()
            .find(|e| e.name == "solver.incumbent")
            .expect("instant");
        assert_eq!(instant.ph, PH_INSTANT);
        assert_eq!(t.trace_id(), 0xabc);
        // The buffer was drained.
        assert!(t.take_trace_events().is_empty());
    }

    #[test]
    fn span_timed_feeds_the_histogram() {
        let t = Telemetry::new();
        let h = t.histogram("probe.eval");
        for _ in 0..3 {
            let _s = t.span_timed("measure.probe", &h);
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = t.histograms();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.count, 3);
        assert!(snap[0].1.max_us >= 1_000);
        // Span aggregation still happened.
        assert_eq!(t.span_stats("measure.probe").expect("span").count, 3);
    }

    #[test]
    fn ingested_events_keep_their_pid_and_merge() {
        let t = Telemetry::new();
        t.set_trace_enabled(true);
        t.ingest_trace_events(vec![TraceEvent {
            name: "dist.work.shard".to_string(),
            ph: PH_COMPLETE,
            ts_us: 100,
            dur_us: 50,
            pid: 999,
            tid: 1,
            args: Vec::new(),
        }]);
        {
            let _s = t.span("dist.coordinate");
        }
        let events = t.take_trace_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.pid == 999));
        assert!(events.iter().any(|e| e.pid == 0));
    }

    #[test]
    fn worker_thread_trace_events_merge_under_distinct_tids() {
        let t = Telemetry::new();
        t.set_trace_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let t = t.clone();
                s.spawn(move || {
                    let _s = t.span("measure.pairwise.suffix_eval");
                });
            }
        });
        let events = t.take_trace_events();
        assert_eq!(events.len(), 3);
        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread gets its own tid");
    }

    #[test]
    fn disabled_handle_trace_apis_are_inert() {
        let t = Telemetry::disabled();
        t.set_trace_enabled(true);
        assert!(!t.trace_enabled());
        t.set_trace_id(5);
        assert_eq!(t.trace_id(), 0);
        t.instant("x", &[]);
        t.series_push("s", 1.0, "l");
        t.histogram("h").record_us(10);
        assert!(t.take_trace_events().is_empty());
        assert!(t.histograms().is_empty());
        assert!(t.series().is_empty());
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn write_chrome_trace_produces_loadable_file() {
        let t = Telemetry::new();
        t.set_trace_enabled(true);
        t.set_trace_id(42);
        {
            let _s = t.span("measure");
        }
        let dir = std::env::temp_dir().join(format!("clado-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.json");
        let n = t.write_chrome_trace(&path).expect("write");
        assert_eq!(n, 1);
        let text = std::fs::read_to_string(&path).expect("read");
        let j = parse_json(&text).expect("valid JSON");
        assert!(j.as_arr().expect("array").len() >= 3); // metadata + event
        std::fs::remove_dir_all(&dir).ok();
    }
}
