//! Run-manifest serialization: the registry rendered as a stable JSON
//! schema (`clado-telemetry-manifest/v1`) plus a human-readable summary
//! table built from the same data.
//!
//! Schema (see DESIGN.md §Telemetry):
//!
//! ```json
//! {
//!   "schema": "clado-telemetry-manifest/v1",
//!   "command": "sensitivity",
//!   "version": "0.1.0",
//!   "git": "4c15eda",
//!   "enabled": true,
//!   "wall_seconds": 12.41,
//!   "span_coverage": 0.998,
//!   "config": { "threads": 4, "model": "resnet20", "seed": 41 },
//!   "counters": { "measure.evaluations": 1234 },
//!   "gauges": { "solver.psd.min_eigenvalue": -0.02 },
//!   "spans": [
//!     { "name": "measure", "count": 1, "total_s": 12.1, "self_s": 0.3,
//!       "children": [ ... ] }
//!   ]
//! }
//! ```
//!
//! The span tree is derived from the dotted span paths; `self_s` is
//! `total_s` minus the sum of the direct children's `total_s`, clamped
//! at zero (worker-thread children accumulate CPU time, which can
//! exceed the parent's wall time).

use crate::json::{escape, number};
use crate::{SpanStat, Telemetry};

/// A typed config value for manifest embedding.
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestValue {
    /// A string value.
    Str(String),
    /// An integer value.
    Int(i64),
    /// A floating-point value.
    Float(f64),
    /// A boolean value.
    Bool(bool),
}

impl From<&str> for ManifestValue {
    fn from(v: &str) -> Self {
        ManifestValue::Str(v.to_string())
    }
}

impl From<String> for ManifestValue {
    fn from(v: String) -> Self {
        ManifestValue::Str(v)
    }
}

impl From<usize> for ManifestValue {
    fn from(v: usize) -> Self {
        ManifestValue::Int(v as i64)
    }
}

impl From<u64> for ManifestValue {
    fn from(v: u64) -> Self {
        ManifestValue::Int(v as i64)
    }
}

impl From<i64> for ManifestValue {
    fn from(v: i64) -> Self {
        ManifestValue::Int(v)
    }
}

impl From<u32> for ManifestValue {
    fn from(v: u32) -> Self {
        ManifestValue::Int(v as i64)
    }
}

impl From<f64> for ManifestValue {
    fn from(v: f64) -> Self {
        ManifestValue::Float(v)
    }
}

impl From<bool> for ManifestValue {
    fn from(v: bool) -> Self {
        ManifestValue::Bool(v)
    }
}

impl ManifestValue {
    fn to_json(&self) -> String {
        match self {
            ManifestValue::Str(s) => format!("\"{}\"", escape(s)),
            ManifestValue::Int(i) => i.to_string(),
            ManifestValue::Float(f) => number(*f),
            ManifestValue::Bool(b) => b.to_string(),
        }
    }
}

/// One node of the derived span tree.
pub(crate) struct SpanNode {
    pub name: String,
    pub stat: SpanStat,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn self_seconds(&self) -> f64 {
        let child_total: f64 = self
            .children
            .iter()
            .map(|c| c.stat.total.as_secs_f64())
            .sum();
        (self.stat.total.as_secs_f64() - child_total).max(0.0)
    }
}

/// Builds the span forest from flat dotted paths. A path with no
/// recorded parent (e.g. only `a.b` exists, not `a`) becomes a
/// zero-time structural node so the hierarchy stays navigable.
pub(crate) fn build_tree(spans: &[(String, SpanStat)]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in spans {
        insert(
            &mut roots,
            path.split('.').collect::<Vec<_>>().as_slice(),
            *stat,
        );
    }
    roots
}

fn insert(level: &mut Vec<SpanNode>, parts: &[&str], stat: SpanStat) {
    let Some((head, rest)) = parts.split_first() else {
        return;
    };
    let node = match level.iter_mut().position(|n| n.name == *head) {
        Some(i) => &mut level[i],
        None => {
            level.push(SpanNode {
                name: head.to_string(),
                stat: SpanStat::default(),
                children: Vec::new(),
            });
            level.last_mut().expect("just pushed")
        }
    };
    if rest.is_empty() {
        node.stat = stat;
    } else {
        insert(&mut node.children, rest, stat);
    }
}

fn node_json(node: &SpanNode, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    out.push_str(&format!(
        "{pad}{{\"name\": \"{}\", \"count\": {}, \"total_s\": {}, \"self_s\": {}",
        escape(&node.name),
        node.stat.count,
        number(node.stat.total.as_secs_f64()),
        number(node.self_seconds()),
    ));
    if node.children.is_empty() {
        out.push_str(", \"children\": []}");
    } else {
        out.push_str(", \"children\": [\n");
        for (i, child) in node.children.iter().enumerate() {
            node_json(child, out, indent + 1);
            if i + 1 < node.children.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!("{pad}]}}"));
    }
}

pub(crate) fn render(t: &Telemetry, command: &str, config: &[(&str, ManifestValue)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"clado-telemetry-manifest/v1\",\n");
    out.push_str(&format!("  \"command\": \"{}\",\n", escape(command)));
    out.push_str(&format!("  \"version\": \"{}\",\n", escape(crate::VERSION)));
    out.push_str(&format!("  \"git\": \"{}\",\n", escape(crate::GIT_HASH)));
    out.push_str(&format!("  \"enabled\": {},\n", t.is_enabled()));
    out.push_str(&format!(
        "  \"wall_seconds\": {},\n",
        number(t.elapsed().as_secs_f64())
    ));
    out.push_str(&format!(
        "  \"span_coverage\": {},\n",
        number(t.span_coverage())
    ));

    out.push_str("  \"config\": {");
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(key), value.to_json()));
    }
    out.push_str(if config.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    let counters = t.counters();
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(name), value));
    }
    out.push_str(if counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    let gauges = t.gauges();
    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(name), number(*value)));
    }
    out.push_str(if gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    let hists = t.histograms();
    out.push_str("  \"histograms\": {");
    for (i, (name, s)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {}}}",
            escape(name),
            s.count,
            s.p50_us,
            s.p90_us,
            s.p95_us,
            s.p99_us,
            s.max_us,
            number(s.mean_us)
        ));
    }
    out.push_str(if hists.is_empty() { "},\n" } else { "\n  },\n" });

    let series = t.series();
    out.push_str("  \"series\": {");
    for (i, (name, points)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": [", escape(name)));
        for (j, p) in points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"t_us\": {}, \"value\": {}, \"label\": \"{}\"}}",
                p.t_us,
                number(p.value),
                escape(&p.label)
            ));
        }
        out.push_str(if points.is_empty() { "]" } else { "\n    ]" });
    }
    out.push_str(if series.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    let tree = build_tree(&t.spans());
    out.push_str("  \"spans\": [");
    if !tree.is_empty() {
        out.push('\n');
        for (i, node) in tree.iter().enumerate() {
            node_json(node, &mut out, 2);
            if i + 1 < tree.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

fn node_summary(node: &SpanNode, out: &mut String, depth: usize) {
    let label = format!("{}{}", "  ".repeat(depth), node.name);
    out.push_str(&format!(
        "  {label:<38} {:>9.3}s {:>9.3}s {:>8}\n",
        node.stat.total.as_secs_f64(),
        node.self_seconds(),
        node.stat.count,
    ));
    for child in &node.children {
        node_summary(child, out, depth + 1);
    }
}

pub(crate) fn render_summary(t: &Telemetry) -> String {
    let mut out = String::new();
    let tree = build_tree(&t.spans());
    if !tree.is_empty() {
        out.push_str(&format!(
            "  {:<38} {:>10} {:>10} {:>8}\n",
            "span", "total", "self", "count"
        ));
        for node in &tree {
            node_summary(node, &mut out, 0);
        }
    }
    let counters = t.counters();
    if !counters.is_empty() {
        out.push_str("  counters:\n");
        for (name, value) in &counters {
            out.push_str(&format!("    {name:<40} {value}\n"));
        }
    }
    let gauges = t.gauges();
    if !gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (name, value) in &gauges {
            out.push_str(&format!("    {name:<40} {value:.6}\n"));
        }
    }
    let hists = t.histograms();
    if hists.iter().any(|(_, s)| s.count > 0) {
        out.push_str(&format!(
            "  {:<30} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "histogram", "count", "p50", "p90", "p95", "p99", "max"
        ));
        for (name, s) in &hists {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<30} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                s.count,
                fmt_us(s.p50_us),
                fmt_us(s.p90_us),
                fmt_us(s.p95_us),
                fmt_us(s.p99_us),
                fmt_us(s.max_us),
            ));
        }
    }
    for (name, points) in &t.series() {
        if let Some(last) = points.last() {
            out.push_str(&format!(
                "  series {name}: {} points, last {} ({}) at {:.3}s\n",
                points.len(),
                last.value,
                last.label,
                last.t_us as f64 / 1e6,
            ));
        }
    }
    out
}

/// Formats a µs latency with an adaptive unit (`17µs`, `4.2ms`, `1.8s`).
pub(crate) fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, Json, Telemetry};
    use std::time::Duration;

    fn spin(ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }

    fn sample_registry() -> Telemetry {
        let t = Telemetry::new();
        {
            let _m = t.span("measure");
            {
                let _d = t.span("measure.diagonal");
                spin(3);
            }
            {
                let _p = t.span("measure.pairwise");
                for _ in 0..4 {
                    let _e = t.span("measure.pairwise.suffix_eval");
                    spin(1);
                }
            }
        }
        t.add("measure.evaluations", 12);
        t.add("measure.full_evals", 4);
        t.add("measure.prefix_cache_hits", 8);
        t.set_gauge("telemetry.overhead_ratio", 1.01);
        t
    }

    #[test]
    fn manifest_parses_and_contains_required_keys() {
        let t = sample_registry();
        let doc = t.manifest(
            "sensitivity",
            &[
                ("threads", 4usize.into()),
                ("model", "resnet20".into()),
                ("seed", 41u64.into()),
            ],
        );
        let j = parse_json(&doc).expect("manifest is valid JSON");
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("clado-telemetry-manifest/v1")
        );
        assert_eq!(j.get("command").and_then(Json::as_str), Some("sensitivity"));
        assert!(j.get("git").and_then(Json::as_str).is_some());
        assert_eq!(
            j.get("config")
                .and_then(|c| c.get("threads"))
                .and_then(Json::as_num),
            Some(4.0)
        );
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("measure.evaluations"))
                .and_then(Json::as_num),
            Some(12.0)
        );
        let spans = j.get("spans").and_then(Json::as_arr).expect("span forest");
        let measure = spans
            .iter()
            .find(|n| n.get("name").and_then(Json::as_str) == Some("measure"))
            .expect("measure root");
        let children = measure
            .get("children")
            .and_then(Json::as_arr)
            .expect("children");
        assert_eq!(children.len(), 2);
        let wall = j.get("wall_seconds").and_then(Json::as_num).expect("wall");
        assert!(wall > 0.0);
        let coverage = j.get("span_coverage").and_then(Json::as_num).expect("cov");
        assert!(coverage > 0.5, "coverage {coverage}");
    }

    #[test]
    fn self_time_subtracts_children_and_clamps_at_zero() {
        let spans = vec![
            (
                "a".to_string(),
                crate::SpanStat {
                    count: 1,
                    total: Duration::from_secs(10),
                },
            ),
            (
                "a.b".to_string(),
                crate::SpanStat {
                    count: 1,
                    total: Duration::from_secs(4),
                },
            ),
            (
                "a.c".to_string(),
                crate::SpanStat {
                    count: 1,
                    // Worker CPU time exceeding the parent's wall time.
                    total: Duration::from_secs(9),
                },
            ),
        ];
        let tree = build_tree(&spans);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].self_seconds(), 0.0);
        let b = tree[0].children.iter().find(|n| n.name == "b").expect("b");
        assert_eq!(b.self_seconds(), 4.0);
    }

    #[test]
    fn orphan_paths_get_structural_parents() {
        let spans = vec![(
            "solver.iqp.branch".to_string(),
            crate::SpanStat {
                count: 2,
                total: Duration::from_secs(1),
            },
        )];
        let tree = build_tree(&spans);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "solver");
        assert_eq!(tree[0].stat.count, 0);
        assert_eq!(tree[0].children[0].name, "iqp");
        assert_eq!(tree[0].children[0].children[0].stat.count, 2);
    }

    #[test]
    fn empty_registry_manifest_is_valid_json() {
        let t = Telemetry::new();
        let doc = t.manifest("noop", &[]);
        let j = parse_json(&doc).expect("valid");
        assert_eq!(
            j.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn summary_renders_tree_counters_and_gauges() {
        let t = sample_registry();
        let summary = t.render_summary();
        assert!(summary.contains("measure"), "{summary}");
        assert!(summary.contains("suffix_eval"), "{summary}");
        assert!(summary.contains("measure.evaluations"), "{summary}");
        assert!(summary.contains("telemetry.overhead_ratio"), "{summary}");
    }

    #[test]
    fn manifest_includes_histograms_and_series() {
        let t = Telemetry::new();
        let h = t.histogram("probe.eval");
        for us in [120u64, 340, 950, 4200] {
            h.record_us(us);
        }
        t.series_push("solver.incumbents", 0.75, "warm_start");
        t.series_push("solver.incumbents", 0.31, "bnb");
        let doc = t.manifest("sensitivity", &[]);
        let j = parse_json(&doc).expect("valid");
        let hist = j
            .get("histograms")
            .and_then(|h| h.get("probe.eval"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(Json::as_num), Some(4.0));
        assert_eq!(hist.get("max_us").and_then(Json::as_num), Some(4200.0));
        assert!(hist.get("p50_us").and_then(Json::as_num).unwrap() > 0.0);
        let series = j
            .get("series")
            .and_then(|s| s.get("solver.incumbents"))
            .and_then(Json::as_arr)
            .expect("series");
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].get("label").and_then(Json::as_str), Some("bnb"));
        assert_eq!(series[1].get("value").and_then(Json::as_num), Some(0.31));

        let summary = t.render_summary();
        assert!(summary.contains("probe.eval"), "{summary}");
        assert!(summary.contains("solver.incumbents"), "{summary}");
    }

    /// Seeded-random manifest round-trip: arbitrary config values,
    /// counters, gauges, histogram samples, and series points (with
    /// hostile strings) must all survive serialize → parse.
    #[test]
    fn manifest_round_trip_property() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let hostile = [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "newline\nand\ttab",
            "ctrl\u{1}\u{1f}",
            "unicode λΩ→µ",
        ];
        for round in 0..25 {
            let t = Telemetry::new();
            let n_counters = (next() % 5) as usize;
            let mut expect_counters = Vec::new();
            for i in 0..n_counters {
                let v = next() % 1_000_000;
                let name = format!("c{round}.{i}.{}", hostile[i % hostile.len()]);
                t.add(&name, v);
                expect_counters.push((name, v));
            }
            let n_gauges = (next() % 4) as usize;
            let mut expect_gauges = Vec::new();
            for i in 0..n_gauges {
                let v = (next() % 10_000) as f64 / 7.0 - 500.0;
                let name = format!("g{i}");
                t.set_gauge(&name, v);
                expect_gauges.push((name, v));
            }
            let h = t.histogram("h.latency");
            let n_samples = next() % 50;
            for _ in 0..n_samples {
                h.record_us(next() % 10_000_000);
            }
            let n_points = (next() % 6) as usize;
            for i in 0..n_points {
                t.series_push(
                    "s.curve",
                    (next() % 1000) as f64 / 3.0,
                    hostile[i % hostile.len()],
                );
            }
            let doc = t.manifest("prop", &[("s", hostile[round % hostile.len()].into())]);
            let j = parse_json(&doc).unwrap_or_else(|e| panic!("round {round}: {e}\n{doc}"));
            for (name, v) in &expect_counters {
                assert_eq!(
                    j.get("counters")
                        .and_then(|c| c.get(name))
                        .and_then(Json::as_num),
                    Some(*v as f64),
                    "round {round} counter {name}"
                );
            }
            for (name, v) in &expect_gauges {
                let got = j
                    .get("gauges")
                    .and_then(|g| g.get(name))
                    .and_then(Json::as_num)
                    .expect("gauge");
                assert!((got - v).abs() < 1e-9, "round {round} gauge {name}");
            }
            assert_eq!(
                j.get("histograms")
                    .and_then(|h| h.get("h.latency"))
                    .and_then(|h| h.get("count"))
                    .and_then(Json::as_num),
                Some(n_samples as f64),
                "round {round} hist count"
            );
            assert_eq!(
                j.get("series")
                    .and_then(|s| s.get("s.curve"))
                    .and_then(Json::as_arr)
                    .map(<[Json]>::len)
                    .unwrap_or(0),
                n_points,
                "round {round} series len"
            );
            assert_eq!(
                j.get("config")
                    .and_then(|c| c.get("s"))
                    .and_then(Json::as_str),
                Some(hostile[round % hostile.len()]),
                "round {round} config string"
            );
        }
    }
}
