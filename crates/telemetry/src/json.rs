//! A minimal JSON reader used to validate manifests in tests and
//! tooling. Supports the full JSON grammar the manifest writer emits
//! (objects, arrays, strings with escapes, numbers, booleans, null).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape '\\{}'", *other as char)),
                }
            }
            Some(&b) => {
                // Copy the full UTF-8 sequence starting at this byte.
                let ch_len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&bytes[*pos..*pos + ch_len])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1.5, "b": [true, false, null], "c": {"d": "x\ny"}, "e": -3e2}"#;
        let j = parse(doc).expect("valid");
        assert_eq!(j.get("a").and_then(Json::as_num), Some(1.5));
        assert_eq!(j.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert_eq!(
            j.get("c").and_then(|c| c.get("d")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(j.get("e").and_then(Json::as_num), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "{} extra", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ unicode: ünïcödé";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let j = parse(&doc).expect("valid");
        assert_eq!(j.get("k").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let j = parse(r#""A\u00e9""#).expect("valid");
        assert_eq!(j.as_str(), Some("Aé"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn escape_every_control_character() {
        for code in 0u32..0x20 {
            let ch = char::from_u32(code).expect("control char");
            let escaped = escape(&ch.to_string());
            assert!(
                escaped.starts_with('\\'),
                "U+{code:04X} must be escaped, got {escaped:?}"
            );
            let doc = format!("\"{escaped}\"");
            let j = parse(&doc).unwrap_or_else(|e| panic!("U+{code:04X}: {e}"));
            assert_eq!(j.as_str(), Some(ch.to_string().as_str()));
        }
    }

    #[test]
    fn escape_quotes_and_backslashes_exhaustively() {
        let cases = [
            (r#"""#, r#"\""#),
            (r"\", r"\\"),
            (r#"\""#, r#"\\\""#),
            ("a\"b\\c", "a\\\"b\\\\c"),
            ("\\\\\\", "\\\\\\\\\\\\"),
            ("trailing\\", "trailing\\\\"),
        ];
        for (input, want) in cases {
            assert_eq!(escape(input), want, "input {input:?}");
            let j = parse(&format!("\"{}\"", escape(input))).expect("round trip");
            assert_eq!(j.as_str(), Some(input));
        }
    }

    #[test]
    fn escape_passes_non_ascii_through_unescaped() {
        for s in [
            "µs and λ",
            "日本語テスト",
            "emoji \u{1F680} rocket",
            "mixed: ü\tö\nß",
            "\u{7f}", // DEL is not a JSON control char; must pass through
        ] {
            let doc = format!("\"{}\"", escape(s));
            let j = parse(&doc).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert_eq!(j.as_str(), Some(s));
        }
        // Non-ASCII itself is not escaped (UTF-8 passthrough).
        assert_eq!(escape("日本"), "日本");
        assert_eq!(escape("\u{1F680}"), "\u{1F680}");
    }

    #[test]
    fn escape_handles_embedded_nul_and_boundaries() {
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        assert_eq!(escape("\u{20}"), " ");
        let tricky = "a\u{0}b\u{1f}c d";
        let j = parse(&format!("\"{}\"", escape(tricky))).expect("valid");
        assert_eq!(j.as_str(), Some(tricky));
    }
}
