//! Rate-limited stderr progress reporting, safe under multi-threaded
//! fan-out: any number of workers may tick the same reporter; at most
//! two lines per second are printed (plus a final line on `finish`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const MIN_INTERVAL_MS: u64 = 500;

struct Inner {
    label: String,
    total: u64,
    done: AtomicU64,
    start: Instant,
    /// Milliseconds since `start` of the last printed line.
    last_print: AtomicU64,
    /// How many lines have been printed (rate-limit observability).
    lines: AtomicU64,
}

/// Progress reporter handed out by `Telemetry::progress`. Cloneable;
/// clones share the same item count. Silent when created disabled.
#[derive(Clone, Default)]
pub struct Progress {
    inner: Option<Arc<Inner>>,
}

impl Progress {
    pub(crate) fn new(label: &str, total: u64, enabled: bool) -> Self {
        Progress {
            inner: enabled.then(|| {
                Arc::new(Inner {
                    label: label.to_string(),
                    total,
                    done: AtomicU64::new(0),
                    start: Instant::now(),
                    last_print: AtomicU64::new(0),
                    lines: AtomicU64::new(0),
                })
            }),
        }
    }

    /// Marks one item complete.
    pub fn tick(&self) {
        self.add(1);
    }

    /// Marks `n` items complete, printing a line if the rate limit
    /// allows. Exactly one of any set of racing workers wins the
    /// compare-exchange and prints.
    pub fn add(&self, n: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let done = inner.done.fetch_add(n, Ordering::Relaxed) + n;
        let now_ms = inner.start.elapsed().as_millis() as u64;
        let last = inner.last_print.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < MIN_INTERVAL_MS {
            return;
        }
        if inner
            .last_print
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            inner.lines.fetch_add(1, Ordering::Relaxed);
            eprintln!("{}", render(inner, done, now_ms));
        }
    }

    /// Prints a final line (regardless of the rate limit) and disables
    /// further output from this handle's clones.
    pub fn finish(&self) {
        if let Some(inner) = &self.inner {
            let done = inner.done.load(Ordering::Relaxed);
            let now_ms = inner.start.elapsed().as_millis() as u64;
            inner.lines.fetch_add(1, Ordering::Relaxed);
            eprintln!("{}", render(inner, done, now_ms));
        }
    }

    /// Items completed so far.
    pub fn done(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.done.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Lines printed so far (zero when disabled). Exposed so tests can
    /// assert the rate limit holds under bursts.
    pub fn lines_printed(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.lines.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

fn render(inner: &Inner, done: u64, now_ms: u64) -> String {
    let secs = (now_ms as f64 / 1000.0).max(1e-3);
    let rate = done as f64 / secs;
    let eta = if rate > 0.0 && done < inner.total {
        format!(", ETA {:.0}s", (inner.total - done) as f64 / rate)
    } else {
        String::new()
    };
    format!(
        "  {}: {}/{} ({:.1}/s{})",
        inner.label, done, inner.total, rate, eta
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_is_silent_and_counts_nothing() {
        let p = Progress::new("x", 10, false);
        p.tick();
        p.add(5);
        p.finish();
        assert_eq!(p.done(), 0);
    }

    #[test]
    fn ticks_accumulate_across_clones_and_threads() {
        let p = Progress::new("probes", 4000, true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        p.tick();
                    }
                });
            }
        });
        assert_eq!(p.done(), 4000);
    }

    #[test]
    fn render_reports_counts_rate_and_eta() {
        let inner = Inner {
            label: "pairwise".to_string(),
            total: 100,
            done: AtomicU64::new(50),
            start: Instant::now(),
            last_print: AtomicU64::new(0),
            lines: AtomicU64::new(0),
        };
        let line = render(&inner, 50, 5000);
        assert!(line.contains("pairwise: 50/100"), "{line}");
        assert!(line.contains("10.0/s"), "{line}");
        assert!(line.contains("ETA 5s"), "{line}");
        // Completed: no ETA.
        let done_line = render(&inner, 100, 5000);
        assert!(!done_line.contains("ETA"), "{done_line}");
    }

    #[test]
    fn burst_of_updates_is_rate_limited_to_two_lines_per_second() {
        let p = Progress::new("burst", 1_000_000, true);
        let start = Instant::now();
        // Hammer the reporter from several threads for a bit over one
        // second of wall time.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    while start.elapsed().as_millis() < 1100 {
                        for _ in 0..100 {
                            p.tick();
                        }
                    }
                });
            }
        });
        let elapsed_s = start.elapsed().as_secs_f64();
        let lines = p.lines_printed();
        // The 500ms minimum interval allows at most ~2 lines/sec (+1
        // for scheduling slop at the window edges).
        let allowed = (2.0 * elapsed_s).ceil() as u64 + 1;
        assert!(
            lines <= allowed,
            "{lines} lines in {elapsed_s:.2}s exceeds rate limit (allowed {allowed})"
        );
        assert!(p.done() > 0);
        // An instantaneous burst on a fresh reporter prints nothing at
        // all: the first window has not elapsed yet.
        let q = Progress::new("instant-burst", 1000, true);
        for _ in 0..1000 {
            q.tick();
        }
        assert_eq!(q.lines_printed(), 0);
        // `finish` always prints exactly one closing line.
        q.finish();
        assert_eq!(q.lines_printed(), 1);
    }
}
