//! Trace events, streaming latency histograms, and time series.
//!
//! **Trace events** are Chrome Trace Format records: complete spans
//! (`ph: "X"`, with a duration) and instants (`ph: "i"`). Span guards
//! emit them automatically when tracing is enabled on the registry;
//! the events ride the same thread-local buffer as span aggregation,
//! so the hot path stays lock-free. [`write_chrome_trace`] serializes
//! one event per line inside a JSON array — loadable directly in
//! Perfetto or `chrome://tracing`, and line-parseable by CI.
//!
//! **Histograms** are log-bucketed (4 sub-buckets per power-of-two
//! octave over microseconds) with lock-free atomic recording; p50/p90/
//! p99/max are computed at render time from the bucket counts.
//!
//! **Series** are append-only `(t_us, value, label)` timelines, used by
//! the solver to expose its anytime incumbent trajectory.

use crate::json::{escape, number};
use crate::ManifestValue;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Chrome Trace phase for a complete (duration) event.
pub const PH_COMPLETE: u8 = b'X';
/// Chrome Trace phase for an instant event.
pub const PH_INSTANT: u8 = b'i';

/// One trace event. `ts_us`/`dur_us` are microseconds relative to the
/// owning registry's start (re-based onto the coordinator's clock when
/// shipped across processes). `pid == 0` means "this process"; the
/// writer substitutes the real OS pid. Ingested remote events carry
/// the originating worker's pid.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span or instant name (dotted path for spans).
    pub name: String,
    /// Phase: [`PH_COMPLETE`] or [`PH_INSTANT`].
    pub ph: u8,
    /// Start time in µs since the trace epoch.
    pub ts_us: u64,
    /// Duration in µs (zero for instants).
    pub dur_us: u64,
    /// Originating process id (0 = local; stamped at write time).
    pub pid: u32,
    /// Small per-process thread id (not the OS tid).
    pub tid: u32,
    /// Typed key/value annotations.
    pub args: Vec<(String, ManifestValue)>,
}

// ---------------------------------------------------------------------------
// Log-bucketed streaming histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^SUB_BITS sub-buckets per octave (~12%
/// relative error on reported percentiles).
const SUB_BITS: u32 = 2;
const SUB_MASK: u64 = (1 << SUB_BITS) - 1;
/// Enough buckets for the full u64 µs range (max index is 251).
pub(crate) const BUCKETS: usize = 256;

/// Lock-free log-bucketed histogram over µs values.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Rendered percentile summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Median, µs (bucket midpoint).
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Exact maximum recorded value, µs.
    pub max_us: u64,
    /// Exact mean, µs.
    pub mean_us: f64,
}

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & SUB_MASK) as usize;
    let idx = (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub;
    idx.min(BUCKETS - 1)
}

/// Midpoint of the value range covered by `idx` (inverse of
/// [`bucket_index`] up to sub-bucket width).
pub(crate) fn bucket_value(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32; // >= 1
    let sub = (idx as u128) & SUB_MASK as u128;
    let lower = ((1u128 << SUB_BITS) + sub) << (group - 1);
    let width = 1u128 << (group - 1);
    u64::try_from(lower + width / 2).unwrap_or(u64::MAX)
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (µs). Lock-free; safe from any thread.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Computes the percentile summary from the current bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_value(idx).min(max);
                }
            }
            max
        };
        HistSnapshot {
            count,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: max,
            mean_us: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
        }
    }
}

/// Shared handle to one named histogram (like [`crate::Counter`]):
/// fetch once by name, record lock-free in hot loops. Inert when the
/// telemetry handle is disabled.
#[derive(Clone, Default)]
pub struct Hist {
    pub(crate) cell: Option<std::sync::Arc<Histogram>>,
}

impl Hist {
    /// Records one latency value in microseconds.
    pub fn record_us(&self, us: u64) {
        if let Some(cell) = &self.cell {
            cell.record_us(us);
        }
    }

    /// Records a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros() as u64);
    }
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

/// One point of a named time series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Time in µs since the registry start.
    pub t_us: u64,
    /// The measured value (e.g. incumbent objective).
    pub value: f64,
    /// Short provenance label ("warm_start", "bnb", ...).
    pub label: String,
}

// ---------------------------------------------------------------------------
// Chrome Trace writer
// ---------------------------------------------------------------------------

fn args_json(args: &[(String, ManifestValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), value_json(v)));
    }
    out.push('}');
    out
}

fn value_json(v: &ManifestValue) -> String {
    match v {
        ManifestValue::Str(s) => format!("\"{}\"", escape(s)),
        ManifestValue::Int(i) => i.to_string(),
        ManifestValue::Float(f) => number(*f),
        ManifestValue::Bool(b) => b.to_string(),
    }
}

/// Serializes events as a Chrome Trace Format JSON array, one event
/// per line. Emits `process_name` and `trace_id` metadata records for
/// every distinct pid so multi-process traces are labelled and
/// correlated in Perfetto. Events with `pid == 0` are stamped with
/// `local_pid`.
pub(crate) fn write_chrome_trace(
    events: &[TraceEvent],
    labels: &[(u32, String)],
    trace_id: u64,
    local_pid: u32,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let mut pids: Vec<u32> = events
        .iter()
        .map(|e| if e.pid == 0 { local_pid } else { e.pid })
        .collect();
    pids.sort_unstable();
    pids.dedup();

    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 2 * pids.len());
    for pid in &pids {
        let label = labels
            .iter()
            .find(|(p, _)| p == pid)
            .map(|(_, l)| l.as_str())
            .unwrap_or(if *pid == local_pid {
                "coordinator"
            } else {
                "worker"
            });
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ));
        lines.push(format!(
            "{{\"name\":\"trace_id\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"trace_id\":\"{trace_id:#018x}\"}}}}"
        ));
    }
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.ts_us);
    for e in ordered {
        let pid = if e.pid == 0 { local_pid } else { e.pid };
        let mut line = format!(
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
            escape(&e.name),
            e.ph as char,
            e.ts_us
        );
        if e.ph == PH_COMPLETE {
            line.push_str(&format!("\"dur\":{},", e.dur_us));
        } else if e.ph == PH_INSTANT {
            // Thread-scoped instant.
            line.push_str("\"s\":\"t\",");
        }
        line.push_str(&format!(
            "\"pid\":{pid},\"tid\":{},\"args\":{}}}",
            e.tid,
            args_json(&e.args)
        ));
        lines.push(line);
    }

    writeln!(out, "[")?;
    for (i, line) in lines.iter().enumerate() {
        if i + 1 < lines.len() {
            writeln!(out, "{line},")?;
        } else {
            writeln!(out, "{line}")?;
        }
    }
    writeln!(out, "]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, Json};

    #[test]
    fn bucket_index_is_monotone_and_inverse_is_consistent() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "non-monotone at {v}");
            prev = idx;
        }
        // The bucket midpoint must land back in the same bucket, for
        // every index reachable from a u64 value.
        for idx in 0..=bucket_index(u64::MAX) {
            assert_eq!(bucket_index(bucket_value(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn histogram_percentiles_are_close_for_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_us(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_us, 1000);
        // Log buckets give ~12% relative resolution.
        assert!((s.p50_us as f64 - 500.0).abs() < 100.0, "p50 {}", s.p50_us);
        assert!((s.p90_us as f64 - 900.0).abs() < 150.0, "p90 {}", s.p90_us);
        assert!(s.p99_us <= 1000 && s.p99_us > 900, "p99 {}", s.p99_us);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_us, 0);
        h.record_us(0);
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_us, u64::MAX);
        assert_eq!(s.p50_us, 0);
    }

    #[test]
    fn disabled_hist_handle_is_inert() {
        let h = Hist::default();
        h.record_us(5);
        h.record(std::time::Duration::from_millis(1));
        assert!(h.cell.is_none());
    }

    #[test]
    fn chrome_trace_output_is_valid_json_with_metadata() {
        let events = vec![
            TraceEvent {
                name: "measure".into(),
                ph: PH_COMPLETE,
                ts_us: 10,
                dur_us: 90,
                pid: 0,
                tid: 1,
                args: vec![("shards".into(), ManifestValue::Int(4))],
            },
            TraceEvent {
                name: "solver.incumbent".into(),
                ph: PH_INSTANT,
                ts_us: 55,
                dur_us: 0,
                pid: 4242,
                tid: 2,
                args: vec![("objective".into(), ManifestValue::Float(0.25))],
            },
        ];
        let labels = vec![(4242u32, "worker-1".to_string())];
        let mut buf = Vec::new();
        write_chrome_trace(&events, &labels, 0xdead_beef, 77, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let j = parse_json(&text).expect("valid JSON array");
        let arr = j.as_arr().expect("array");
        // 2 pids × 2 metadata + 2 events.
        assert_eq!(arr.len(), 6);
        let ids: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("trace_id"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|i| *i == ids[0]));
        // pid 0 was stamped with the local pid.
        assert!(arr.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("measure")
                && e.get("pid").and_then(Json::as_num) == Some(77.0)
        }));
        // The worker label made it into a process_name record.
        assert!(text.contains("worker-1"));
        // One event per line: every non-bracket line parses alone.
        for line in text.lines() {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed == "[" || trimmed == "]" || trimmed.is_empty() {
                continue;
            }
            parse_json(trimmed).expect("each line is one JSON event");
        }
    }
}
