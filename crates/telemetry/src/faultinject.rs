//! Deterministic fail-point facility for fault-injection testing.
//!
//! A *fail point* is a named hook compiled into cold paths of the pipeline
//! (worker dispatch, journal commits, loss evaluation). In release builds
//! every hook is a no-op that the optimizer removes entirely; in debug
//! builds a hook consults a process-global registry and — when armed —
//! panics, aborts the process, or asks the calling code to inject a fault
//! of its own (a NaN loss, an I/O error).
//!
//! Points are armed either programmatically ([`arm`]) or through the
//! `CLADO_FAULTPOINTS` environment variable, parsed once on first use:
//!
//! ```text
//! CLADO_FAULTPOINTS="journal.commit=abort,skip=10;measure.probe_nan=trigger,times=2"
//! ```
//!
//! Each entry is `name=action[,skip=N][,times=M][,arg=K]`: the point
//! stays silent for its first `N` hits, then fires on every hit (or only
//! the next `M` hits when `times` is given). `arg` carries a numeric
//! payload to parameterized trigger points (a delay in milliseconds, a
//! byte offset) read back through [`fire_arg`]. Actions:
//!
//! * `panic` — unwind with a tagged panic (exercises per-item isolation),
//! * `abort` — `std::process::abort()`, simulating a SIGKILL/OOM kill
//!   with no unwinding and no buffered-state flushing,
//! * `trigger` — [`fire`] returns `true` and the call site injects its
//!   own fault (see the two-argument form of [`faultpoint!`]).
//!
//! Because hits are counted deterministically (a mutex-serialized counter
//! per point), a given spec reproduces the same failure at the same
//! point of the sweep on every run.
//!
//! [`faultpoint!`]: crate::faultpoint

use std::fmt;

/// What an armed fail point does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the point (unwinds).
    Panic,
    /// Abort the process immediately (no unwinding, no flushing).
    Abort,
    /// Make [`fire`] return `true`; the call site injects the fault.
    Trigger,
}

/// A parsed fail-point specification: action plus hit window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The action taken when the point fires.
    pub action: FaultAction,
    /// Number of initial hits that pass through silently.
    pub skip: u64,
    /// How many hits fire after the skip window (`None` = all of them).
    pub times: Option<u64>,
    /// Numeric payload handed to parameterized trigger points via
    /// [`fire_arg`] (a delay in ms, a frame count, …). Zero by default.
    pub arg: u64,
}

impl FaultSpec {
    /// A spec that panics on every hit after `skip`.
    pub fn panic() -> Self {
        Self {
            action: FaultAction::Panic,
            skip: 0,
            times: None,
            arg: 0,
        }
    }

    /// A spec that aborts the process on the first hit after `skip`.
    pub fn abort() -> Self {
        Self {
            action: FaultAction::Abort,
            skip: 0,
            times: None,
            arg: 0,
        }
    }

    /// A spec that asks the call site to inject its own fault.
    pub fn trigger() -> Self {
        Self {
            action: FaultAction::Trigger,
            skip: 0,
            times: None,
            arg: 0,
        }
    }

    /// Sets the silent-hit window.
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Limits how many hits fire.
    pub fn times(mut self, n: u64) -> Self {
        self.times = Some(n);
        self
    }

    /// Sets the numeric payload read back through [`fire_arg`].
    pub fn arg(mut self, n: u64) -> Self {
        self.arg = n;
        self
    }
}

/// Error produced by [`parse_specs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault-point spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// Parses a `CLADO_FAULTPOINTS`-style string
/// (`name=action[,skip=N][,times=M];…`) into `(name, spec)` pairs.
///
/// # Errors
///
/// Returns [`FaultSpecError`] on unknown actions, malformed options, or
/// missing `=`.
pub fn parse_specs(raw: &str) -> Result<Vec<(String, FaultSpec)>, FaultSpecError> {
    let mut out = Vec::new();
    for entry in raw.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (name, rest) = entry
            .split_once('=')
            .ok_or_else(|| FaultSpecError(format!("`{entry}` is missing `=action`")))?;
        let mut parts = rest.split(',').map(str::trim);
        let action = match parts.next() {
            Some("panic") => FaultAction::Panic,
            Some("abort") => FaultAction::Abort,
            Some("trigger") => FaultAction::Trigger,
            other => {
                return Err(FaultSpecError(format!(
                    "unknown action `{}` for `{name}` (panic|abort|trigger)",
                    other.unwrap_or("")
                )))
            }
        };
        let mut spec = FaultSpec {
            action,
            skip: 0,
            times: None,
            arg: 0,
        };
        for opt in parts {
            let (key, value) = opt
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("option `{opt}` is not `key=value`")))?;
            let n: u64 = value
                .parse()
                .map_err(|_| FaultSpecError(format!("`{value}` is not a number in `{opt}`")))?;
            match key {
                "skip" => spec.skip = n,
                "times" => spec.times = Some(n),
                "arg" => spec.arg = n,
                other => {
                    return Err(FaultSpecError(format!(
                        "unknown option `{other}` (skip|times|arg)"
                    )))
                }
            }
        }
        out.push((name.trim().to_string(), spec));
    }
    Ok(out)
}

#[cfg(debug_assertions)]
mod active {
    use super::{FaultAction, FaultSpec};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Armed {
        spec: FaultSpec,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(raw) = std::env::var("CLADO_FAULTPOINTS") {
                match super::parse_specs(&raw) {
                    Ok(specs) => {
                        for (name, spec) in specs {
                            map.insert(name, Armed { spec, hits: 0 });
                        }
                    }
                    Err(e) => eprintln!("warning: ignoring CLADO_FAULTPOINTS: {e}"),
                }
            }
            Mutex::new(map)
        })
    }

    fn lock() -> MutexGuard<'static, HashMap<String, Armed>> {
        // A panic action poisons the mutex by design; the map itself is
        // always left consistent, so poisoning is safe to ignore.
        match registry().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn fire(name: &str) -> bool {
        fire_arg(name).is_some()
    }

    pub fn fire_arg(name: &str) -> Option<u64> {
        let (action, arg) = {
            let mut map = lock();
            let armed = map.get_mut(name)?;
            armed.hits += 1;
            let n = armed.hits;
            if n <= armed.spec.skip {
                return None;
            }
            if let Some(times) = armed.spec.times {
                if n > armed.spec.skip + times {
                    return None;
                }
            }
            (armed.spec.action, armed.spec.arg)
        };
        match action {
            FaultAction::Panic => panic!("fault injected at `{name}`"),
            FaultAction::Abort => {
                eprintln!("fault injected at `{name}`: aborting process");
                std::process::abort();
            }
            FaultAction::Trigger => Some(arg),
        }
    }

    pub fn arm(name: &str, spec: FaultSpec) {
        lock().insert(name.to_string(), Armed { spec, hits: 0 });
    }

    pub fn disarm(name: &str) {
        lock().remove(name);
    }

    pub fn disarm_all() {
        lock().clear();
    }

    pub fn hits(name: &str) -> u64 {
        lock().get(name).map_or(0, |a| a.hits)
    }
}

#[cfg(debug_assertions)]
pub use active::{arm, disarm, disarm_all, fire, fire_arg, hits};

#[cfg(not(debug_assertions))]
mod inert {
    use super::FaultSpec;

    /// Release builds: never fires (the hook compiles to nothing).
    #[inline(always)]
    pub fn fire(_name: &str) -> bool {
        false
    }

    /// Release builds: never fires, never yields a payload.
    #[inline(always)]
    pub fn fire_arg(_name: &str) -> Option<u64> {
        None
    }

    /// Release builds: arming has no effect.
    #[inline(always)]
    pub fn arm(_name: &str, _spec: FaultSpec) {}

    /// Release builds: no-op.
    #[inline(always)]
    pub fn disarm(_name: &str) {}

    /// Release builds: no-op.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Release builds: always zero.
    #[inline(always)]
    pub fn hits(_name: &str) -> u64 {
        0
    }
}

#[cfg(not(debug_assertions))]
pub use inert::{arm, disarm, disarm_all, fire, fire_arg, hits};

/// Serializes fault-injection tests and disarms every point on both
/// acquisition and release, so tests arming global points cannot
/// interfere with each other when the test harness runs them in parallel.
pub struct FaultGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Acquires the global fault-injection test lock. Hold the guard for the
/// whole test; all points are disarmed when it is acquired and again when
/// it drops.
pub fn test_guard() -> FaultGuard {
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let lock = match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    disarm_all();
    FaultGuard { _lock: lock }
}

/// Declares a named fail point.
///
/// `faultpoint!("name")` — a hook for `panic`/`abort` specs; a `trigger`
/// spec is ignored here.
///
/// `faultpoint!("name", expr)` — additionally evaluates `expr` when a
/// `trigger` spec fires, letting the call site inject its own fault
/// (assign a NaN, return an error, …).
///
/// Both forms compile to nothing in release builds.
#[macro_export]
macro_rules! faultpoint {
    ($name:expr) => {
        let _ = $crate::faultinject::fire($name);
    };
    ($name:expr, $on_trigger:expr) => {
        if $crate::faultinject::fire($name) {
            $on_trigger
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specs_accepts_full_grammar() {
        let specs = parse_specs(
            "journal.commit=abort,skip=10; measure.probe_nan=trigger,times=2; \
             wire.write.delay=trigger,arg=250",
        )
        .unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].0, "journal.commit");
        assert_eq!(specs[0].1, FaultSpec::abort().skip(10));
        assert_eq!(specs[1].1, FaultSpec::trigger().times(2));
        assert_eq!(specs[2].1, FaultSpec::trigger().arg(250));
        assert!(parse_specs("").unwrap().is_empty());
    }

    #[test]
    fn parse_specs_rejects_garbage() {
        assert!(parse_specs("noequals").is_err());
        assert!(parse_specs("x=explode").is_err());
        assert!(parse_specs("x=panic,skip=abc").is_err());
        assert!(parse_specs("x=panic,frobnicate=1").is_err());
        assert!(parse_specs("x=trigger,arg=").is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn fire_arg_returns_the_numeric_payload() {
        let _guard = test_guard();
        arm("test.arg", FaultSpec::trigger().skip(1).arg(42));
        assert_eq!(fire_arg("test.arg"), None, "skip window");
        assert_eq!(fire_arg("test.arg"), Some(42));
        assert_eq!(fire_arg("test.unarmed_arg"), None);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn trigger_respects_skip_and_times_windows() {
        let _guard = test_guard();
        arm("test.point", FaultSpec::trigger().skip(2).times(2));
        let fired: Vec<bool> = (0..6).map(|_| fire("test.point")).collect();
        assert_eq!(fired, [false, false, true, true, false, false]);
        assert_eq!(hits("test.point"), 6);
        disarm("test.point");
        assert!(!fire("test.point"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn panic_action_unwinds_with_point_name() {
        let _guard = test_guard();
        arm("test.panic", FaultSpec::panic().times(1));
        let caught = std::panic::catch_unwind(|| fire("test.panic"));
        let msg = crate::panic_message(&*caught.expect_err("must panic"));
        assert!(msg.contains("test.panic"), "{msg}");
        // The window is exhausted: the next hit passes through.
        assert!(!fire("test.panic"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn macro_forms_compile_and_inject() {
        let _guard = test_guard();
        arm("test.macro", FaultSpec::trigger().times(1));
        let mut loss = 1.0f64;
        crate::faultpoint!("test.macro", {
            loss = f64::NAN;
        });
        assert!(loss.is_nan());
        crate::faultpoint!("test.macro", {
            loss = 2.0;
        });
        assert!(loss.is_nan(), "window exhausted; must not fire again");
        crate::faultpoint!("test.unarmed");
    }

    #[test]
    fn unarmed_points_never_fire() {
        assert!(!fire("nonexistent.point"));
        assert_eq!(hits("nonexistent.point"), 0);
    }
}
