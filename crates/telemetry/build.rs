//! Embeds the current git revision into the crate so run manifests can
//! record which commit produced them. Falls back to "unknown" outside a
//! git checkout (e.g. from a source tarball).

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=CLADO_GIT_HASH={hash}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
