//! `clado` — the command-line interface of the CLADO reproduction.
//!
//! Run `clado --help` (or any unknown command) for usage.

mod args;
mod cancel;
mod commands;

use args::Args;
use commands::USAGE;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.switch("help") || parsed.subcommand().is_none() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match parsed.subcommand().expect("checked above") {
        "models" => commands::cmd_models(&parsed),
        "train" => commands::cmd_train(&parsed),
        "sensitivity" | "measure" => commands::cmd_sensitivity(&parsed),
        "estimate" => commands::cmd_estimate(&parsed),
        "worker" => commands::cmd_worker(&parsed),
        "serve" => commands::cmd_serve(&parsed),
        "submit" => commands::cmd_submit(&parsed),
        "chaos" => commands::cmd_chaos(&parsed),
        "assign" => commands::cmd_assign(&parsed),
        "sweep" => commands::cmd_sweep(&parsed),
        "eval" => commands::cmd_eval(&parsed),
        "stress" => commands::cmd_stress(&parsed),
        "trace" => commands::cmd_trace(&parsed),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
